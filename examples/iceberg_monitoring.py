"""Iceberg monitoring: probabilistic kNN and reverse kNN on the simulated IIP data.

Scenario (the paper's real-world evaluation): the International Ice Patrol
tracks icebergs in the North Atlantic.  Each iceberg's position is uncertain —
the longer since its last sighting, the larger its uncertainty region.  A
vessel (itself reporting an imprecise position) wants to know:

* "Which icebergs are among the 5 closest to me with probability >= 50%?"
  (probabilistic threshold kNN, Corollary 4)
* "For which icebergs am I among their 3 nearest tracked objects?"
  (probabilistic threshold reverse kNN, Corollary 5) — the icebergs whose
  drift updates should be prioritised for this vessel.

The second half turns the one-shot analysis into a *streaming* watch: the
database is served through :class:`~repro.engine.QueryService` and the HTTP
gateway, the vessel's kNN and range interests are registered as standing
queries, and each monitoring tick applies a batch of drift re-sightings via
``POST /v1/mutate``.  The gateway advances the snapshot epoch behind its
mutation barrier and refreshes the standing queries incrementally — a far
new sighting leaves the vessel's range watch untouched (patched/skipped)
while the kNN watch re-evaluates against the new snapshot.

Run with::

    python examples/iceberg_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    IIPSimulationConfig,
    iip_iceberg_database,
    probabilistic_knn_threshold,
    probabilistic_rknn_threshold,
)
from repro.geometry import Rectangle
from repro.uncertain import BoxUniformObject


def main() -> None:
    # ------------------------------------------------------------------ #
    # the simulated IIP iceberg sightings dataset (6,216 objects by default;
    # reduced here so the example finishes in a few seconds)
    # ------------------------------------------------------------------ #
    config = IIPSimulationConfig(num_objects=1_500, seed=2009)
    icebergs = iip_iceberg_database(config)
    extents = icebergs.mbrs()[..., 1] - icebergs.mbrs()[..., 0]
    print(
        f"{len(icebergs)} tracked icebergs, max uncertainty extent "
        f"{extents.max():.6f} (normalised coordinates)"
    )

    # a vessel with an imprecise GPS fix, modelled as a small uniform rectangle
    vessel = BoxUniformObject(
        Rectangle.from_center_extent([0.52, 0.44], 0.0008), label="vessel"
    )

    # ------------------------------------------------------------------ #
    # probabilistic threshold kNN: icebergs probably among the 5 closest
    # ------------------------------------------------------------------ #
    knn = probabilistic_knn_threshold(icebergs, vessel, k=5, tau=0.5, max_iterations=8)
    print(
        f"\nIcebergs among the vessel's 5 nearest with P >= 0.5: "
        f"{len(knn.matches)} confirmed, {len(knn.undecided)} undecided, "
        f"{knn.pruned} pruned without probabilistic evaluation"
    )
    for match in sorted(knn.matches, key=lambda m: -m.probability_midpoint):
        label = icebergs[match.index].label
        print(
            f"  {label}: P(among 5 nearest) in "
            f"[{match.probability_lower:.2f}, {match.probability_upper:.2f}]"
        )

    # ------------------------------------------------------------------ #
    # probabilistic threshold reverse kNN: icebergs that consider the vessel
    # one of their 3 nearest tracked objects
    # ------------------------------------------------------------------ #
    # restrict the candidates to the icebergs near the vessel (the spatially
    # distant ones cannot be reverse neighbours anyway)
    near = knn_candidate_subset(icebergs, vessel, limit=120)
    rknn = probabilistic_rknn_threshold(
        icebergs, vessel, k=3, tau=0.25, candidate_indices=near, max_iterations=6
    )
    print(
        f"\nIcebergs with the vessel among their 3 nearest (P >= 0.25): "
        f"{len(rknn.matches)} confirmed, {len(rknn.undecided)} undecided"
    )
    for match in rknn.matches:
        print(
            f"  {icebergs[match.index].label}: P in "
            f"[{match.probability_lower:.2f}, {match.probability_upper:.2f}] "
            f"after {match.iterations} refinement iterations"
        )

    # ------------------------------------------------------------------ #
    # streaming: standing queries over the HTTP gateway, drift via /v1/mutate
    # ------------------------------------------------------------------ #
    streaming_watch(icebergs, vessel)


def streaming_watch(icebergs, vessel) -> None:
    """Serve the database and keep the vessel's watches fresh across drift.

    Registers a standing kNN query ("the 5 icebergs probably nearest the
    vessel") and a standing range query ("icebergs probably within
    ``epsilon`` of the vessel"), then applies three rounds of mutations:
    drift re-sightings of the nearest icebergs, plus a far-away new
    sighting whose insertion cannot change the range result — the gateway
    patches that watch instead of re-evaluating it.
    """
    import json
    import urllib.request

    from repro.engine import ExecutorConfig, QueryService
    from repro.gateway import GatewayServer

    def post(url: str, document: dict) -> dict:
        request = urllib.request.Request(
            url,
            data=json.dumps(document).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request) as response:
            return json.loads(response.read())

    def get(url: str) -> dict:
        with urllib.request.urlopen(url) as response:
            return json.loads(response.read())

    mbr = vessel.mbr
    vessel_literal = {
        "box": {
            "lower": [iv.lo for iv in mbr.intervals],
            "upper": [iv.hi for iv in mbr.intervals],
        }
    }
    watched = knn_candidate_subset(icebergs, vessel, limit=3)
    centers = {i: icebergs[i].mean() for i in watched}
    drift_rng = np.random.default_rng(41)

    print("\n--- streaming watch (standing queries over the gateway) ---")
    with QueryService(icebergs, ExecutorConfig(workers=2)) as service:
        with GatewayServer(service) as server:
            knn_watch = post(
                f"{server.url}/v1/standing",
                {"query": {"type": "knn", "query": vessel_literal, "k": 5,
                           "tau": 0.5, "max_iterations": 6}},
            )
            range_watch = post(
                f"{server.url}/v1/standing",
                {"query": {"type": "range", "query": vessel_literal,
                           "epsilon": 0.015, "tau": 0.2, "max_depth": 4}},
            )
            print(
                f"registered {knn_watch['id']} (knn) and {range_watch['id']} "
                f"(range) at epoch {knn_watch['epoch']}"
            )

            for tick in range(3):
                ops = []
                if tick != 1:
                    # drift re-sightings: the watched icebergs move a little
                    # and come back with a fresh, tighter uncertainty region
                    for i in watched:
                        centers[i] = centers[i] + drift_rng.normal(0.0, 0.002, size=2)
                        ops.append({
                            "op": "update",
                            "position": i,
                            "object": {"gaussian": {"mean": list(centers[i]),
                                                    "std": [0.0008, 0.0008]}},
                        })
                else:
                    # a brand-new sighting far from the vessel: too distant to
                    # enter the range result, so that watch is patched, not
                    # re-evaluated — only the kNN watch re-runs
                    ops.append({
                        "op": "insert",
                        "object": {"gaussian": {"mean": [0.95, 0.95],
                                                "std": [0.002, 0.002]}},
                    })
                outcome = post(f"{server.url}/v1/mutate", {"mutations": ops})
                refreshed = outcome["standing"]
                current = get(f"{server.url}/v1/standing/{knn_watch['id']}")
                matches = current["result"]["matches"]
                print(
                    f"tick {tick}: {outcome['applied']} ops -> epoch "
                    f"{outcome['epoch']} ({outcome['size']} icebergs); standing: "
                    f"{refreshed['reevaluated']} re-evaluated, "
                    f"{refreshed['patched']} patched, {refreshed['skipped']} skipped"
                )
                database = service.engine.database
                for match in sorted(matches, key=lambda m: -m["probability_upper"])[:3]:
                    label = database[match["index"]].label or f"object-{match['index']}"
                    print(
                        f"    {label}: P(among 5 nearest) in "
                        f"[{match['probability_lower']:.2f}, "
                        f"{match['probability_upper']:.2f}]"
                    )


def knn_candidate_subset(database, query, limit: int) -> list[int]:
    """Indices of the ``limit`` objects closest to the query by MinDist."""
    from repro.index import min_dist_order

    order = min_dist_order(database.mbrs(), query.mbr)
    return [int(i) for i in order[:limit]]


if __name__ == "__main__":
    main()
