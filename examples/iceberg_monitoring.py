"""Iceberg monitoring: probabilistic kNN and reverse kNN on the simulated IIP data.

Scenario (the paper's real-world evaluation): the International Ice Patrol
tracks icebergs in the North Atlantic.  Each iceberg's position is uncertain —
the longer since its last sighting, the larger its uncertainty region.  A
vessel (itself reporting an imprecise position) wants to know:

* "Which icebergs are among the 5 closest to me with probability >= 50%?"
  (probabilistic threshold kNN, Corollary 4)
* "For which icebergs am I among their 3 nearest tracked objects?"
  (probabilistic threshold reverse kNN, Corollary 5) — the icebergs whose
  drift updates should be prioritised for this vessel.

Run with::

    python examples/iceberg_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    IIPSimulationConfig,
    iip_iceberg_database,
    probabilistic_knn_threshold,
    probabilistic_rknn_threshold,
)
from repro.geometry import Rectangle
from repro.uncertain import BoxUniformObject


def main() -> None:
    # ------------------------------------------------------------------ #
    # the simulated IIP iceberg sightings dataset (6,216 objects by default;
    # reduced here so the example finishes in a few seconds)
    # ------------------------------------------------------------------ #
    config = IIPSimulationConfig(num_objects=1_500, seed=2009)
    icebergs = iip_iceberg_database(config)
    extents = icebergs.mbrs()[..., 1] - icebergs.mbrs()[..., 0]
    print(
        f"{len(icebergs)} tracked icebergs, max uncertainty extent "
        f"{extents.max():.6f} (normalised coordinates)"
    )

    # a vessel with an imprecise GPS fix, modelled as a small uniform rectangle
    vessel = BoxUniformObject(
        Rectangle.from_center_extent([0.52, 0.44], 0.0008), label="vessel"
    )

    # ------------------------------------------------------------------ #
    # probabilistic threshold kNN: icebergs probably among the 5 closest
    # ------------------------------------------------------------------ #
    knn = probabilistic_knn_threshold(icebergs, vessel, k=5, tau=0.5, max_iterations=8)
    print(
        f"\nIcebergs among the vessel's 5 nearest with P >= 0.5: "
        f"{len(knn.matches)} confirmed, {len(knn.undecided)} undecided, "
        f"{knn.pruned} pruned without probabilistic evaluation"
    )
    for match in sorted(knn.matches, key=lambda m: -m.probability_midpoint):
        label = icebergs[match.index].label
        print(
            f"  {label}: P(among 5 nearest) in "
            f"[{match.probability_lower:.2f}, {match.probability_upper:.2f}]"
        )

    # ------------------------------------------------------------------ #
    # probabilistic threshold reverse kNN: icebergs that consider the vessel
    # one of their 3 nearest tracked objects
    # ------------------------------------------------------------------ #
    # restrict the candidates to the icebergs near the vessel (the spatially
    # distant ones cannot be reverse neighbours anyway)
    near = knn_candidate_subset(icebergs, vessel, limit=120)
    rknn = probabilistic_rknn_threshold(
        icebergs, vessel, k=3, tau=0.25, candidate_indices=near, max_iterations=6
    )
    print(
        f"\nIcebergs with the vessel among their 3 nearest (P >= 0.25): "
        f"{len(rknn.matches)} confirmed, {len(rknn.undecided)} undecided"
    )
    for match in rknn.matches:
        print(
            f"  {icebergs[match.index].label}: P in "
            f"[{match.probability_lower:.2f}, {match.probability_upper:.2f}] "
            f"after {match.iterations} refinement iterations"
        )


def knn_candidate_subset(database, query, limit: int) -> list[int]:
    """Indices of the ``limit`` objects closest to the query by MinDist."""
    from repro.index import min_dist_order

    order = min_dist_order(database.mbrs(), query.mbr)
    return [int(i) for i in order[:limit]]


if __name__ == "__main__":
    main()
