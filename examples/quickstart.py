"""Quickstart: probabilistic domination counts and a threshold kNN query.

This example builds a small uncertain database, picks an uncertain query
object, and walks through the library's main entry points:

1. the complete-domination filter and the iterative domination-count
   approximation (IDCA, Algorithm 1 of the paper);
2. a probabilistic threshold kNN query (Corollary 4);
3. the Monte-Carlo comparison partner, to show what IDCA's bounds are
   approximating.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    IDCA,
    MaxIterations,
    MonteCarloDominationCount,
    discretise_database,
    probabilistic_knn_threshold,
    random_reference_object,
    target_by_mindist_rank,
    uniform_rectangle_database,
)


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. an uncertain database and an uncertain query object
    # ------------------------------------------------------------------ #
    database = uniform_rectangle_database(num_objects=2_000, max_extent=0.01, seed=42)
    query = random_reference_object(extent=0.01, seed=7, label="query")
    # the paper's standard workload target: the object with the 10th smallest
    # MinDist to the query
    target = target_by_mindist_rank(database, query, rank=10)
    print(f"database size: {len(database)}, target object index: {target}")

    # ------------------------------------------------------------------ #
    # 2. IDCA: bounds on the domination count of the target
    # ------------------------------------------------------------------ #
    idca = IDCA(database)
    result = idca.domination_count(target, query, stop=MaxIterations(6), max_iterations=6)
    print(
        f"filter step: {result.complete_count} objects always dominate, "
        f"{result.pruned_count} never do, {result.num_influence} influence objects remain"
    )
    for stat in result.iterations:
        print(
            f"  iteration {stat.iteration}: accumulated uncertainty "
            f"{stat.uncertainty:.3f} ({stat.elapsed_seconds * 1000:.1f} ms)"
        )
    lower, upper = result.bounds.less_than(10)
    print(f"P(target is a 10NN of the query) is within [{lower:.3f}, {upper:.3f}]")

    # ------------------------------------------------------------------ #
    # 3. a probabilistic threshold kNN query over the whole database
    # ------------------------------------------------------------------ #
    knn = probabilistic_knn_threshold(database, query, k=5, tau=0.5)
    print(
        f"\n5NN with tau=0.5: {len(knn.matches)} results, "
        f"{len(knn.undecided)} undecided, {knn.pruned} pruned spatially "
        f"({knn.elapsed_seconds:.2f} s)"
    )
    for match in knn.matches:
        print(
            f"  object {match.index}: P(kNN) in "
            f"[{match.probability_lower:.3f}, {match.probability_upper:.3f}]"
        )

    # ------------------------------------------------------------------ #
    # 4. sanity check against the Monte-Carlo comparison partner
    # ------------------------------------------------------------------ #
    # MC only supports discrete objects, so both methods run on the same
    # discretised database (Section VII-A of the paper)
    rng = np.random.default_rng(0)
    small = uniform_rectangle_database(num_objects=80, max_extent=0.01, seed=42)
    discrete = discretise_database(small, 100, rng)
    mc = MonteCarloDominationCount(discrete, samples_per_object=100, seed=0)
    mc_target = target_by_mindist_rank(discrete, query, rank=10)
    mc_result = mc.domination_count_pmf(mc_target, query)
    idca_small = IDCA(discrete).domination_count(
        mc_target, query, stop=MaxIterations(6), max_iterations=6
    )
    print(
        f"\nMC (exact on samples) needed {mc_result.elapsed_seconds:.2f} s; "
        f"IDCA needed {idca_small.total_seconds:.2f} s and brackets the MC PMF:"
    )
    for k in range(5):
        lo, up = idca_small.bounds.pmf_bounds(k)
        print(f"  P(DomCount = {k}): MC {mc_result.pmf[k]:.3f}, IDCA [{lo:.3f}, {up:.3f}]")


if __name__ == "__main__":
    main()
