"""Regenerate (scaled-down) versions of every figure in the paper's evaluation.

This script runs the experiment behind each figure of Section VII with
laptop-friendly parameters, prints the resulting tables and optionally saves
them as CSV files for plotting.  The benchmark suite under ``benchmarks/``
runs the same experiments with assertions on the expected shapes; this script
is the human-readable counterpart referenced from ``EXPERIMENTS.md``.

Run with::

    python examples/reproduce_paper_figures.py [output_directory]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.experiments import (
    ablation_ugf_truncation,
    ablation_ugf_vs_regular_gf,
    figure5_mc_runtime,
    figure6a_pruning_power,
    figure6b_uncertainty_per_iteration,
    figure7_uncertainty_vs_runtime,
    figure8_predicate_queries,
    figure9a_influence_objects,
    figure9b_database_size,
)


def main(output_dir: str | None = None) -> None:
    experiments = [
        (
            "Figure 5",
            lambda: figure5_mc_runtime(
                num_objects=60, sample_sizes=(20, 40, 80, 160), num_queries=1
            ),
        ),
        (
            "Figure 6(a)",
            lambda: figure6a_pruning_power(
                max_extents=(0.001, 0.0025, 0.005, 0.0075, 0.01),
                num_objects=2_000,
                num_queries=5,
            ),
        ),
        (
            "Figure 6(b)",
            lambda: figure6b_uncertainty_per_iteration(
                num_objects=2_000, num_queries=3, iterations=5
            ),
        ),
        (
            "Figure 7(a)",
            lambda: figure7_uncertainty_vs_runtime(
                dataset="synthetic",
                sample_sizes=(25, 50, 100),
                num_objects=60,
                max_extent=0.06,
                iterations=5,
                num_queries=2,
            ),
        ),
        (
            "Figure 7(b)",
            lambda: figure7_uncertainty_vs_runtime(
                dataset="iip",
                sample_sizes=(25, 50, 100),
                num_objects=60,
                max_extent=0.6,
                iterations=5,
                num_queries=2,
            ),
        ),
        (
            "Figure 8",
            lambda: figure8_predicate_queries(
                k_values=(1, 5, 10), taus=(0.25, 0.5, 0.75), num_objects=60
            ),
        ),
        (
            "Figure 9(a)",
            lambda: figure9a_influence_objects(
                target_ranks=(1, 5, 10, 25, 50), num_objects=5_000, iterations=3
            ),
        ),
        (
            "Figure 9(b)",
            lambda: figure9b_database_size(
                database_sizes=(2_000, 4_000, 6_000, 8_000, 10_000), iterations=3
            ),
        ),
        ("Ablation: UGF vs regular GFs", lambda: ablation_ugf_vs_regular_gf()),
        ("Ablation: UGF truncation", lambda: ablation_ugf_truncation()),
    ]

    out_path = Path(output_dir) if output_dir else None
    if out_path is not None:
        out_path.mkdir(parents=True, exist_ok=True)

    for title, runner in experiments:
        print(f"\n===== {title} " + "=" * max(0, 60 - len(title)))
        table = runner()
        print(table.to_text())
        if out_path is not None:
            csv_file = out_path / f"{table.name}.csv"
            table.save_csv(str(csv_file))
            print(f"(saved to {csv_file})")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
