"""Sensor-network example: probabilistic inverse ranking and expected-rank ranking.

Scenario: a network of environmental sensors reports (temperature, humidity)
readings.  Readings are uncertain — every sensor has a calibration tolerance,
and some cheap sensors only report coarse discrete levels.  An analyst asks:

* "Where does the new sensor's reading rank among all stations, relative to a
  reference condition?" (probabilistic inverse ranking, Corollary 3)
* "Give me the stations ordered by how similar their readings are to the
  reference condition." (expected-rank ranking, Corollary 6)

The example also demonstrates mixing object models in one database:
box-uniform tolerances, truncated-Gaussian noise and discrete level readings.

The second half streams: the database is hosted by a
:class:`~repro.engine.QueryService`, and each tick applies a batch of fresh
sensor readings (updates) — plus, eventually, a newly commissioned station
(insert) — through :meth:`~repro.engine.QueryService.apply`.  Every batch
advances the snapshot epoch behind the service's mutation barrier; the
inverse ranking and the expected-rank ranking are re-run against each new
snapshot, with the bounds caches of untouched sensors staying warm.

Run with::

    python examples/sensor_inverse_ranking.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    expected_rank_ranking,
    probabilistic_inverse_ranking,
)
from repro.geometry import Rectangle
from repro.uncertain import (
    BoxUniformObject,
    DiscreteObject,
    TruncatedGaussianObject,
    UncertainDatabase,
)


def build_sensor_database(num_sensors: int = 60, seed: int = 5) -> UncertainDatabase:
    """A mixed-model database of uncertain sensor readings in [0, 1]^2."""
    rng = np.random.default_rng(seed)
    objects = []
    for i in range(num_sensors):
        center = rng.uniform(0.0, 1.0, size=2)
        kind = i % 3
        if kind == 0:
            # calibrated sensor with a +/- tolerance box
            tolerance = rng.uniform(0.005, 0.02, size=2)
            objects.append(
                BoxUniformObject(
                    Rectangle.from_center_extent(center, 2 * tolerance),
                    label=f"box-sensor-{i}",
                )
            )
        elif kind == 1:
            # sensor with Gaussian noise, truncated at 3 sigma
            std = rng.uniform(0.002, 0.01, size=2)
            objects.append(
                TruncatedGaussianObject(center, std, label=f"gauss-sensor-{i}")
            )
        else:
            # cheap sensor reporting one of a few discrete levels
            levels = center + rng.normal(0.0, 0.01, size=(4, 2))
            weights = rng.uniform(0.5, 1.0, size=4)
            objects.append(
                DiscreteObject(levels, weights / weights.sum(), label=f"level-sensor-{i}")
            )
    return UncertainDatabase(objects)


def main() -> None:
    database = build_sensor_database()
    print(f"sensor database with {len(database)} uncertain readings")

    # the reference condition is itself measured imprecisely
    reference = TruncatedGaussianObject([0.55, 0.45], [0.01, 0.01], label="reference")

    # ------------------------------------------------------------------ #
    # inverse ranking of one particular station
    # ------------------------------------------------------------------ #
    station = 7
    distribution = probabilistic_inverse_ranking(
        database, station, reference, max_iterations=8, uncertainty_budget=0.1
    )
    print(
        f"\nRank distribution of {database[station].label} relative to the reference "
        f"(uncertainty {distribution.uncertainty():.3f}):"
    )
    shown = 0
    for rank in range(1, len(distribution) + 1):
        lower, upper = distribution.rank_bounds(rank)
        if upper > 0.01:
            print(f"  P(rank = {rank:2d}) in [{lower:.3f}, {upper:.3f}]")
            shown += 1
        if shown >= 8:
            break
    lower, upper = distribution.expected_rank_bounds()
    print(f"  expected rank in [{lower:.2f}, {upper:.2f}]")
    print(f"  most likely rank: {distribution.most_likely_rank()}")

    # ------------------------------------------------------------------ #
    # full similarity ranking by expected rank
    # ------------------------------------------------------------------ #
    ranking = expected_rank_ranking(
        database, reference, max_iterations=4, uncertainty_budget=0.5
    )
    print(f"\nTop stations by expected rank ({ranking.elapsed_seconds:.2f} s):")
    for entry in ranking.top(8):
        label = database[entry.index].label
        print(
            f"  {label:18s} expected rank in "
            f"[{entry.expected_rank_lower:5.2f}, {entry.expected_rank_upper:5.2f}]"
        )

    # ------------------------------------------------------------------ #
    # streaming: fresh readings arrive, the rankings follow the snapshots
    # ------------------------------------------------------------------ #
    streaming_readings(database, reference, station)


def streaming_readings(database, reference, station: int) -> None:
    """Re-rank the watched station as new sensor readings stream in.

    Each tick applies one mutation batch through the service's snapshot
    barrier: re-readings tighten a few sensors around fresh centers that
    drift toward the reference condition, and the second tick also
    commissions a brand-new station right next to it.  The watched
    station's rank distribution and the head of the expected-rank ranking
    are re-evaluated against every snapshot.
    """
    from repro import Insert, Update
    from repro.engine import (
        ExecutorConfig,
        InverseRankingQuery,
        QueryService,
        RankingQuery,
    )

    rng = np.random.default_rng(17)
    reference_center = reference.mean()
    # re-read the box/discrete sensors nearest the reference (never the
    # watched station itself, so its own reading stays fixed)
    refreshed = [i for i in (0, 9, 12, 21) if i != station]

    watch = InverseRankingQuery(
        target=station, reference=reference, max_iterations=6, uncertainty_budget=0.1
    )
    leaderboard = RankingQuery(query=reference, max_iterations=4, uncertainty_budget=0.5)

    print("\n--- streaming readings (mutations through the service) ---")
    with QueryService(database, ExecutorConfig(workers=2)) as service:
        for tick in range(3):
            ops = []
            for i in refreshed:
                # a fresh reading: drift 40% of the way toward the reference,
                # with the tight tolerance of a freshly calibrated sensor
                current = service.engine.database[i]
                center = current.mean() + 0.4 * (reference_center - current.mean())
                center = center + rng.normal(0.0, 0.005, size=2)
                ops.append(
                    Update(
                        i,
                        TruncatedGaussianObject(
                            center, [0.004, 0.004], label=current.label
                        ),
                    )
                )
            if tick == 1:
                ops.append(
                    Insert(
                        TruncatedGaussianObject(
                            reference_center + rng.normal(0.0, 0.01, size=2),
                            [0.003, 0.003],
                            label="new-station",
                        )
                    )
                )
            epoch = service.apply(ops)
            current = service.engine.database
            distribution, ranking = service.submit([watch, leaderboard]).result(
                timeout=120
            )
            lower, upper = distribution.expected_rank_bounds()
            top = ranking.top(3)
            leaders = ", ".join(current[e.index].label for e in top)
            print(
                f"tick {tick}: {len(ops)} readings -> epoch {epoch} "
                f"({len(current)} stations)"
            )
            print(
                f"    {current[station].label}: expected rank in "
                f"[{lower:.2f}, {upper:.2f}], most likely rank "
                f"{distribution.most_likely_rank()}"
            )
            print(f"    leaders: {leaders}")


if __name__ == "__main__":
    main()
