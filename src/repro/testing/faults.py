"""Fault-injection harness for the service tier's chaos tests.

The fault model the service defends against (see "Failure model" in
``docs/architecture.md``) has four domains, and this module can produce
all of them on demand, deterministically:

* **worker crash** — :class:`FaultPlan` can SIGKILL a worker from *inside*
  the worker, after it started a chosen number of chunks
  (:func:`chunk_fault_hook`), or the parent can :func:`kill_worker` a pid
  between batches;
* **worker hang** — the plan can delay a chunk by a configurable sleep,
  long enough to wedge a lane past any deadline;
* **store corruption** — :func:`corrupt_boundstore_record` scribbles over
  published record headers in a live :class:`SharedBoundStore`, so the
  workers' validated reads must reject them; :func:`truncate_store_file`
  tears a persisted warm-start backing so the next incarnation's
  validation ladder must reject and rebuild it;
* **mid-protocol crashes** — the plan can SIGKILL a worker inside the
  bounds store's publish window (``kill_during_publish`` →
  :func:`publish_fault_hook`: an orphaned record must never be served) or
  right after acquiring an in-flight claim (``kill_after_claim`` →
  :func:`claim_fault_hook`: a survivor must steal the dead holder's
  claim);
* **shm loss** — :func:`drop_shared_block` unlinks a named block out from
  under the service, so the next attaching process (e.g. a respawned
  worker) fails and must degrade.

The in-worker faults travel through one environment variable
(:data:`FAULT_PLAN_ENV`, a JSON-encoded plan) inherited by worker processes
at creation under both ``fork`` and ``spawn``; the executor's chunk entry
point calls :func:`chunk_fault_hook` only when the variable is set, so the
harness costs production paths a single dict lookup.  "Fire once" semantics
survive worker respawns through marker files in a shared directory —
without them, a respawned worker would re-read the same plan and kill
itself again, forever.

:func:`snapshot_resources` / :func:`assert_no_leaked_resources` implement
the leak check the CI fault-injection job wraps around every test: no
orphaned child processes, no dangling ``/dev/shm`` blocks.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import signal
import struct
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.boundstore import SharedBoundStore

__all__ = [
    "ANY_LANE",
    "FAULT_PLAN_ENV",
    "FaultPlan",
    "assert_no_leaked_resources",
    "chunk_fault_hook",
    "claim_fault_hook",
    "corrupt_boundstore_record",
    "drop_shared_block",
    "inject_faults",
    "kill_worker",
    "publish_fault_hook",
    "snapshot_resources",
    "truncate_store_file",
]

#: Environment variable carrying the JSON-encoded :class:`FaultPlan`.
#: (Mirrored as ``executor.FAULT_PLAN_ENV`` so the executor need not import
#: this module just to know the name.)
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: ``kill_lane`` / ``delay_lane`` value matching every lane — the fault
#: fires in whichever worker reaches the trigger first (combine with the
#: once-markers to fire in exactly one of them).
ANY_LANE = -1


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic chaos plan, applied inside worker processes.

    All triggers count *chunk starts within one worker process*: a fault
    with ``kill_after_chunks=K`` fires when the worker begins its
    ``(K+1)``-th chunk.  ``kill_lane`` / ``delay_lane`` select the lane
    (``ANY_LANE`` matches all; ``None`` disables that fault).  With
    ``*_once`` set (the default), the fault fires in exactly one worker
    exactly once per plan — including across respawns — which requires a
    ``marker_dir`` shared by all workers; :func:`inject_faults` creates one
    automatically.
    """

    kill_lane: Optional[int] = None
    kill_after_chunks: int = 0
    kill_once: bool = True
    delay_lane: Optional[int] = None
    delay_seconds: float = 0.0
    delay_after_chunks: int = 0
    delay_once: bool = True
    #: SIGKILL a worker inside the bounds store's publish window — after a
    #: record is appended (and the cursor advanced) but *before* its index
    #: slot is published.  Exercises the crash-during-publish path: the
    #: orphaned record must never be served and never corrupt a successor.
    #: Always once-guarded (an un-guarded variant would kill every worker).
    kill_during_publish: bool = False
    #: SIGKILL a worker immediately after it *acquires* a bounds-store
    #: claim — leaving an in-flight claim whose holder is dead, which a
    #: surviving worker must steal.  Always once-guarded.
    kill_after_claim: bool = False
    marker_dir: Optional[str] = None

    def to_json(self) -> str:
        """Serialise the plan for the :data:`FAULT_PLAN_ENV` variable."""
        return json.dumps(dataclasses.asdict(self))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Rebuild a plan from its environment-variable encoding."""
        return cls(**json.loads(text))

    @property
    def needs_markers(self) -> bool:
        """Whether any armed fault uses once-semantics (needs a marker dir)."""
        return (
            (self.kill_lane is not None and self.kill_once)
            or (self.delay_lane is not None and self.delay_once)
            or self.kill_during_publish
            or self.kill_after_claim
        )


@contextmanager
def inject_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for every worker created inside the ``with`` block.

    Sets :data:`FAULT_PLAN_ENV` (and provisions a temporary marker
    directory when the plan's once-semantics need one), yields the plan as
    armed, and restores the environment on exit.  Workers inherit the
    environment at process creation, so the pool — or the service — must be
    constructed *inside* the block for its workers (and their respawns) to
    see the plan.
    """
    if plan.needs_markers and plan.marker_dir is None:
        with tempfile.TemporaryDirectory(prefix="repro-faults-") as marker_dir:
            armed = dataclasses.replace(plan, marker_dir=marker_dir)
            with inject_faults(armed) as result:
                yield result
        return
    previous = os.environ.get(FAULT_PLAN_ENV)
    os.environ[FAULT_PLAN_ENV] = plan.to_json()
    try:
        yield plan
    finally:
        if previous is None:
            os.environ.pop(FAULT_PLAN_ENV, None)
        else:
            os.environ[FAULT_PLAN_ENV] = previous


# --------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------- #
# chunk starts observed by *this* process (a respawned worker starts at 0;
# the marker files carry once-semantics across that reset)
_CHUNKS_STARTED = 0

# parse cache keyed by the raw env value, so the per-chunk overhead with a
# plan armed is one json decode total, not one per chunk
_PLAN_CACHE: dict[str, FaultPlan] = {}


def _lane_matches(selector: Optional[int], lane: Optional[int]) -> bool:
    if selector is None:
        return False
    return selector == ANY_LANE or selector == lane


def _fire_once(plan: FaultPlan, kind: str, once: bool) -> bool:
    """Whether this worker wins the right to fire a once-guarded fault."""
    if not once:
        return True
    if plan.marker_dir is None:  # no shared state: best effort, fire
        return True
    path = os.path.join(plan.marker_dir, f"{kind}.fired")
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    except OSError:  # marker dir gone: fail open rather than re-fire
        return False
    os.close(fd)
    return True


def _plan_from_env() -> Optional[FaultPlan]:
    """The armed plan, parsed and cached, or ``None`` when none is armed."""
    raw = os.environ.get(FAULT_PLAN_ENV)
    if not raw:
        return None
    plan = _PLAN_CACHE.get(raw)
    if plan is None:
        try:
            plan = FaultPlan.from_json(raw)
        except (TypeError, ValueError):  # malformed plan: ignore, run clean
            plan = FaultPlan()
        _PLAN_CACHE[raw] = plan
    return plan


def chunk_fault_hook(lane: Optional[int]) -> None:
    """Apply the armed :class:`FaultPlan`, if any, at a chunk boundary.

    Called by the executor's worker-side chunk entry point before the chunk
    runs, with the worker's lane index.  Reads the plan from
    :data:`FAULT_PLAN_ENV`; no variable means no faults.  A kill is a real
    ``SIGKILL`` to this process — exactly what a crash or the OOM killer
    delivers — so the supervision path under test is the production one.
    """
    global _CHUNKS_STARTED
    plan = _plan_from_env()
    if plan is None:
        return
    started_before = _CHUNKS_STARTED
    _CHUNKS_STARTED += 1
    if (
        _lane_matches(plan.delay_lane, lane)
        and started_before >= plan.delay_after_chunks
        and plan.delay_seconds > 0
        and _fire_once(plan, "delay", plan.delay_once)
    ):
        time.sleep(plan.delay_seconds)
    if (
        _lane_matches(plan.kill_lane, lane)
        and started_before >= plan.kill_after_chunks
        and _fire_once(plan, "kill", plan.kill_once)
    ):
        os.kill(os.getpid(), signal.SIGKILL)


def publish_fault_hook() -> None:
    """SIGKILL this worker inside the bounds store's publish window.

    Called by ``BoundStoreClient.put`` — only when :data:`FAULT_PLAN_ENV`
    is set — after the record is appended and the segment cursor advanced,
    but *before* the index slot is published and before the writer lock is
    taken (a kill while holding the lock would wedge every other worker,
    which is a different fault than the one under test).  The crash leaves
    an orphaned record: the chaos suite asserts it is never served and
    never corrupts a successor's appends.
    """
    plan = _plan_from_env()
    if plan is None or not plan.kill_during_publish:
        return
    if _fire_once(plan, "publish-kill", True):
        os.kill(os.getpid(), signal.SIGKILL)


def claim_fault_hook() -> None:
    """SIGKILL this worker right after it acquired a bounds-store claim.

    Called by ``BoundStoreClient.claim`` — only when :data:`FAULT_PLAN_ENV`
    is set — after the claim entry is published and the writer lock
    released.  The crash leaves an in-flight claim with a dead holder; the
    chaos suite asserts a surviving worker *steals* it (dead-pid check, or
    lease expiry) and the column is still published exactly once.
    """
    plan = _plan_from_env()
    if plan is None or not plan.kill_after_claim:
        return
    if _fire_once(plan, "claim-kill", True):
        os.kill(os.getpid(), signal.SIGKILL)


# --------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------- #
def _proc_state(pid: int) -> str:
    """The kernel state letter for ``pid`` ("Z" = zombie), "" if unknown."""
    try:
        with open(f"/proc/{pid}/stat") as stat:
            return stat.read().rpartition(")")[2].split()[0]
    except (OSError, IndexError):
        return ""


def kill_worker(pid: int, wait_seconds: float = 5.0) -> None:
    """SIGKILL a worker process and wait until the pid is really gone.

    The wait matters for deterministic tests: submitting to a pool whose
    worker is *dying* (but not yet dead) can race the executor's own death
    detection.  Raises ``TimeoutError`` if the process outlives the wait —
    which would mean the kill failed, not that the test should continue.

    Reaping goes through the ``multiprocessing.Process`` object, never a
    raw ``os.waitpid``: stealing the exit status from under the process
    object leaves its ``poll()`` with ECHILD (= "unknown, assume alive"),
    and the already-reaped pid then haunts
    ``multiprocessing.active_children()`` forever — a phantom leak the
    resource checker cannot distinguish from a real one.
    """
    try:
        os.kill(pid, signal.SIGKILL)
    except ProcessLookupError:
        return
    deadline = time.monotonic() + wait_seconds
    while time.monotonic() < deadline:
        child = next(
            (c for c in multiprocessing.active_children() if c.pid == pid), None
        )
        if child is not None:
            # join records the exit status on the process object, so
            # active_children() drops it and the next iteration sees it gone
            child.join(max(deadline - time.monotonic(), 0.01))
            continue
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return
        if _proc_state(pid) == "Z":
            # dead, awaiting reaping by whoever owns it (the executor's
            # supervision thread) — dead enough for the test to proceed
            return
        time.sleep(0.01)
    raise TimeoutError(f"pid {pid} survived SIGKILL for {wait_seconds}s")


def corrupt_boundstore_record(store: "SharedBoundStore", max_records: int = 1) -> int:
    """Scribble over published record headers in a live bounds store.

    Walks the index for present slots and overwrites the magic field of up
    to ``max_records`` referenced records (``max_records=None`` corrupts
    every published record), which is what a stray writer or a partial
    segment wipe would leave behind.  Readers must reject the records via
    the validated-read path and demote themselves.  Returns the number of
    records corrupted.
    """
    from ..engine.boundstore import (
        _CLAIM_BYTES,
        _HEADER_BYTES,
        _PRESENT,
        _SLOT_BYTES,
    )

    handle = store.handle
    buf = store._shm.buf
    segments_offset = (
        _HEADER_BYTES
        + handle.num_slots * _SLOT_BYTES
        + handle.num_claims * _CLAIM_BYTES
    )
    corrupted = 0
    for slot in range(handle.num_slots):
        if max_records is not None and corrupted >= max_records:
            break
        (word,) = struct.unpack_from("<Q", buf, _HEADER_BYTES + _SLOT_BYTES * slot)
        if not word & _PRESENT:
            continue  # empty slots and reclaim tombstones reference nothing
        segment = (word >> 32) & 0xFF
        offset = word & 0xFFFFFFFF
        base = segments_offset + segment * handle.segment_bytes + offset
        struct.pack_into("<I", buf, base, 0xDEADBEEF)  # clobber the magic
        corrupted += 1
    return corrupted


def truncate_store_file(path: str, keep_bytes: int = 64) -> int:
    """Truncate a persisted (disk-backed) bounds-store file in place.

    Simulates a torn write / partial copy / full-disk incident on the
    warm-start backing: the next service that opens ``path`` must detect
    the truncation through the store's validation ladder and rebuild from
    empty — never serve the torn file.  Returns the resulting file size.
    """
    with open(path, "r+b") as backing:
        backing.truncate(keep_bytes)
    return os.path.getsize(path)


def drop_shared_block(name: str) -> bool:
    """Unlink a named shared-memory block out from under its consumers.

    Existing mappings keep working (POSIX semantics); processes attaching
    *after* the drop — e.g. a respawned worker re-running the pool
    initializer — get ``FileNotFoundError`` and must degrade gracefully.
    Returns whether the block existed.
    """
    from ..uncertain.sharedmem import unlink_block

    return unlink_block(name)


# --------------------------------------------------------------------- #
# resource-leak checking
# --------------------------------------------------------------------- #
_SHM_DIR = "/dev/shm"


def _shm_blocks() -> set[str]:
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:  # platform without /dev/shm: nothing to check
        return set()
    return {name for name in entries if name.startswith("repro")}


def snapshot_resources() -> tuple[set[int], set[str]]:
    """Snapshot this process's children and the repo's ``/dev/shm`` blocks.

    Take one before creating services/pools and hand it to
    :func:`assert_no_leaked_resources` afterwards; only *new* children and
    blocks count, so tests can nest inside fixtures that own resources.
    """
    children = {child.pid for child in multiprocessing.active_children()}
    return children, _shm_blocks()


def assert_no_leaked_resources(
    before: tuple[set[int], set[str]], timeout: float = 10.0
) -> None:
    """Assert everything created since ``before`` has been cleaned up.

    Polls (processes need a moment to be reaped after a pool shutdown, and
    SIGKILLed workers a moment longer) and raises ``AssertionError`` with
    the surviving pids / block names once ``timeout`` elapses.  This is the
    fixture-level guarantee of the CI fault-injection job: no test — chaos
    or not — may orphan a child process or leave a shared-memory block
    linked.
    """
    known_children, known_blocks = before
    deadline = time.monotonic() + timeout
    while True:
        leaked_children = {
            child.pid
            for child in multiprocessing.active_children()
            if child.pid not in known_children
        }
        leaked_blocks = _shm_blocks() - known_blocks
        if not leaked_children and not leaked_blocks:
            return
        if time.monotonic() >= deadline:
            raise AssertionError(
                f"leaked resources: child pids {sorted(leaked_children)}, "
                f"/dev/shm blocks {sorted(leaked_blocks)}"
            )
        time.sleep(0.05)
