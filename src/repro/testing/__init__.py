"""Testing utilities shipped with the library (not imported by runtime code).

Two members: :mod:`repro.testing.faults`, the fault-injection harness
behind ``tests/test_faults.py`` and ``benchmarks/bench_faults.py``, and
:mod:`repro.testing.load`, the closed/open-loop HTTP load generator
behind the gateway soak test and ``benchmarks/bench_gateway.py``.
Nothing in here is imported by the engine at runtime — the executor only
reaches into this package when the ``REPRO_FAULT_PLAN`` environment
variable is set, i.e. inside a chaos test.
"""

from . import faults, load

__all__ = ["faults", "load"]
