"""Closed- and open-loop HTTP load generation against the gateway.

The harness behind the gateway soak test (``tests/test_gateway_soak.py``)
and ``benchmarks/bench_gateway.py`` — and the closed-loop driver every
later performance PR can point at the service, per the ROADMAP.  Three
entry points, all synchronous (each spins up a private event loop):

* :func:`run_closed_loop` — ``concurrency`` workers, each holding one
  keep-alive connection and issuing its next request the moment the
  previous response lands.  Offered load adapts to service speed; this is
  the shape that finds capacity and drives soak runs.
* :func:`run_open_loop` — requests fired on a fixed arrival schedule
  regardless of completions (bounded by ``max_in_flight``).  Offered load
  is constant; this is the shape that finds overload behaviour.
* :func:`run_ramp` — a sequence of closed-loop steps at increasing
  concurrency, returning one :class:`LoadReport` per step for
  latency-vs-offered-load curves.

Requests come from a ``request_factory(index) -> (path, document)``
callable, so workloads stay deterministic: request ``index`` is a global
sequence number, and the same factory replayed against the same database
produces the same documents.  Latency is recorded into the same
fixed-bucket :class:`~repro.gateway.metrics.LatencyHistogram` the gateway
itself exports, so client-side and server-side quantiles are directly
comparable.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..gateway.metrics import LatencyHistogram

__all__ = ["LoadReport", "run_closed_loop", "run_open_loop", "run_ramp"]

#: ``request_factory`` signature: global request index → (path, JSON document).
RequestFactory = Callable[[int], tuple[str, dict]]


@dataclass
class LoadReport:
    """Outcome of one load-generation run.

    ``offered`` counts requests sent, ``completed`` counts well-formed
    HTTP responses of any status (the per-status split is in
    ``status_counts``), and ``transport_errors`` counts requests that
    died below HTTP (connection refused/reset, malformed response) —
    a healthy run has zero.  ``latency`` carries the histogram snapshot
    (count/mean/max/p50/p95/p99 seconds); ``throughput_rps`` is
    ``completed / duration_seconds``.
    """

    mode: str
    concurrency: int
    duration_seconds: float
    offered: int
    completed: int
    transport_errors: int
    status_counts: dict = field(default_factory=dict)
    latency: dict = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        """Completed responses per second over the whole run."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.completed / self.duration_seconds

    def ok_fraction(self) -> float:
        """Fraction of completed responses with status 200."""
        if not self.completed:
            return 0.0
        return self.status_counts.get(200, 0) / self.completed

    def as_dict(self) -> dict:
        """JSON-safe representation (for BENCH reports)."""
        return {
            "mode": self.mode,
            "concurrency": self.concurrency,
            "duration_seconds": self.duration_seconds,
            "offered": self.offered,
            "completed": self.completed,
            "transport_errors": self.transport_errors,
            "throughput_rps": self.throughput_rps,
            "status_counts": {str(k): v for k, v in sorted(self.status_counts.items())},
            "latency": self.latency,
        }


class _RunState:
    """Shared counters of one run (single event loop — no lock needed)."""

    def __init__(self):
        self.offered = 0
        self.completed = 0
        self.transport_errors = 0
        self.status_counts: dict[int, int] = {}
        self.histogram = LatencyHistogram()
        self.next_index = 0

    def take_index(self) -> int:
        index = self.next_index
        self.next_index += 1
        return index

    def record(self, status: int, latency_seconds: float) -> None:
        self.completed += 1
        self.status_counts[status] = self.status_counts.get(status, 0) + 1
        self.histogram.observe(latency_seconds)


async def _read_response(reader: asyncio.StreamReader) -> tuple[int, dict, bytes]:
    """Parse one fixed-length HTTP/1.1 response off ``reader``."""
    status_line = (await reader.readuntil(b"\r\n")).decode("latin-1").strip()
    parts = status_line.split(" ", 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise ValueError(f"malformed status line: {status_line!r}")
    status = int(parts[1])
    headers: dict[str, str] = {}
    while True:
        line = (await reader.readuntil(b"\r\n")).decode("latin-1")
        if line in ("\r\n", "\n"):
            break
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    body = await reader.readexactly(length) if length else b""
    return status, headers, body


def _encode_request(host: str, path: str, document: dict) -> bytes:
    body = json.dumps(document, sort_keys=True, separators=(",", ":")).encode()
    head = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


async def _issue(
    host: str,
    port: int,
    connection: Optional[tuple],
    path: str,
    document: dict,
    state: _RunState,
    timeout: float,
) -> Optional[tuple]:
    """Send one request, record its outcome, return the reusable connection.

    ``connection`` is a ``(reader, writer)`` pair or ``None`` (open one);
    returns the pair if it may be reused, ``None`` if it was closed.
    """
    reader = writer = None
    try:
        if connection is None:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), timeout
            )
        else:
            reader, writer = connection
        state.offered += 1
        started = time.monotonic()
        writer.write(_encode_request(host, path, document))
        await asyncio.wait_for(writer.drain(), timeout)
        status, headers, _body = await asyncio.wait_for(_read_response(reader), timeout)
        state.record(status, time.monotonic() - started)
        if "close" in headers.get("connection", "").lower():
            await _close_connection(writer)
            return None
        return reader, writer
    except (OSError, ValueError, asyncio.TimeoutError, asyncio.IncompleteReadError):
        state.transport_errors += 1
        if writer is not None:
            await _close_connection(writer)
        return None


async def _close_connection(writer: asyncio.StreamWriter) -> None:
    """Close and *await* closure, so no fd outlives the run's event loop."""
    writer.close()
    try:
        await writer.wait_closed()
    except OSError:
        pass


async def _closed_loop(
    host: str,
    port: int,
    request_factory: RequestFactory,
    state: _RunState,
    concurrency: int,
    total_requests: Optional[int],
    duration_seconds: Optional[float],
    timeout: float,
) -> float:
    deadline = (
        None if duration_seconds is None else time.monotonic() + duration_seconds
    )

    def stop() -> bool:
        if total_requests is not None and state.next_index >= total_requests:
            return True
        return deadline is not None and time.monotonic() >= deadline

    async def worker() -> None:
        connection = None
        try:
            while not stop():
                path, document = request_factory(state.take_index())
                connection = await _issue(
                    host, port, connection, path, document, state, timeout
                )
        finally:
            if connection is not None:
                await _close_connection(connection[1])

    started = time.monotonic()
    await asyncio.gather(*(worker() for _ in range(concurrency)))
    return time.monotonic() - started


async def _open_loop(
    host: str,
    port: int,
    request_factory: RequestFactory,
    state: _RunState,
    rate_rps: float,
    duration_seconds: float,
    max_in_flight: int,
    timeout: float,
) -> float:
    interval = 1.0 / rate_rps
    gate = asyncio.Semaphore(max_in_flight)
    tasks = []

    async def one(path: str, document: dict) -> None:
        # one connection per request: open-loop arrivals model independent
        # clients, and a response is never waited on before the next send
        async with gate:
            connection = await _issue(host, port, None, path, document, state, timeout)
            if connection is not None:
                await _close_connection(connection[1])

    started = time.monotonic()
    end = started + duration_seconds
    next_send = started
    while time.monotonic() < end:
        now = time.monotonic()
        if now < next_send:
            await asyncio.sleep(next_send - now)
        path, document = request_factory(state.take_index())
        tasks.append(asyncio.ensure_future(one(path, document)))
        next_send += interval
    if tasks:
        await asyncio.gather(*tasks)
    return time.monotonic() - started


def run_closed_loop(
    host: str,
    port: int,
    request_factory: RequestFactory,
    *,
    concurrency: int = 4,
    total_requests: Optional[int] = None,
    duration_seconds: Optional[float] = None,
    timeout: float = 30.0,
) -> LoadReport:
    """Closed-loop run: each worker sends its next request on completion.

    Exactly one of ``total_requests`` / ``duration_seconds`` bounds the
    run (passing both stops at whichever comes first).
    """
    if total_requests is None and duration_seconds is None:
        raise ValueError("pass total_requests and/or duration_seconds")
    state = _RunState()
    elapsed = asyncio.run(
        _closed_loop(
            host,
            port,
            request_factory,
            state,
            concurrency,
            total_requests,
            duration_seconds,
            timeout,
        )
    )
    return LoadReport(
        mode="closed",
        concurrency=concurrency,
        duration_seconds=elapsed,
        offered=state.offered,
        completed=state.completed,
        transport_errors=state.transport_errors,
        status_counts=dict(state.status_counts),
        latency=state.histogram.snapshot(),
    )


def run_open_loop(
    host: str,
    port: int,
    request_factory: RequestFactory,
    *,
    rate_rps: float,
    duration_seconds: float,
    max_in_flight: int = 256,
    timeout: float = 30.0,
) -> LoadReport:
    """Open-loop run: fixed arrival rate, completions don't gate sends."""
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps!r}")
    state = _RunState()
    elapsed = asyncio.run(
        _open_loop(
            host,
            port,
            request_factory,
            state,
            rate_rps,
            duration_seconds,
            max_in_flight,
            timeout,
        )
    )
    return LoadReport(
        mode="open",
        concurrency=max_in_flight,
        duration_seconds=elapsed,
        offered=state.offered,
        completed=state.completed,
        transport_errors=state.transport_errors,
        status_counts=dict(state.status_counts),
        latency=state.histogram.snapshot(),
    )


def run_ramp(
    host: str,
    port: int,
    request_factory: RequestFactory,
    *,
    concurrencies: tuple = (1, 2, 4, 8),
    requests_per_step: int = 50,
    timeout: float = 30.0,
) -> list[LoadReport]:
    """Closed-loop concurrency ramp: one :class:`LoadReport` per step."""
    return [
        run_closed_loop(
            host,
            port,
            request_factory,
            concurrency=concurrency,
            total_requests=requests_per_step,
            timeout=timeout,
        )
        for concurrency in concurrencies
    ]
