"""One-dimensional closed intervals.

Intervals are the building block of the rectangular uncertainty regions used
throughout the paper: every uncertain object is (minimally) bounded by an
axis-aligned rectangle, and the optimal spatial-domination criterion
(Corollary 1) is evaluated per dimension on the projection intervals of the
object rectangles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence


@dataclass(frozen=True)
class Interval:
    """A closed interval ``[lo, hi]`` on the real line.

    Degenerate intervals (``lo == hi``) are allowed and represent certain
    (point) attribute values.
    """

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.hi < self.lo:
            raise ValueError(
                f"invalid interval: hi ({self.hi}) must be >= lo ({self.lo})"
            )

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def length(self) -> float:
        """Extent of the interval (``hi - lo``)."""
        return self.hi - self.lo

    @property
    def center(self) -> float:
        """Midpoint of the interval."""
        return 0.5 * (self.lo + self.hi)

    @property
    def is_degenerate(self) -> bool:
        """True when the interval is a single point."""
        return self.hi == self.lo

    # ------------------------------------------------------------------ #
    # predicates
    # ------------------------------------------------------------------ #
    def contains(self, x: float) -> bool:
        """Return True when ``x`` lies inside the closed interval."""
        return self.lo <= x <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """Return True when ``other`` is completely inside this interval."""
        return self.lo <= other.lo and other.hi <= self.hi

    def intersects(self, other: "Interval") -> bool:
        """Return True when the two intervals share at least one point."""
        return self.lo <= other.hi and other.lo <= self.hi

    # ------------------------------------------------------------------ #
    # set-style operations
    # ------------------------------------------------------------------ #
    def intersection(self, other: "Interval") -> "Interval | None":
        """Return the overlapping interval or ``None`` when disjoint."""
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return Interval(lo, hi)

    def union(self, other: "Interval") -> "Interval":
        """Return the smallest interval covering both operands."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def split(self, at: float | None = None) -> tuple["Interval", "Interval"]:
        """Split into two sub-intervals at ``at`` (defaults to the midpoint).

        The split point must lie inside the interval; the two halves share the
        split point as boundary, which is fine for continuous distributions
        (the boundary has zero mass).
        """
        point = self.center if at is None else at
        if not self.contains(point):
            raise ValueError(f"split point {point} outside interval {self}")
        return Interval(self.lo, point), Interval(point, self.hi)

    # ------------------------------------------------------------------ #
    # distances (used by MinDist / MaxDist in Corollary 1)
    # ------------------------------------------------------------------ #
    def min_dist_to_point(self, x: float) -> float:
        """Minimal distance between a point and the interval (0 if inside)."""
        if x < self.lo:
            return self.lo - x
        if x > self.hi:
            return x - self.hi
        return 0.0

    def max_dist_to_point(self, x: float) -> float:
        """Maximal distance between a point and the interval."""
        return max(abs(x - self.lo), abs(x - self.hi))

    def min_dist_to_interval(self, other: "Interval") -> float:
        """Minimal distance between two intervals (0 if they overlap)."""
        if self.intersects(other):
            return 0.0
        if self.hi < other.lo:
            return other.lo - self.hi
        return self.lo - other.hi

    def max_dist_to_interval(self, other: "Interval") -> float:
        """Maximal distance between any two points of the intervals."""
        return max(abs(other.hi - self.lo), abs(self.hi - other.lo))

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def clamp(self, x: float) -> float:
        """Project ``x`` onto the interval."""
        return min(max(x, self.lo), self.hi)

    def __iter__(self) -> Iterator[float]:
        yield self.lo
        yield self.hi

    @staticmethod
    def hull(values: Sequence[float]) -> "Interval":
        """Smallest interval containing all ``values``."""
        if len(values) == 0:
            raise ValueError("cannot build the hull of an empty sequence")
        return Interval(min(values), max(values))
