"""Spatial domination criteria on rectangular uncertainty regions.

Given three axis-aligned rectangles ``A``, ``B`` and ``R``, *spatial (complete)
domination* asks whether **every** point of ``A`` is closer to **every** point
of ``R`` than **every** point of ``B`` is — i.e. whether
``dist(a, r) < dist(b, r)`` for all ``a in A``, ``b in B``, ``r in R``.

Two decision criteria are implemented:

* :func:`dominates_minmax` — the classical criterion
  ``MaxDist(A, R) < MinDist(B, R)``.  Correct but not tight: it ignores that
  the two distances depend on the *same* location of ``R``.
* :func:`dominates_optimal` — the optimal criterion of Emrich et al.
  (SIGMOD 2010), restated as Corollary 1 in the paper::

      sum_i  max_{r_i in {R_i^min, R_i^max}}
             ( MaxDist(A_i, r_i)^p - MinDist(B_i, r_i)^p )  <  0

  which is a *necessary and sufficient* condition for complete domination
  under any ``Lp`` norm with finite ``p``.

Both criteria also come in vectorised forms operating on ``(n, d, 2)`` arrays
so the complete-domination filter step of IDCA can scan an entire database
with a handful of numpy operations.
"""

from __future__ import annotations

import math
from typing import Literal

import numpy as np

from .rectangle import Rectangle

__all__ = [
    "dominates_minmax",
    "dominates_optimal",
    "dominates",
    "domination_bulk",
    "DominationCriterion",
]

DominationCriterion = Literal["optimal", "minmax"]


# ---------------------------------------------------------------------- #
# scalar criteria
# ---------------------------------------------------------------------- #
def dominates_minmax(a: Rectangle, b: Rectangle, r: Rectangle, p: float = 2.0) -> bool:
    """Min/Max decision criterion: ``MaxDist(A, R) < MinDist(B, R)``.

    Sufficient but not necessary for complete domination; kept as the
    state-of-the-art baseline the paper compares against (Figure 6).
    """
    from .metrics import max_dist, min_dist

    return max_dist(a, r, p) < min_dist(b, r, p)


def dominates_optimal(a: Rectangle, b: Rectangle, r: Rectangle, p: float = 2.0) -> bool:
    """Optimal decision criterion (Corollary 1 / ``DDCOptimal`` in Algorithm 1).

    Returns True iff ``A`` completely dominates ``B`` with respect to ``R``,
    i.e. ``PDom(A, B, R) = 1`` regardless of the PDFs inside the rectangles.

    The criterion requires a finite ``p``; for the Chebyshev norm fall back to
    :func:`dominates_minmax`.
    """
    if math.isinf(p):
        raise ValueError("the optimal criterion requires a finite p; use dominates_minmax")
    if p < 1:
        raise ValueError(f"Lp norms require p >= 1, got {p}")

    total = 0.0
    for ai, bi, ri in zip(a.intervals, b.intervals, r.intervals):
        worst = -math.inf
        for r_corner in (ri.lo, ri.hi):
            max_a = ai.max_dist_to_point(r_corner)
            min_b = bi.min_dist_to_point(r_corner)
            value = max_a ** p - min_b ** p
            if value > worst:
                worst = value
        total += worst
    return total < 0.0


def dominates(
    a: Rectangle,
    b: Rectangle,
    r: Rectangle,
    p: float = 2.0,
    criterion: DominationCriterion = "optimal",
) -> bool:
    """Dispatch to the requested complete-domination criterion."""
    if criterion == "optimal":
        return dominates_optimal(a, b, r, p)
    if criterion == "minmax":
        return dominates_minmax(a, b, r, p)
    raise ValueError(f"unknown domination criterion: {criterion!r}")


# ---------------------------------------------------------------------- #
# vectorised criteria
# ---------------------------------------------------------------------- #
def _max_dist_interval_point(lo: np.ndarray, hi: np.ndarray, r: np.ndarray) -> np.ndarray:
    """Per-dimension maximal distance between intervals [lo, hi] and points r."""
    return np.maximum(np.abs(r - lo), np.abs(r - hi))


def _min_dist_interval_point(lo: np.ndarray, hi: np.ndarray, r: np.ndarray) -> np.ndarray:
    """Per-dimension minimal distance between intervals [lo, hi] and points r."""
    return np.maximum(np.maximum(lo - r, r - hi), 0.0)


def domination_bulk(
    a_rects: np.ndarray,
    b_rects: np.ndarray,
    r_rect: np.ndarray,
    p: float = 2.0,
    criterion: DominationCriterion = "optimal",
) -> np.ndarray:
    """Vectorised complete-domination test.

    Parameters
    ----------
    a_rects, b_rects, r_rect:
        Arrays broadcastable to a common shape ``(..., d, 2)`` holding the
        rectangles of the (potential) dominators, dominatees and reference
        regions.  Typically ``r_rect`` is a single rectangle of shape
        ``(d, 2)`` and one of ``a_rects`` / ``b_rects`` a database of shape
        ``(n, d, 2)``; the batched pair-bounds kernel instead passes a padded
        ``(1, 1, c, m, d, 2)`` candidate tensor against ``(n_b, 1, 1, 1, d, 2)``
        target and ``(1, n_r, 1, 1, d, 2)`` reference grids, evaluating every
        (pair, candidate, partition) combination in one call.
    p:
        Finite ``Lp`` norm parameter (``p >= 1``).
    criterion:
        ``"optimal"`` (Corollary 1) or ``"minmax"``.

    Returns
    -------
    numpy.ndarray
        Boolean array of the broadcast shape ``(...)`` — entry ``i`` is True
        iff ``A_i`` completely dominates ``B_i`` w.r.t. ``R_i``.
    """
    if p < 1:
        raise ValueError(f"Lp norms require p >= 1, got {p}")
    if math.isinf(p):
        raise ValueError("domination_bulk requires a finite p")

    a_rects = np.asarray(a_rects, dtype=float)
    b_rects = np.asarray(b_rects, dtype=float)
    r_rect = np.asarray(r_rect, dtype=float)

    a_lo, a_hi = a_rects[..., 0], a_rects[..., 1]
    b_lo, b_hi = b_rects[..., 0], b_rects[..., 1]
    r_lo, r_hi = r_rect[..., 0], r_rect[..., 1]

    if criterion == "optimal":
        # evaluate the per-dimension term at both corners of R and keep the worst
        term_lo = (
            _max_dist_interval_point(a_lo, a_hi, r_lo) ** p
            - _min_dist_interval_point(b_lo, b_hi, r_lo) ** p
        )
        term_hi = (
            _max_dist_interval_point(a_lo, a_hi, r_hi) ** p
            - _min_dist_interval_point(b_lo, b_hi, r_hi) ** p
        )
        total = np.maximum(term_lo, term_hi).sum(axis=-1)
        return total < 0.0

    if criterion == "minmax":
        # MaxDist(A, R) < MinDist(B, R) on rectangles
        max_a = np.maximum(np.abs(r_hi - a_lo), np.abs(a_hi - r_lo))
        gap_lo = r_lo - b_hi
        gap_hi = b_lo - r_hi
        min_b = np.maximum(np.maximum(gap_lo, gap_hi), 0.0)
        max_a_dist = np.sum(max_a ** p, axis=-1)
        min_b_dist = np.sum(min_b ** p, axis=-1)
        return max_a_dist < min_b_dist

    raise ValueError(f"unknown domination criterion: {criterion!r}")
