"""Geometric substrate: intervals, rectangles, metrics and domination criteria."""

from .interval import Interval
from .rectangle import Rectangle, rectangles_to_array
from .metrics import (
    lp_distance,
    min_dist,
    max_dist,
    min_dist_point,
    max_dist_point,
    min_dist_arrays,
    max_dist_arrays,
    min_dist_point_arrays,
    max_dist_point_arrays,
)
from .domination import (
    DominationCriterion,
    dominates,
    dominates_minmax,
    dominates_optimal,
    domination_bulk,
)

__all__ = [
    "Interval",
    "Rectangle",
    "rectangles_to_array",
    "lp_distance",
    "min_dist",
    "max_dist",
    "min_dist_point",
    "max_dist_point",
    "min_dist_arrays",
    "max_dist_arrays",
    "min_dist_point_arrays",
    "max_dist_point_arrays",
    "DominationCriterion",
    "dominates",
    "dominates_minmax",
    "dominates_optimal",
    "domination_bulk",
]
