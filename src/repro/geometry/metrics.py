"""Distance functions and MinDist / MaxDist approximations.

The paper assumes Euclidean distance but explicitly notes that every result
holds for arbitrary ``Lp`` norms.  All geometry kernels in this package are
therefore parameterised by ``p`` (``p = 2`` by default, ``p = math.inf`` for
the Chebyshev norm).

Two families of functions are provided:

* scalar functions working on :class:`~repro.geometry.rectangle.Rectangle`
  instances, used by the reference implementations and by index traversal;
* vectorised kernels working on arrays of shape ``(n, d, 2)`` produced by
  :func:`~repro.geometry.rectangle.rectangles_to_array`, used by the bulk
  filter steps over whole databases.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .rectangle import Rectangle

__all__ = [
    "lp_distance",
    "min_dist_point",
    "max_dist_point",
    "min_dist",
    "max_dist",
    "min_dist_arrays",
    "max_dist_arrays",
    "min_dist_point_arrays",
    "max_dist_point_arrays",
]


def _validate_p(p: float) -> float:
    if p < 1:
        raise ValueError(f"Lp norms require p >= 1, got {p}")
    return float(p)


def lp_distance(a: Sequence[float], b: Sequence[float], p: float = 2.0) -> float:
    """``Lp`` distance between two points."""
    p = _validate_p(p)
    diff = np.abs(np.asarray(a, dtype=float) - np.asarray(b, dtype=float))
    if math.isinf(p):
        return float(diff.max())
    return float(np.sum(diff ** p) ** (1.0 / p))


# ---------------------------------------------------------------------- #
# scalar rectangle distances
# ---------------------------------------------------------------------- #
def min_dist_point(rect: Rectangle, point: Sequence[float], p: float = 2.0) -> float:
    """Minimal ``Lp`` distance between a rectangle and a point."""
    p = _validate_p(p)
    per_dim = np.array(
        [iv.min_dist_to_point(float(x)) for iv, x in zip(rect.intervals, point)]
    )
    if math.isinf(p):
        return float(per_dim.max())
    return float(np.sum(per_dim ** p) ** (1.0 / p))


def max_dist_point(rect: Rectangle, point: Sequence[float], p: float = 2.0) -> float:
    """Maximal ``Lp`` distance between a rectangle and a point."""
    p = _validate_p(p)
    per_dim = np.array(
        [iv.max_dist_to_point(float(x)) for iv, x in zip(rect.intervals, point)]
    )
    if math.isinf(p):
        return float(per_dim.max())
    return float(np.sum(per_dim ** p) ** (1.0 / p))


def min_dist(a: Rectangle, b: Rectangle, p: float = 2.0) -> float:
    """Minimal ``Lp`` distance between two rectangles (0 when they overlap)."""
    p = _validate_p(p)
    per_dim = np.array(
        [ia.min_dist_to_interval(ib) for ia, ib in zip(a.intervals, b.intervals)]
    )
    if math.isinf(p):
        return float(per_dim.max())
    return float(np.sum(per_dim ** p) ** (1.0 / p))


def max_dist(a: Rectangle, b: Rectangle, p: float = 2.0) -> float:
    """Maximal ``Lp`` distance between two rectangles."""
    p = _validate_p(p)
    per_dim = np.array(
        [ia.max_dist_to_interval(ib) for ia, ib in zip(a.intervals, b.intervals)]
    )
    if math.isinf(p):
        return float(per_dim.max())
    return float(np.sum(per_dim ** p) ** (1.0 / p))


# ---------------------------------------------------------------------- #
# vectorised kernels on (n, d, 2) arrays
# ---------------------------------------------------------------------- #
def _aggregate(per_dim: np.ndarray, p: float) -> np.ndarray:
    """Aggregate per-dimension distances into an Lp norm along the last axis."""
    if math.isinf(p):
        return per_dim.max(axis=-1)
    return np.sum(per_dim ** p, axis=-1) ** (1.0 / p)


def min_dist_point_arrays(rects: np.ndarray, point: np.ndarray, p: float = 2.0) -> np.ndarray:
    """Minimal distances between ``n`` rectangles and a point, vectorised.

    ``rects`` has shape ``(n, d, 2)``; the result has shape ``(n,)``.
    """
    p = _validate_p(p)
    point = np.asarray(point, dtype=float)
    below = np.maximum(rects[..., 0] - point, 0.0)
    above = np.maximum(point - rects[..., 1], 0.0)
    return _aggregate(below + above, p)


def max_dist_point_arrays(rects: np.ndarray, point: np.ndarray, p: float = 2.0) -> np.ndarray:
    """Maximal distances between ``n`` rectangles and a point, vectorised."""
    p = _validate_p(p)
    point = np.asarray(point, dtype=float)
    per_dim = np.maximum(np.abs(point - rects[..., 0]), np.abs(point - rects[..., 1]))
    return _aggregate(per_dim, p)


def min_dist_arrays(rects: np.ndarray, other: np.ndarray, p: float = 2.0) -> np.ndarray:
    """Minimal distances between rectangles, fully broadcast.

    ``rects`` and ``other`` may be any shapes broadcastable to a common
    ``(..., d, 2)`` — the classical case is ``(n, d, 2)`` against ``(d, 2)``,
    but batched kernels pass higher-rank grids (e.g. ``(n, 1, d, 2)`` against
    ``(1, m, d, 2)`` for all-pairs distances in one call).
    """
    p = _validate_p(p)
    other = np.asarray(other, dtype=float)
    gap_lo = other[..., 0] - rects[..., 1]  # other entirely above rects
    gap_hi = rects[..., 0] - other[..., 1]  # other entirely below rects
    per_dim = np.maximum(np.maximum(gap_lo, gap_hi), 0.0)
    return _aggregate(per_dim, p)


def max_dist_arrays(rects: np.ndarray, other: np.ndarray, p: float = 2.0) -> np.ndarray:
    """Maximal distances between rectangles, broadcast like :func:`min_dist_arrays`."""
    p = _validate_p(p)
    other = np.asarray(other, dtype=float)
    per_dim = np.maximum(
        np.abs(other[..., 1] - rects[..., 0]), np.abs(rects[..., 1] - other[..., 0])
    )
    return _aggregate(per_dim, p)
