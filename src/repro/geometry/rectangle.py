"""Axis-aligned hyper-rectangles (minimum bounding rectangles, MBRs).

Every uncertain object in the paper's model is minimally bounded by a
``d``-dimensional rectangle.  The rectangle class below is the common currency
between the uncertainty model, the spatial-domination criteria, the index
structures and the decomposition machinery.

Rectangles are immutable; all operations return new instances.  A thin
vectorised representation (``Rectangle.to_array`` / ``Rectangle.from_array``)
is provided so that bulk computations over entire databases can run on numpy
arrays of shape ``(n, d, 2)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from .interval import Interval


@dataclass(frozen=True)
class Rectangle:
    """A closed axis-aligned rectangle in ``R^d``.

    Parameters
    ----------
    intervals:
        One :class:`Interval` per dimension.
    """

    intervals: tuple[Interval, ...]

    def __post_init__(self) -> None:
        if len(self.intervals) == 0:
            raise ValueError("a rectangle needs at least one dimension")
        object.__setattr__(self, "intervals", tuple(self.intervals))

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_bounds(lows: Sequence[float], highs: Sequence[float]) -> "Rectangle":
        """Build a rectangle from per-dimension lower and upper bounds."""
        if len(lows) != len(highs):
            raise ValueError("lows and highs must have the same length")
        return Rectangle(tuple(Interval(float(l), float(h)) for l, h in zip(lows, highs)))

    @staticmethod
    def from_point(point: Sequence[float]) -> "Rectangle":
        """Build a degenerate rectangle representing a certain point."""
        return Rectangle.from_bounds(point, point)

    @staticmethod
    def from_center_extent(center: Sequence[float], extent: Sequence[float] | float) -> "Rectangle":
        """Build a rectangle from a center point and per-dimension full extents."""
        center = np.asarray(center, dtype=float)
        extent_arr = np.broadcast_to(np.asarray(extent, dtype=float), center.shape)
        half = 0.5 * extent_arr
        return Rectangle.from_bounds(center - half, center + half)

    @staticmethod
    def from_array(arr: np.ndarray) -> "Rectangle":
        """Build a rectangle from an array of shape ``(d, 2)`` holding lo/hi."""
        arr = np.asarray(arr, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise ValueError("expected an array of shape (d, 2)")
        return Rectangle.from_bounds(arr[:, 0], arr[:, 1])

    @staticmethod
    def bounding(points: np.ndarray) -> "Rectangle":
        """Minimum bounding rectangle of a point set of shape ``(n, d)``."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("expected a non-empty array of shape (n, d)")
        return Rectangle.from_bounds(pts.min(axis=0), pts.max(axis=0))

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def dimensions(self) -> int:
        """Number of dimensions ``d``."""
        return len(self.intervals)

    @property
    def lows(self) -> np.ndarray:
        """Per-dimension lower bounds as a numpy array."""
        return np.array([iv.lo for iv in self.intervals], dtype=float)

    @property
    def highs(self) -> np.ndarray:
        """Per-dimension upper bounds as a numpy array."""
        return np.array([iv.hi for iv in self.intervals], dtype=float)

    @property
    def center(self) -> np.ndarray:
        """Center point of the rectangle."""
        return 0.5 * (self.lows + self.highs)

    @property
    def extents(self) -> np.ndarray:
        """Per-dimension side lengths."""
        return self.highs - self.lows

    @property
    def volume(self) -> float:
        """Lebesgue volume (product of side lengths)."""
        return float(np.prod(self.extents))

    @property
    def is_degenerate(self) -> bool:
        """True when the rectangle collapses to a single point."""
        return bool(np.all(self.extents == 0.0))

    def to_array(self) -> np.ndarray:
        """Return a ``(d, 2)`` array of lo/hi bounds."""
        return np.stack([self.lows, self.highs], axis=1)

    # ------------------------------------------------------------------ #
    # predicates
    # ------------------------------------------------------------------ #
    def contains_point(self, point: Sequence[float]) -> bool:
        """Return True when ``point`` lies inside the closed rectangle."""
        p = np.asarray(point, dtype=float)
        return bool(np.all(p >= self.lows) and np.all(p <= self.highs))

    def contains_rectangle(self, other: "Rectangle") -> bool:
        """Return True when ``other`` is completely inside this rectangle."""
        return all(a.contains_interval(b) for a, b in zip(self.intervals, other.intervals))

    def intersects(self, other: "Rectangle") -> bool:
        """Return True when the two rectangles share at least one point."""
        return all(a.intersects(b) for a, b in zip(self.intervals, other.intervals))

    # ------------------------------------------------------------------ #
    # set-style operations
    # ------------------------------------------------------------------ #
    def intersection(self, other: "Rectangle") -> "Rectangle | None":
        """Return the overlap rectangle or ``None`` when disjoint."""
        parts = []
        for a, b in zip(self.intervals, other.intervals):
            inter = a.intersection(b)
            if inter is None:
                return None
            parts.append(inter)
        return Rectangle(tuple(parts))

    def union(self, other: "Rectangle") -> "Rectangle":
        """Smallest rectangle covering both operands."""
        return Rectangle(tuple(a.union(b) for a, b in zip(self.intervals, other.intervals)))

    def split(self, axis: int, at: float | None = None) -> tuple["Rectangle", "Rectangle"]:
        """Split the rectangle along ``axis`` at coordinate ``at``.

        The default split point is the midpoint of the chosen axis.  This is
        the geometric primitive used by the kd-tree decomposition of
        uncertainty regions (Section V of the paper).
        """
        if not 0 <= axis < self.dimensions:
            raise ValueError(f"axis {axis} out of range for {self.dimensions} dimensions")
        left_iv, right_iv = self.intervals[axis].split(at)
        left = list(self.intervals)
        right = list(self.intervals)
        left[axis] = left_iv
        right[axis] = right_iv
        return Rectangle(tuple(left)), Rectangle(tuple(right))

    def widest_axis(self) -> int:
        """Index of the dimension with the largest extent."""
        return int(np.argmax(self.extents))

    def clamp_point(self, point: Sequence[float]) -> np.ndarray:
        """Project a point onto the rectangle."""
        p = np.asarray(point, dtype=float)
        return np.minimum(np.maximum(p, self.lows), self.highs)

    # ------------------------------------------------------------------ #
    # iteration helpers
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[Interval]:
        return iter(self.intervals)

    def __getitem__(self, axis: int) -> Interval:
        return self.intervals[axis]

    def corners(self) -> np.ndarray:
        """All ``2^d`` corner points, shape ``(2^d, d)``.

        Only intended for small ``d`` (the paper evaluates on 2-D data); the
        corner enumeration is used by tests and by the reference
        implementation of the domination criterion.
        """
        d = self.dimensions
        lows, highs = self.lows, self.highs
        corners = np.empty((2 ** d, d), dtype=float)
        for code in range(2 ** d):
            for axis in range(d):
                corners[code, axis] = highs[axis] if (code >> axis) & 1 else lows[axis]
        return corners


def rectangles_to_array(rectangles: Iterable[Rectangle]) -> np.ndarray:
    """Stack rectangles into a numpy array of shape ``(n, d, 2)``.

    The array layout ``[..., 0]`` = lows and ``[..., 1]`` = highs is the
    convention used by all vectorised geometry kernels in this package.
    """
    rects = list(rectangles)
    if not rects:
        raise ValueError("cannot stack an empty collection of rectangles")
    d = rects[0].dimensions
    out = np.empty((len(rects), d, 2), dtype=float)
    for i, r in enumerate(rects):
        if r.dimensions != d:
            raise ValueError("all rectangles must have the same dimensionality")
        out[i, :, 0] = r.lows
        out[i, :, 1] = r.highs
    return out
