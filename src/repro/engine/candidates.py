"""Candidate generation behind a single :class:`CandidateSource` protocol.

The query layer historically special-cased its two candidate paths: the
vectorised linear scan received a boolean exclusion mask while the R-tree
received a set of positions, and each query module picked one of them by hand.
The engine instead talks to one protocol; :class:`ScanCandidateSource` wraps
the numpy scan primitives and :class:`RTreeCandidateSource` wraps an
(optionally caller-supplied) STR-bulk-loaded R-tree.  Both accept the unified
exclusion specification of :func:`repro.index.normalize_exclude`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

import numpy as np

from ..geometry import Rectangle, max_dist_arrays, min_dist_arrays
from ..index import ExcludeSpec, RTree, normalize_exclude
from ..index.scan import knn_candidates as scan_knn_candidates
from ..uncertain import UncertainDatabase

__all__ = [
    "CandidateSource",
    "RangeClassification",
    "ScanCandidateSource",
    "RTreeCandidateSource",
    "make_candidate_source",
]


@dataclass(frozen=True)
class RangeClassification:
    """Outcome of the spatial filter step of a range query.

    Attributes
    ----------
    definite:
        Indices whose MBR lies entirely within ``epsilon`` of the query MBR —
        they satisfy the predicate with probability 1 and need no refinement.
    refine:
        Indices whose MinDist/MaxDist interval straddles ``epsilon``; only
        these require probabilistic evaluation.
    pruned:
        Number of objects whose MinDist already exceeds ``epsilon``.
    """

    definite: np.ndarray
    refine: np.ndarray
    pruned: int


@runtime_checkable
class CandidateSource(Protocol):
    """Uniform candidate-generation interface of the query engine."""

    def knn_candidates(
        self, query: Rectangle, k: int, p: float, exclude: ExcludeSpec
    ) -> np.ndarray:
        """Conservative kNN candidate indices (sorted)."""
        ...

    def range_classify(
        self, query: Rectangle, epsilon: float, p: float, exclude: ExcludeSpec
    ) -> RangeClassification:
        """Classify objects for an epsilon-range predicate."""
        ...

    def all_candidates(self, exclude: ExcludeSpec) -> np.ndarray:
        """Every non-excluded index (sorted) — the no-filter fallback."""
        ...

    def advance(self, database: UncertainDatabase, mutations: tuple) -> None:
        """Follow the database to a new snapshot (see ``UncertainDatabase.apply``)."""
        ...


class _DatabaseCandidateSource:
    """Shared plumbing of the concrete candidate sources."""

    def __init__(self, database: UncertainDatabase):
        self.database = database

    def __len__(self) -> int:
        return len(self.database)

    def advance(self, database: UncertainDatabase, mutations: tuple) -> None:
        """Rebind to the new snapshot (scan reads ``database.mbrs()`` fresh)."""
        self.database = database

    def all_candidates(self, exclude: ExcludeSpec) -> np.ndarray:
        """Every non-excluded database position, sorted ascending."""
        mask, _ = normalize_exclude(exclude, len(self.database))
        return np.flatnonzero(~mask)

    def _classify_subset(
        self,
        subset: np.ndarray,
        eligible: int,
        query: Rectangle,
        epsilon: float,
        p: float,
    ) -> RangeClassification:
        """Exact MinDist/MaxDist classification of a candidate subset.

        ``eligible`` is the number of non-excluded objects; everything outside
        ``subset`` counts as pruned along with subset members whose MinDist
        exceeds ``epsilon``.
        """
        if subset.shape[0] == 0:
            return RangeClassification(
                definite=subset, refine=subset, pruned=eligible
            )
        query_arr = query.to_array()
        mbrs = self.database.mbrs()[subset]
        min_d = min_dist_arrays(mbrs, query_arr, p)
        max_d = max_dist_arrays(mbrs, query_arr, p)
        definite = subset[max_d <= epsilon]
        refine = subset[(max_d > epsilon) & (min_d <= epsilon)]
        return RangeClassification(
            definite=definite,
            refine=refine,
            pruned=eligible - definite.shape[0] - refine.shape[0],
        )


class ScanCandidateSource(_DatabaseCandidateSource):
    """Candidate generation via the vectorised linear scan."""

    def knn_candidates(
        self, query: Rectangle, k: int, p: float, exclude: ExcludeSpec
    ) -> np.ndarray:
        """Conservative kNN candidates via one vectorised MinDist/MaxDist pass."""
        mask, _ = normalize_exclude(exclude, len(self.database))
        return scan_knn_candidates(self.database.mbrs(), query, k, p=p, exclude=mask)

    def range_classify(
        self, query: Rectangle, epsilon: float, p: float, exclude: ExcludeSpec
    ) -> RangeClassification:
        """Classify all non-excluded objects by exact MinDist/MaxDist."""
        subset = self.all_candidates(exclude)
        return self._classify_subset(subset, subset.shape[0], query, epsilon, p)


class RTreeCandidateSource(_DatabaseCandidateSource):
    """Candidate generation via an STR bulk-loaded R-tree.

    The tree is built lazily from the database MBRs unless one is supplied
    (e.g. a tree shared with other engines over the same database).
    """

    def __init__(self, database: UncertainDatabase, rtree: Optional[RTree] = None):
        super().__init__(database)
        self._rtree = rtree

    @property
    def rtree(self) -> RTree:
        """The underlying R-tree, bulk-loaded on first access when not supplied."""
        if self._rtree is None:
            self._rtree = RTree(self.database.mbrs())
        return self._rtree

    def advance(self, database: UncertainDatabase, mutations: tuple) -> None:
        """Maintain the R-tree incrementally across a snapshot boundary.

        Inserts, updates and deletes are applied to the existing tree (MBRs
        re-tightened along the touched paths) instead of bulk-loading a new
        one.  Candidate sets are tree-shape-independent, so the incremental
        tree answers queries identically to a fresh build.  A tree that was
        never built stays unbuilt — it will bulk-load lazily from the new
        snapshot.
        """
        from ..uncertain.base import Delete, Insert, Update

        tree = self._rtree
        self.database = database
        if tree is None:
            return
        for mutation in mutations:
            if isinstance(mutation, Insert):
                tree.insert(mutation.obj.mbr.to_array())
            elif isinstance(mutation, Update):
                tree.update(mutation.position, mutation.obj.mbr.to_array())
            elif isinstance(mutation, Delete):
                tree.delete(mutation.position)

    def knn_candidates(
        self, query: Rectangle, k: int, p: float, exclude: ExcludeSpec
    ) -> np.ndarray:
        """Conservative kNN candidates from a best-first R-tree traversal."""
        _, indices = normalize_exclude(exclude, len(self.database))
        return self.rtree.knn_candidates(query, k, p=p, exclude=indices)

    def range_classify(
        self, query: Rectangle, epsilon: float, p: float, exclude: ExcludeSpec
    ) -> RangeClassification:
        """Classify via an R-tree window query over the epsilon-expanded MBR."""
        mask, _ = normalize_exclude(exclude, len(self.database))
        eligible = int(np.count_nonzero(~mask))
        # A per-dimension expansion of the query MBR by epsilon yields a
        # superset of {MinDist <= epsilon} for every Lp norm with p >= 1:
        # a gap larger than epsilon in any single dimension already implies
        # an Lp distance above epsilon.
        expanded = Rectangle.from_bounds(
            np.asarray(query.lows) - epsilon, np.asarray(query.highs) + epsilon
        )
        subset = self.rtree.range_query(expanded)
        subset = subset[~mask[subset]]
        return self._classify_subset(subset, eligible, query, epsilon, p)


def make_candidate_source(
    database: UncertainDatabase, rtree: Optional[RTree] = None
) -> CandidateSource:
    """Default source selection: R-tree when one is supplied, scan otherwise."""
    if rtree is not None:
        return RTreeCandidateSource(database, rtree)
    return ScanCandidateSource(database)
