"""Unified probabilistic filter–refinement query engine.

The engine layers (see ``docs/architecture.md``):

candidate source → shared refinement context → refinement scheduler →
result assembly.  :class:`QueryEngine` wires them together; the public
functions in :mod:`repro.queries` are thin adapters over it, and
:meth:`QueryEngine.evaluate_many` exposes batch evaluation with shared
caches across a whole workload — serially or, with an
:class:`ExecutorConfig`, on a pool of worker processes (see
``engine/executor.py`` for the worker lifecycle and determinism contract).
For long-running processes, :class:`QueryService` keeps one worker pool
alive across every batch and ships the dataset to the workers through
shared memory (see ``engine/service.py``).  The service tier is
fault-tolerant — crashed workers are respawned and their chunks re-driven,
batches can carry deadlines, and admission control bounds the queue — with
the failure contract expressed by the typed errors of ``engine/errors.py``.
"""

from .boundstore import (
    BoundStoreClient,
    BoundStoreHandle,
    SharedBoundStore,
    bound_store_available,
)
from .candidates import (
    CandidateSource,
    RangeClassification,
    RTreeCandidateSource,
    ScanCandidateSource,
    make_candidate_source,
)
from .context import CacheStats, RefinementContext, TieredPairBoundsCache
from .engine import QueryEngine
from .errors import (
    DeadlineExceeded,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
    WorkerCrashError,
)
from .executor import (
    BatchReport,
    ChunkStats,
    ExecutorConfig,
    WorkerPool,
    adaptive_chunk_size,
    affine_partition,
    affinity_lane,
    partition_requests,
)
from .requests import (
    DominationCountQuery,
    InverseRankingQuery,
    KNNQuery,
    QueryRequest,
    RangeQuery,
    RankingQuery,
    RKNNQuery,
)
from .scheduler import RefinementScheduler
from .service import MutationTicket, QueryService, ServiceBatch

__all__ = [
    "BatchReport",
    "BoundStoreClient",
    "BoundStoreHandle",
    "CacheStats",
    "CandidateSource",
    "ChunkStats",
    "DeadlineExceeded",
    "ExecutorConfig",
    "DominationCountQuery",
    "InverseRankingQuery",
    "KNNQuery",
    "MutationTicket",
    "QueryEngine",
    "QueryRequest",
    "QueryService",
    "RangeClassification",
    "RangeQuery",
    "RankingQuery",
    "RefinementContext",
    "RefinementScheduler",
    "RKNNQuery",
    "RTreeCandidateSource",
    "ScanCandidateSource",
    "ServiceBatch",
    "ServiceClosedError",
    "ServiceError",
    "ServiceOverloadedError",
    "SharedBoundStore",
    "TieredPairBoundsCache",
    "WorkerCrashError",
    "WorkerPool",
    "adaptive_chunk_size",
    "affine_partition",
    "affinity_lane",
    "bound_store_available",
    "make_candidate_source",
    "partition_requests",
]
