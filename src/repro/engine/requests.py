"""Declarative query specifications for the engine's batch API.

Each request dataclass mirrors the keyword surface of the corresponding
:class:`~repro.engine.engine.QueryEngine` method; ``evaluate_many`` executes a
heterogeneous sequence of them against one shared refinement context.  The
requests are plain data so workloads can be built up front (or generated) and
shipped to the engine in one call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Union

from ..core import StopCriterion
from ..queries.common import ObjectSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .engine import QueryEngine

__all__ = [
    "KNNQuery",
    "RKNNQuery",
    "RangeQuery",
    "RankingQuery",
    "InverseRankingQuery",
    "DominationCountQuery",
    "QueryRequest",
]


@dataclass
class KNNQuery:
    """Probabilistic threshold kNN request (Corollary 4)."""

    query: ObjectSpec
    k: int
    tau: float
    max_iterations: int = 10
    strict: bool = False

    def run(self, engine: "QueryEngine"):
        return engine.knn(
            self.query,
            k=self.k,
            tau=self.tau,
            max_iterations=self.max_iterations,
            strict=self.strict,
        )


@dataclass
class RKNNQuery:
    """Probabilistic threshold reverse-kNN request (Corollary 5)."""

    query: ObjectSpec
    k: int
    tau: float
    max_iterations: int = 10
    candidate_indices: Optional[Iterable[int]] = None
    strict: bool = False

    def run(self, engine: "QueryEngine"):
        return engine.rknn(
            self.query,
            k=self.k,
            tau=self.tau,
            max_iterations=self.max_iterations,
            candidate_indices=self.candidate_indices,
            strict=self.strict,
        )


@dataclass
class RangeQuery:
    """Probabilistic threshold epsilon-range request."""

    query: ObjectSpec
    epsilon: float
    tau: float
    max_depth: int = 6
    strict: bool = False

    def run(self, engine: "QueryEngine"):
        return engine.range(
            self.query,
            epsilon=self.epsilon,
            tau=self.tau,
            max_depth=self.max_depth,
            strict=self.strict,
        )


@dataclass
class RankingQuery:
    """Expected-rank similarity ranking request (Corollary 6)."""

    query: ObjectSpec
    max_iterations: int = 6
    uncertainty_budget: float = 0.25
    candidate_indices: Optional[Iterable[int]] = None

    def run(self, engine: "QueryEngine"):
        return engine.ranking(
            self.query,
            max_iterations=self.max_iterations,
            uncertainty_budget=self.uncertainty_budget,
            candidate_indices=self.candidate_indices,
        )


@dataclass
class InverseRankingQuery:
    """Rank-distribution (inverse ranking) request (Corollary 3)."""

    target: ObjectSpec
    reference: ObjectSpec
    max_iterations: int = 10
    uncertainty_budget: Optional[float] = None
    stop: Optional[StopCriterion] = None
    exclude_indices: Optional[Sequence[int]] = None

    def run(self, engine: "QueryEngine"):
        return engine.inverse_ranking(
            self.target,
            self.reference,
            max_iterations=self.max_iterations,
            uncertainty_budget=self.uncertainty_budget,
            stop=self.stop,
            exclude_indices=self.exclude_indices,
        )


@dataclass
class DominationCountQuery:
    """Raw IDCA domination-count request (Algorithm 1).

    The experiment workloads of Section VII are batches of these; routing
    them through the engine lets a whole workload share one refinement
    context.  ``stop`` criteria are stateful, so every request must carry its
    own instance.
    """

    target: ObjectSpec
    reference: ObjectSpec
    stop: Optional[StopCriterion] = None
    max_iterations: int = 10
    exclude_indices: Optional[Sequence[int]] = None
    k_cap: Optional[int] = field(default=None)

    def run(self, engine: "QueryEngine"):
        return engine.domination_count(
            self.target,
            self.reference,
            stop=self.stop,
            max_iterations=self.max_iterations,
            exclude_indices=self.exclude_indices,
            k_cap=self.k_cap,
        )


QueryRequest = Union[
    KNNQuery,
    RKNNQuery,
    RangeQuery,
    RankingQuery,
    InverseRankingQuery,
    DominationCountQuery,
]
