"""Declarative query specifications for the engine's batch API.

Each request dataclass mirrors the keyword surface of the corresponding
:class:`~repro.engine.engine.QueryEngine` method; ``evaluate_many`` executes a
heterogeneous sequence of them against one shared refinement context.  The
requests are plain data so workloads can be built up front (or generated) and
shipped to the engine in one call — or, with an
:class:`~repro.engine.executor.ExecutorConfig`, pickled to worker processes
(requests therefore must stay picklable: the same property lets
:class:`~repro.engine.service.QueryService` enqueue them for its persistent
pool, where only the request — never the database — crosses the process
boundary per batch).
Every request carries a ``kind`` tag (used by the batch report) and an
``affinity_key`` (used by the affinity chunking strategy to keep requests
that share cacheable state in the same chunk — with the default unsplit
chunking, on the same worker).  Treat requests as immutable
inputs: under process execution a worker runs a *copy*, so side effects on a
request's ``stop`` criterion are not reflected in the caller's instance —
read decisions from the returned results instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, ClassVar, Iterable, Optional, Sequence, Union

import numpy as np

from ..core import StopCriterion
from ..queries.common import ObjectSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .engine import QueryEngine


def _spec_key(spec: "ObjectSpec") -> tuple:
    """Stable partitioning key of an object-or-index specification.

    Database positions key by value; ad-hoc objects key by identity (two
    requests share an affinity bucket only when they reference the *same*
    object, which is when worker-local caches can serve both).  The key is
    only ever used in the parent process, before chunks are shipped.
    """
    if isinstance(spec, (int, np.integer)):
        return ("index", int(spec))
    return ("object", id(spec))

__all__ = [
    "KNNQuery",
    "RKNNQuery",
    "RangeQuery",
    "RankingQuery",
    "InverseRankingQuery",
    "DominationCountQuery",
    "QueryRequest",
]


@dataclass
class KNNQuery:
    """Probabilistic threshold kNN request (Corollary 4)."""

    kind: ClassVar[str] = "knn"

    query: ObjectSpec
    k: int
    tau: float
    max_iterations: int = 10
    strict: bool = False

    def affinity_key(self) -> tuple:
        """Requests over the same query object share a worker's caches."""
        return _spec_key(self.query)

    def run(self, engine: "QueryEngine"):
        """Execute this request against ``engine`` (engine-internal hook)."""
        return engine.knn(
            self.query,
            k=self.k,
            tau=self.tau,
            max_iterations=self.max_iterations,
            strict=self.strict,
        )


@dataclass
class RKNNQuery:
    """Probabilistic threshold reverse-kNN request (Corollary 5)."""

    kind: ClassVar[str] = "rknn"

    query: ObjectSpec
    k: int
    tau: float
    max_iterations: int = 10
    candidate_indices: Optional[Iterable[int]] = None
    strict: bool = False

    def affinity_key(self) -> tuple:
        """Requests over the same query object share a worker's caches."""
        return _spec_key(self.query)

    def run(self, engine: "QueryEngine"):
        """Execute this request against ``engine`` (engine-internal hook)."""
        return engine.rknn(
            self.query,
            k=self.k,
            tau=self.tau,
            max_iterations=self.max_iterations,
            candidate_indices=self.candidate_indices,
            strict=self.strict,
        )


@dataclass
class RangeQuery:
    """Probabilistic threshold epsilon-range request."""

    kind: ClassVar[str] = "range"

    query: ObjectSpec
    epsilon: float
    tau: float
    max_depth: int = 6
    strict: bool = False

    def affinity_key(self) -> tuple:
        """Requests over the same query object share a worker's caches."""
        return _spec_key(self.query)

    def run(self, engine: "QueryEngine"):
        """Execute this request against ``engine`` (engine-internal hook)."""
        return engine.range(
            self.query,
            epsilon=self.epsilon,
            tau=self.tau,
            max_depth=self.max_depth,
            strict=self.strict,
        )


@dataclass
class RankingQuery:
    """Expected-rank similarity ranking request (Corollary 6)."""

    kind: ClassVar[str] = "ranking"

    query: ObjectSpec
    max_iterations: int = 6
    uncertainty_budget: float = 0.25
    candidate_indices: Optional[Iterable[int]] = None

    def affinity_key(self) -> tuple:
        """Requests over the same query object share a worker's caches."""
        return _spec_key(self.query)

    def run(self, engine: "QueryEngine"):
        """Execute this request against ``engine`` (engine-internal hook)."""
        return engine.ranking(
            self.query,
            max_iterations=self.max_iterations,
            uncertainty_budget=self.uncertainty_budget,
            candidate_indices=self.candidate_indices,
        )


@dataclass
class InverseRankingQuery:
    """Rank-distribution (inverse ranking) request (Corollary 3)."""

    kind: ClassVar[str] = "inverse_ranking"

    target: ObjectSpec
    reference: ObjectSpec
    max_iterations: int = 10
    uncertainty_budget: Optional[float] = None
    stop: Optional[StopCriterion] = None
    exclude_indices: Optional[Sequence[int]] = None

    def affinity_key(self) -> tuple:
        """Group by reference: experiment workloads rank many targets
        against one recurring reference object, whose decomposition dominates
        the per-request cache footprint."""
        return _spec_key(self.reference)

    def run(self, engine: "QueryEngine"):
        """Execute this request against ``engine`` (engine-internal hook)."""
        return engine.inverse_ranking(
            self.target,
            self.reference,
            max_iterations=self.max_iterations,
            uncertainty_budget=self.uncertainty_budget,
            stop=self.stop,
            exclude_indices=self.exclude_indices,
        )


@dataclass
class DominationCountQuery:
    """Raw IDCA domination-count request (Algorithm 1).

    The experiment workloads of Section VII are batches of these; routing
    them through the engine lets a whole workload share one refinement
    context.  ``stop`` criteria are stateful, so every request must carry its
    own instance.
    """

    kind: ClassVar[str] = "domination_count"

    target: ObjectSpec
    reference: ObjectSpec
    stop: Optional[StopCriterion] = None
    max_iterations: int = 10
    exclude_indices: Optional[Sequence[int]] = None
    k_cap: Optional[int] = field(default=None)

    def affinity_key(self) -> tuple:
        """Group by reference: experiment workloads rank many targets
        against one recurring reference object, whose decomposition dominates
        the per-request cache footprint."""
        return _spec_key(self.reference)

    def run(self, engine: "QueryEngine"):
        """Execute this request against ``engine`` (engine-internal hook)."""
        return engine.domination_count(
            self.target,
            self.reference,
            stop=self.stop,
            max_iterations=self.max_iterations,
            exclude_indices=self.exclude_indices,
            k_cap=self.k_cap,
        )


QueryRequest = Union[
    KNNQuery,
    RKNNQuery,
    RangeQuery,
    RankingQuery,
    InverseRankingQuery,
    DominationCountQuery,
]
