"""The unified probabilistic filter–refinement query engine.

All five query types of the paper share the same skeleton:

1. a **candidate source** prunes objects that cannot satisfy the predicate in
   any possible world (spatial filter),
2. a **shared refinement context** provides decomposition trees and memoised
   per-pair domination bounds so no work is repeated across candidates or
   across the queries of a batch,
3. a **refinement scheduler** spends the iteration budget on the candidates
   whose predicate bounds are still widest instead of exhausting candidates
   in arrival order,
4. the per-candidate outcomes are assembled into the query-type's result
   contract (``ThresholdQueryResult``, ``RankingResult``, …).

The public functions in :mod:`repro.queries` are thin adapters over this
class; :meth:`QueryEngine.evaluate_many` exposes the same machinery as a
batch API where the shared context amortises decomposition and bound
computations across a whole workload.
"""

from __future__ import annotations

import itertools
import time
from typing import Iterable, Optional, Sequence

from ..core import (
    IDCA,
    IDCAResult,
    IDCARun,
    StopCriterion,
    ThresholdDecision,
    UncertaintyBelow,
)
from ..geometry import DominationCriterion
from ..index import RTree
from ..queries.common import (
    ObjectSpec,
    ProbabilisticMatch,
    ThresholdQueryResult,
    resolve_object,
)
from ..queries.inverse_ranking import RankDistribution
from ..queries.range import probability_within_range
from ..queries.ranking import RankedObject, RankingResult
from ..uncertain import UncertainDatabase
from ..uncertain.decomposition import AxisPolicy
from .candidates import CandidateSource, make_candidate_source
from .context import RefinementContext
from .executor import (
    BatchReport,
    ExecutorConfig,
    run_chunk_on_engine,
    run_process_batch,
)
from .requests import QueryRequest
from .scheduler import RefinementScheduler

__all__ = ["QueryEngine"]


class QueryEngine:
    """Unified filter–refinement engine behind every probabilistic query.

    Parameters
    ----------
    database:
        The uncertain database to query.
    p, criterion:
        Distance norm and complete-domination criterion shared by every query
        this engine evaluates.
    candidate_source:
        Spatial filter implementation; defaults to the R-tree source when
        ``rtree`` is given and the vectorised scan otherwise.
    rtree:
        Convenience shortcut for ``candidate_source=RTreeCandidateSource(...)``.
    context:
        Shared refinement context.  Pass one context to several engines (or
        reuse an engine across queries) to share decomposition trees and
        memoised domination bounds; a private context is created otherwise.
    scheduler:
        Refinement scheduler; the default drains every candidate's budget,
        most-uncertain first.  Pass one with ``global_iteration_budget`` to
        cap the total refinement effort per query.
    kernel_backend:
        Pair-bounds kernel backend for every IDCA instance this engine
        creates: ``"numpy"``, ``"numba"`` or ``None`` (default) to resolve
        through the fallback ladder (``REPRO_KERNEL_BACKEND``, then the best
        available backend).  The request — not the resolution — is stored,
        so a pickled engine re-resolves in each worker against whatever is
        importable there.  Backends are bit-identical by construction; this
        only selects the implementation, never the results.
    """

    def __init__(
        self,
        database: UncertainDatabase,
        p: float = 2.0,
        criterion: DominationCriterion = "optimal",
        candidate_source: Optional[CandidateSource] = None,
        rtree: Optional[RTree] = None,
        context: Optional[RefinementContext] = None,
        scheduler: Optional[RefinementScheduler] = None,
        axis_policy: AxisPolicy = "round_robin",
        kernel_backend: Optional[str] = None,
    ):
        from ..core.kernels import resolve_backend

        resolve_backend(kernel_backend)  # eager name validation only
        self.database = database
        self.p = p
        self.criterion = criterion
        self.kernel_backend = kernel_backend
        self.candidate_source = candidate_source or make_candidate_source(database, rtree)
        self.context = context or RefinementContext(database, axis_policy=axis_policy)
        self.scheduler = scheduler or RefinementScheduler()
        #: :class:`~repro.engine.executor.BatchReport` of the most recent
        #: :meth:`evaluate_many` call (``None`` before the first batch).
        self.last_batch_report: Optional[BatchReport] = None

    # ------------------------------------------------------------------ #
    # snapshot advancement
    # ------------------------------------------------------------------ #
    def apply_mutations(self, mutations: Sequence) -> UncertainDatabase:
        """Advance the engine to the next database snapshot (epoch + 1).

        Applies a batch of :class:`~repro.uncertain.base.Insert` /
        :class:`~repro.uncertain.base.Update` /
        :class:`~repro.uncertain.base.Delete` mutations to the current
        database and moves every engine component to the resulting snapshot
        with per-object granularity: the refinement context evicts only the
        trees and pair-bounds columns of replaced objects (untouched columns
        stay warm, locally and in the shared store), and an R-tree candidate
        source maintains its tree incrementally.  Returns the new snapshot.

        Callers must not run queries concurrently with this method — the
        service tier sequences mutations between batches
        (:meth:`repro.engine.service.QueryService.apply`), which is what
        gives queries the snapshot-visibility guarantee.  Mutations should
        be *resolved* first (:meth:`UncertainDatabase.resolve_mutations`)
        when the same batch is replayed in other processes.
        """
        old_database = self.database
        resolved = old_database.resolve_mutations(mutations)
        database = old_database.apply(resolved)
        removed = [obj for obj in old_database if database.position_of(obj) is None]
        self.database = database
        self.context.advance(database, removed)
        self.candidate_source.advance(database, resolved)
        return database

    # ------------------------------------------------------------------ #
    # threshold queries (kNN / RkNN)
    # ------------------------------------------------------------------ #
    def _threshold_idca(self, idca: Optional[IDCA], k: int) -> IDCA:
        if idca is None:
            return self.context.idca_for(
                self.p, self.criterion, k_cap=k, kernel_backend=self.kernel_backend
            )
        if idca.k_cap is not None and idca.k_cap < k:
            raise ValueError("the supplied IDCA instance truncates below the requested k")
        return idca

    def _finish_threshold(
        self,
        result: ThresholdQueryResult,
        runs: Sequence[tuple[int, IDCARun]],
        k: int,
    ) -> None:
        """Schedule the undecided runs, then assemble the result buckets.

        Sequence numbers record the order in which each candidate's
        evaluation *concluded*: filter-decided candidates first (arrival
        order), then scheduler-decided candidates as their predicates become
        decidable, then any candidate cut off by a global budget.
        """
        sequence = itertools.count()
        concluded: dict[int, int] = {}
        for _, run in runs:
            if run.finished:
                concluded[id(run)] = next(sequence)

        def predicate_width(run: IDCARun) -> float:
            lower, upper = run.result.bounds.less_than(k)
            return upper - lower

        self.scheduler.refine(
            [run for _, run in runs],
            predicate_width,
            on_finished=lambda run: concluded.setdefault(id(run), next(sequence)),
        )
        for _, run in runs:  # runs cut off by a global iteration budget
            concluded.setdefault(id(run), next(sequence))

        for index, run in runs:
            lower, upper = run.result.bounds.less_than(k)
            match = ProbabilisticMatch(
                index=index,
                probability_lower=lower,
                probability_upper=upper,
                decision=run.result.decision,
                iterations=run.result.num_iterations,
                sequence=concluded[id(run)],
            )
            if run.result.decision is True:
                result.matches.append(match)
            elif run.result.decision is False:
                result.rejected.append(match)
            else:
                result.undecided.append(match)

    def knn(
        self,
        query: ObjectSpec,
        k: int,
        tau: float,
        max_iterations: int = 10,
        idca: Optional[IDCA] = None,
        strict: bool = False,
    ) -> ThresholdQueryResult:
        """Probabilistic threshold kNN query (Corollary 4)."""
        if k <= 0:
            raise ValueError("k must be positive")
        if not 0.0 <= tau <= 1.0:
            raise ValueError("tau must be a probability")
        start = time.perf_counter()
        exclude: set[int] = set()
        query_obj = resolve_object(self.database, query, exclude)
        idca = self._threshold_idca(idca, k)
        candidates = self.candidate_source.knn_candidates(
            query_obj.mbr, k, self.p, exclude
        )
        result = ThresholdQueryResult(
            k=k, tau=tau, pruned=len(self.database) - len(exclude) - candidates.shape[0]
        )
        runs = [
            (
                int(index),
                idca.start_run(
                    int(index),
                    query_obj,
                    stop=ThresholdDecision(k=k, tau=tau, strict=strict),
                    max_iterations=max_iterations,
                    exclude_indices=sorted(exclude),
                ),
            )
            for index in candidates
        ]
        self._finish_threshold(result, runs, k)
        result.elapsed_seconds = time.perf_counter() - start
        return result

    def rknn(
        self,
        query: ObjectSpec,
        k: int,
        tau: float,
        max_iterations: int = 10,
        idca: Optional[IDCA] = None,
        candidate_indices: Optional[Iterable[int]] = None,
        strict: bool = False,
    ) -> ThresholdQueryResult:
        """Probabilistic threshold reverse kNN query (Corollary 5)."""
        if k <= 0:
            raise ValueError("k must be positive")
        if not 0.0 <= tau <= 1.0:
            raise ValueError("tau must be a probability")
        start = time.perf_counter()
        exclude: set[int] = set()
        query_obj = resolve_object(self.database, query, exclude)
        idca = self._threshold_idca(idca, k)
        if candidate_indices is None:
            candidates = [int(i) for i in self.candidate_source.all_candidates(exclude)]
        else:
            candidates = [int(i) for i in candidate_indices if int(i) not in exclude]
        result = ThresholdQueryResult(
            k=k, tau=tau, pruned=len(self.database) - len(exclude) - len(candidates)
        )
        runs = []
        for index in candidates:
            # the count is over objects other than the candidate itself and the query
            run_exclude = set(exclude)
            run_exclude.add(index)
            runs.append(
                (
                    index,
                    idca.start_run(
                        query_obj,
                        self.database[index],
                        stop=ThresholdDecision(k=k, tau=tau, strict=strict),
                        max_iterations=max_iterations,
                        exclude_indices=sorted(run_exclude),
                    ),
                )
            )
        self._finish_threshold(result, runs, k)
        result.elapsed_seconds = time.perf_counter() - start
        return result

    # ------------------------------------------------------------------ #
    # range queries
    # ------------------------------------------------------------------ #
    def range(
        self,
        query: ObjectSpec,
        epsilon: float,
        tau: float,
        max_depth: int = 6,
        strict: bool = False,
    ) -> ThresholdQueryResult:
        """Probabilistic threshold epsilon-range query."""
        if not 0.0 <= tau <= 1.0:
            raise ValueError("tau must be a probability")
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        start = time.perf_counter()
        exclude: set[int] = set()
        query_obj = resolve_object(self.database, query, exclude)
        classification = self.candidate_source.range_classify(
            query_obj.mbr, epsilon, self.p, exclude
        )
        result = ThresholdQueryResult(k=0, tau=tau, pruned=classification.pruned)
        query_tree = self.context.tree_for(query_obj)
        sequence = itertools.count()
        definite = {int(i) for i in classification.definite}
        for index in sorted(definite | {int(i) for i in classification.refine}):
            if index in definite:
                result.matches.append(
                    ProbabilisticMatch(
                        index, 1.0, 1.0, decision=True, iterations=0,
                        sequence=next(sequence),
                    )
                )
                continue
            obj = self.database[index]
            lower, upper = probability_within_range(
                obj,
                query_obj,
                epsilon,
                p=self.p,
                max_depth=max_depth,
                object_tree=self.context.tree_for(obj),
                query_tree=query_tree,
            )
            passes = lower > tau or (not strict and lower >= tau)
            fails = upper < tau or (strict and upper <= tau)
            match = ProbabilisticMatch(
                index,
                lower,
                upper,
                decision=True if passes else False if fails else None,
                iterations=max_depth,
                sequence=next(sequence),
            )
            if passes:
                result.matches.append(match)
            elif fails:
                result.rejected.append(match)
            else:
                result.undecided.append(match)
        result.elapsed_seconds = time.perf_counter() - start
        return result

    # ------------------------------------------------------------------ #
    # ranking queries
    # ------------------------------------------------------------------ #
    def ranking(
        self,
        query: ObjectSpec,
        max_iterations: int = 6,
        uncertainty_budget: float = 0.25,
        idca: Optional[IDCA] = None,
        candidate_indices: Optional[Iterable[int]] = None,
    ) -> RankingResult:
        """Expected-rank similarity ranking (Corollary 6)."""
        start = time.perf_counter()
        exclude: set[int] = set()
        query_obj = resolve_object(self.database, query, exclude)
        if idca is None:
            idca = self.context.idca_for(
                self.p, self.criterion, kernel_backend=self.kernel_backend
            )
        if idca.k_cap is not None:
            raise ValueError("expected-rank ranking requires an untruncated IDCA instance")
        if candidate_indices is None:
            candidates = [int(i) for i in self.candidate_source.all_candidates(exclude)]
        else:
            candidates = [int(i) for i in candidate_indices if int(i) not in exclude]

        runs = [
            (
                index,
                idca.start_run(
                    index,
                    query_obj,
                    stop=UncertaintyBelow(uncertainty_budget),
                    max_iterations=max_iterations,
                    exclude_indices=sorted(exclude),
                ),
            )
            for index in candidates
        ]
        self.scheduler.refine(
            [run for _, run in runs], lambda run: run.result.bounds.uncertainty()
        )
        entries: list[RankedObject] = []
        for index, run in runs:
            count_lower, count_upper = run.result.bounds.expected_count_bounds()
            entries.append(
                RankedObject(
                    index=index,
                    expected_rank_lower=count_lower + 1.0,
                    expected_rank_upper=count_upper + 1.0,
                    iterations=run.result.num_iterations,
                )
            )
        entries.sort(key=lambda entry: (entry.expected_rank_midpoint, entry.index))
        return RankingResult(ranking=entries, elapsed_seconds=time.perf_counter() - start)

    # ------------------------------------------------------------------ #
    # inverse ranking / raw domination counts
    # ------------------------------------------------------------------ #
    def inverse_ranking(
        self,
        target: ObjectSpec,
        reference: ObjectSpec,
        max_iterations: int = 10,
        uncertainty_budget: Optional[float] = None,
        stop: Optional[StopCriterion] = None,
        idca: Optional[IDCA] = None,
        exclude_indices: Optional[Sequence[int]] = None,
    ) -> RankDistribution:
        """Bounded rank distribution of ``target`` w.r.t. ``reference``."""
        exclude: set[int] = (
            set(int(i) for i in exclude_indices) if exclude_indices else set()
        )
        target_obj = resolve_object(self.database, target, exclude)
        reference_obj = resolve_object(self.database, reference, exclude)
        if idca is None:
            idca = self.context.idca_for(
                self.p, self.criterion, kernel_backend=self.kernel_backend
            )
        if stop is None and uncertainty_budget is not None:
            stop = UncertaintyBelow(uncertainty_budget)
        run = idca.domination_count(
            target_obj,
            reference_obj,
            stop=stop,
            max_iterations=max_iterations,
            exclude_indices=sorted(exclude),
        )
        return RankDistribution(
            lower=run.bounds.lower.copy(),
            upper=run.bounds.upper.copy(),
            idca_result=run,
        )

    def domination_count(
        self,
        target: ObjectSpec,
        reference: ObjectSpec,
        stop: Optional[StopCriterion] = None,
        max_iterations: int = 10,
        exclude_indices: Optional[Sequence[int]] = None,
        k_cap: Optional[int] = None,
        idca: Optional[IDCA] = None,
    ) -> IDCAResult:
        """Raw IDCA domination count through the shared context."""
        if idca is None:
            idca = self.context.idca_for(
                self.p, self.criterion, k_cap=k_cap, kernel_backend=self.kernel_backend
            )
        return idca.domination_count(
            target,
            reference,
            stop=stop,
            max_iterations=max_iterations,
            exclude_indices=exclude_indices,
        )

    # ------------------------------------------------------------------ #
    # batch API
    # ------------------------------------------------------------------ #
    def evaluate_many(
        self,
        requests: Sequence[QueryRequest],
        executor=None,
    ) -> list:
        """Evaluate a heterogeneous batch of query requests.

        Serially (the default, and ``executor=None`` or any config resolving
        to ``"serial"``), every request runs against this engine's shared
        refinement context, so decomposition trees and pairwise domination
        bounds computed for one query are reused by all later queries of the
        batch.  With an :class:`~repro.engine.executor.ExecutorConfig`
        resolving to ``"process"``, the batch is partitioned into chunks and
        evaluated on a per-batch pool of worker processes; each worker
        receives this engine (pickled once, caches rebuilt empty and
        worker-local) and the chunk outcomes are merged.  With a
        :class:`~repro.engine.service.QueryService` as ``executor``, the
        batch routes through the service's request queue onto its
        *persistent* pool instead — the service must serve this engine's
        database.

        Results are returned in request order and are identical to
        evaluating each request on a fresh engine — sharing caches only
        removes recomputation, and per-query budgets make them independent
        of worker count and chunking.  :attr:`last_batch_report` holds the
        merged :class:`~repro.engine.executor.BatchReport` of the call.

        ``ExecutorConfig.kernel_backend``, when set, overrides this engine's
        kernel backend for the duration of the batch (serial path and
        per-batch pools, whose workers pickle the engine per batch).  A
        persistent :class:`~repro.engine.service.QueryService` pickled its
        engine at construction, so the override cannot reach its workers —
        configure the service's engine or ``REPRO_KERNEL_BACKEND`` instead.
        Backends are bit-identical, so the override never changes results.
        """
        from .service import QueryService

        requests = list(requests)
        if isinstance(executor, QueryService):
            if executor.engine.database is not self.database:
                raise ValueError(
                    "the supplied QueryService serves a different database"
                )
            # take the report from this batch's own handle: the service's
            # last_batch_report may already describe a concurrently
            # submitted batch by the time the results resolve
            handle = executor.submit(requests)
            results = handle.result()
            self.last_batch_report = handle.report()
            return results
        override = executor.kernel_backend if executor is not None else None
        saved = self.kernel_backend
        if override is not None:
            self.kernel_backend = override
        try:
            if executor is not None and executor.resolve_mode(len(requests)) == "process":
                results, report = run_process_batch(self, requests, executor)
                self.last_batch_report = report
                return results
            return self._evaluate_serial(requests, executor)
        finally:
            self.kernel_backend = saved

    def _evaluate_serial(
        self, requests: Sequence[QueryRequest], executor: Optional[ExecutorConfig]
    ) -> list:
        """Today's single-process batch path, instrumented as one chunk."""
        results, chunk_stats = run_chunk_on_engine(self, requests)
        self.last_batch_report = BatchReport(
            mode="serial",
            workers=1,
            chunking=executor.chunking if executor is not None else "contiguous",
            chunk_size=executor.chunk_size if executor is not None else None,
            num_requests=len(requests),
            elapsed_seconds=chunk_stats.seconds,
            chunks=(chunk_stats,),
        )
        return results
