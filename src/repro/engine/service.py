"""Long-lived query service: one worker pool for the whole process lifetime.

``QueryEngine.evaluate_many`` with an :class:`~repro.engine.executor
.ExecutorConfig` builds a process pool, evaluates one batch and tears the
pool down again — every batch pays pool startup and per-worker engine
rebuild.  A :class:`QueryService` hoists that cost out of the batch loop:

* the **worker pool** (:class:`~repro.engine.executor.WorkerPool`) is
  spawned once at construction and reused by every batch until the service
  closes, so pool startup and worker-local cache warm-up are paid once per
  *process lifetime*;
* the **dataset** travels by shared memory when the platform supports it:
  the database's array payload is exported into one
  :mod:`multiprocessing.shared_memory` block (see
  ``repro/uncertain/sharedmem.py``) before the pool starts, so every worker
  maps — not copies — the data and the per-worker payload shrinks to a
  handle of a few kilobytes;
* an **async-friendly request queue** fronts the pool: :meth:`QueryService.submit`
  enqueues a batch and immediately returns a :class:`ServiceBatch` handle,
  a single dispatcher thread drains the queue in FIFO order (chunks of one
  batch still run in parallel across the pool), and the blocking
  :meth:`QueryService.evaluate_many` routes through the same queue;
* the **bounds cache is shared across workers** (PR 5): the service owns a
  :class:`~repro.engine.boundstore.SharedBoundStore`, every worker attaches
  it through the pool initializer, and a column computed by one worker is
  served to all — see ``engine/boundstore.py`` for the publish protocol and
  the fallback rules;
* **dispatch is worker-affine** (PR 5): with ``"affinity"`` chunking each
  affinity bucket's lane is a stable hash of its key, so successive batches
  route a recurring query object to the same worker's warm caches, and
  ``chunk_size="adaptive"`` sizes chunks from the observed per-request cost
  of earlier batches (:class:`~repro.engine.executor.BatchReport` history).

Determinism is inherited unchanged from the executor layer: results are
bit-identical to the serial path for every worker count, chunking and batch
composition, and persistent worker caches only ever remove recomputation.

Shutdown is deterministic and idempotent: :meth:`QueryService.close` (or the
context manager, or the ``atexit`` fallback for services that are never
closed explicitly) drains the queue, stops the dispatcher, shuts the pool
down and releases the shared-memory export — the last release unlinks the
block.  A request that raises inside a worker fails only its own batch; the
pool and the service survive.
"""

from __future__ import annotations

import atexit
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence, Union

from ..uncertain import UncertainDatabase
from ..uncertain.sharedmem import SharedDatabaseExport, shared_memory_available
from .boundstore import SharedBoundStore, bound_store_available
from .executor import (
    ADAPTIVE,
    BatchReport,
    ExecutorConfig,
    WorkerPool,
    _pool_context,
    adaptive_chunk_size,
    affine_partition,
    partition_requests,
    validate_chunk_size,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .engine import QueryEngine
    from .requests import QueryRequest

__all__ = ["QueryService", "ServiceBatch"]

#: Sentinel distinguishing "argument not passed" from an explicit ``None``
#: (``chunk_size=None`` meaningfully requests one chunk per affinity bucket).
_UNSET = object()


class ServiceBatch:
    """Handle to one submitted batch — a future over results and report.

    Returned immediately by :meth:`QueryService.submit`; the batch itself
    runs on the service's worker pool once the dispatcher reaches it.  All
    methods are thread-safe.
    """

    def __init__(self, future: Future):
        self._future = future

    def done(self) -> bool:
        """Whether the batch has finished (successfully or with an error)."""
        return self._future.done()

    def result(self, timeout: Optional[float] = None) -> list:
        """Block until the batch completes and return its results.

        Results are in request order, bit-identical to evaluating the same
        requests serially.  Re-raises the first chunk failure if the batch
        errored, and :class:`TimeoutError` if ``timeout`` elapses first.
        """
        return self._future.result(timeout)[0]

    def report(self, timeout: Optional[float] = None) -> BatchReport:
        """Block until the batch completes and return its merged report.

        The report's ``elapsed_seconds`` measures submit-to-completion
        latency (queue wait included) and ``pool`` is ``"persistent"``.
        """
        return self._future.result(timeout)[1]

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The batch's failure, or ``None`` once it completed successfully."""
        return self._future.exception(timeout)


@dataclass
class _Job:
    """One queued batch: requests, their partitioning, and the future."""

    requests: list
    chunks: list[list[int]]
    chunking: str
    chunk_size: Optional[int]
    lanes: Optional[list[int]] = None
    future: Future = field(default_factory=Future)
    enqueued_at: float = 0.0


#: Exponential-moving-average weight of the newest batch's per-request cost
#: (0.5 adapts within a couple of batches while smoothing one-off spikes).
_COST_EWMA_ALPHA = 0.5


class QueryService:
    """A persistent front-end over one engine, its pool and its dataset.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.engine.QueryEngine` to serve, or an
        :class:`~repro.uncertain.UncertainDatabase` (a default engine is
        built over it).
    executor:
        Optional :class:`~repro.engine.executor.ExecutorConfig` supplying
        the worker count (``effective_workers``; the adaptive default
        derives it from :func:`os.cpu_count`), default chunking and start
        method.  The ``mode`` field is ignored — a service exists to own a
        process pool; use ``engine.evaluate_many`` directly for serial
        evaluation.
    share_memory:
        ``True`` exports the database into shared memory before the pool
        starts (raises when the platform cannot); ``False`` forces the
        plain-pickling transport; ``None`` (default) uses shared memory
        exactly when :func:`~repro.uncertain.sharedmem.shared_memory_available`
        says so, falling back silently if the export fails at OS level.
    atexit_cleanup:
        Register an :mod:`atexit` fallback so a service never explicitly
        closed still shuts its pool down and unlinks its shared-memory
        block at interpreter exit.  :meth:`close` unregisters it.

    Example
    -------
    ::

        with QueryService(engine, ExecutorConfig(workers=4)) as service:
            for batch in request_stream:          # one pool for all batches
                results = service.evaluate_many(batch)

    Thread safety: :meth:`submit`, :meth:`evaluate_many` and :meth:`close`
    may be called from any thread; batches execute in FIFO submission order.
    """

    def __init__(
        self,
        engine: Union["QueryEngine", UncertainDatabase],
        executor: Optional[ExecutorConfig] = None,
        *,
        share_memory: Optional[bool] = None,
        atexit_cleanup: bool = True,
    ):
        from .engine import QueryEngine

        if isinstance(engine, UncertainDatabase):
            engine = QueryEngine(engine)
        self.engine = engine
        self.config = executor if executor is not None else ExecutorConfig()
        self._export: Optional[SharedDatabaseExport] = None
        self._transport = "pickle"
        if share_memory is None:
            if shared_memory_available():
                try:
                    self._export = engine.database.share_memory().acquire()
                    self._transport = "shared_memory"
                except OSError:  # pragma: no cover - e.g. /dev/shm missing
                    self._export = None
        elif share_memory:
            self._export = engine.database.share_memory().acquire()
            self._transport = "shared_memory"
        workers = self.config.effective_workers
        self._bound_store: Optional[SharedBoundStore] = None
        use_bounds = self.config.shared_bounds
        if use_bounds is None:
            use_bounds = bound_store_available()
        elif use_bounds and not bound_store_available():
            if self._export is not None:
                self._export.release()
            raise RuntimeError(
                "shared_bounds=True but the shared bounds store is "
                "unavailable on this platform (or disabled via environment)"
            )
        if use_bounds:
            try:
                # exactly one publish segment per worker lane: lanes never
                # respawn a crashed worker, so spares could never be claimed
                self._bound_store = SharedBoundStore(
                    num_segments=min(255, workers),
                    mp_context=_pool_context(self.config.start_method),
                )
            except OSError:  # pragma: no cover - e.g. /dev/shm exhausted
                # auto-detection degrades silently; an explicit request
                # must fail loudly rather than run without the store
                if self.config.shared_bounds:
                    if self._export is not None:
                        self._export.release()
                    raise
                self._bound_store = None
        try:
            self._pool = WorkerPool(
                engine,
                workers,
                self.config.start_method,
                bound_store=self._bound_store,
            )
        except BaseException:
            if self._bound_store is not None:
                self._bound_store.close()
            if self._export is not None:
                self._export.release()
            raise
        self._cost_ewma: Optional[float] = None
        #: Merged :class:`~repro.engine.executor.BatchReport` of the most
        #: recently *completed* batch (``None`` before the first one).
        self.last_batch_report: Optional[BatchReport] = None
        self._jobs: "queue.SimpleQueue[Optional[_Job]]" = queue.SimpleQueue()
        self._submit_lock = threading.Lock()
        self._closed = False
        self._seen_pids: set[int] = set()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-query-service", daemon=True
        )
        self._dispatcher.start()
        self._atexit_registered = atexit_cleanup
        if atexit_cleanup:
            atexit.register(self.close)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run; a closed service rejects submits."""
        return self._closed

    @property
    def workers(self) -> int:
        """Size of the persistent worker pool."""
        return self._pool.workers

    @property
    def transport(self) -> str:
        """Dataset transport to the workers: ``"shared_memory"`` or ``"pickle"``."""
        return self._transport

    @property
    def shared_bounds(self) -> bool:
        """Whether a cross-worker shared bounds store backs this pool."""
        return self._bound_store is not None

    def bound_store_stats(self) -> Optional[dict]:
        """Global occupancy of the shared bounds store (``None`` without one).

        Filled index slots, claimed worker segments and per-segment used
        bytes — the parent-side view; per-worker hit/publish counters live
        in the :class:`~repro.engine.executor.BatchReport` chunk stats.
        """
        if self._bound_store is None:
            return None
        return self._bound_store.stats()

    @property
    def observed_request_seconds(self) -> Optional[float]:
        """EWMA of per-request worker seconds over completed batches.

        The cost signal behind ``chunk_size="adaptive"``; ``None`` until the
        first batch completes.
        """
        return self._cost_ewma

    def adaptive_chunk_size(self, num_requests: int) -> Optional[int]:
        """Chunk-size cap ``chunk_size="adaptive"`` resolves to right now.

        Derived from :attr:`observed_request_seconds` via
        :func:`~repro.engine.executor.adaptive_chunk_size`; ``None`` (use
        the default chunking) while there is no cost history yet.
        """
        return adaptive_chunk_size(num_requests, self.workers, self._cost_ewma)

    @property
    def worker_pids(self) -> tuple[int, ...]:
        """Distinct worker pids observed across all completed batches.

        Bounded by :attr:`workers` for the service's whole lifetime — the
        observable guarantee that one pool serves every batch.
        """
        # the dispatcher rebinds _seen_pids atomically instead of mutating
        # it, so this snapshot can never observe a set mid-update
        return tuple(sorted(self._seen_pids))

    @property
    def payload_nbytes(self) -> int:
        """Bytes of engine payload each worker received at pool startup.

        On the shared-memory path this is a few kilobytes regardless of
        database size — the array payload lives in the shared block.
        """
        return self._pool.payload_nbytes

    def probe_workers(self) -> dict:
        """One worker's self-report: pid, dataset transport, block name.

        Workers are interchangeable (they all received the same payload),
        so a single report characterises the pool.
        """
        if self._closed:
            raise RuntimeError("the service is closed")
        return self._pool.probe()

    # ------------------------------------------------------------------ #
    # request queue
    # ------------------------------------------------------------------ #
    def submit(
        self,
        requests: Sequence["QueryRequest"],
        chunk_size=_UNSET,
        chunking: Optional[str] = None,
    ) -> ServiceBatch:
        """Enqueue a batch and return a :class:`ServiceBatch` immediately.

        The batch is partitioned here (a deterministic function of the batch
        alone) and executed by the dispatcher in FIFO order; chunks run in
        parallel across the persistent pool.  ``chunk_size`` / ``chunking``
        default to the service's executor config; ``chunk_size="adaptive"``
        resolves against the observed per-request cost of earlier batches
        (:meth:`adaptive_chunk_size`) under ``"contiguous"`` chunking, and
        is a no-op under ``"affinity"`` — splitting a lane-pinned bucket
        cannot move work to another lane, it only adds dispatch overhead.
        With ``"affinity"`` chunking the
        chunks are additionally *pinned*: each affinity bucket's lane is a
        stable hash of its key (:func:`~repro.engine.executor.affine_partition`),
        so a recurring query object lands on the worker whose caches served
        it last batch.  Raises ``RuntimeError`` once the service is closed.
        """
        requests = list(requests)
        size = self.config.chunk_size if chunk_size is _UNSET else chunk_size
        if chunk_size is not _UNSET:
            validate_chunk_size(size)
        strategy = chunking if chunking is not None else self.config.chunking
        if size == ADAPTIVE:
            # splitting a lane-pinned bucket cannot rebalance work (the
            # extra chunks run sequentially on the same lane), so the
            # adaptive cap only applies to work-conserving dispatch
            size = (
                None
                if strategy == "affinity"
                else self.adaptive_chunk_size(len(requests))
            )
        lanes: Optional[list[int]] = None
        if strategy == "affinity":
            chunks, lanes = affine_partition(requests, self._pool.workers, size)
        else:
            chunks = partition_requests(requests, self._pool.workers, size, strategy)
        job = _Job(
            requests=requests,
            chunks=chunks,
            chunking=strategy,
            chunk_size=size,
            lanes=lanes,
        )
        with self._submit_lock:
            if self._closed:
                raise RuntimeError("cannot submit to a closed QueryService")
            job.enqueued_at = time.perf_counter()
            self._jobs.put(job)
        return ServiceBatch(job.future)

    def evaluate_many(
        self,
        requests: Sequence["QueryRequest"],
        chunk_size=_UNSET,
        chunking: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> list:
        """Evaluate a batch through the request queue, blocking until done.

        Same contract as :meth:`QueryEngine.evaluate_many` — results in
        request order, bit-identical to the serial path — but dispatched
        onto the service's persistent pool.  The merged report lands on
        :attr:`last_batch_report` and on the engine's
        ``last_batch_report`` (with ``pool="persistent"``).
        """
        handle = self.submit(requests, chunk_size=chunk_size, chunking=chunking)
        return handle.result(timeout)

    # ------------------------------------------------------------------ #
    # dispatcher (single background thread)
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> None:
        while True:
            job = self._jobs.get()
            if job is None:
                break
            if not job.future.set_running_or_notify_cancel():
                continue  # cancelled before it started
            try:
                results, chunk_stats = self._pool.run_chunks(
                    job.requests, job.chunks, lanes=job.lanes
                )
            except BaseException as error:
                job.future.set_exception(error)
                continue
            if job.requests:
                per_request = sum(s.seconds for s in chunk_stats) / len(job.requests)
                if self._cost_ewma is None:
                    self._cost_ewma = per_request
                else:
                    self._cost_ewma = (
                        _COST_EWMA_ALPHA * per_request
                        + (1.0 - _COST_EWMA_ALPHA) * self._cost_ewma
                    )
            report = BatchReport(
                mode="process",
                workers=self._pool.workers,
                chunking=job.chunking,
                chunk_size=job.chunk_size,
                num_requests=len(job.requests),
                elapsed_seconds=time.perf_counter() - job.enqueued_at,
                chunks=tuple(chunk_stats),
                pool="persistent",
            )
            self._seen_pids = self._seen_pids | set(report.worker_pids)
            self.last_batch_report = report
            self.engine.last_batch_report = report
            job.future.set_result((results, report))

    # ------------------------------------------------------------------ #
    # shutdown
    # ------------------------------------------------------------------ #
    def close(self, wait: bool = True) -> None:
        """Shut the service down (idempotent; also the ``atexit`` fallback).

        ``wait=True`` (default) drains the queue — already-submitted batches
        complete and their handles resolve — then stops the dispatcher,
        shuts the pool down (no worker processes remain) and releases the
        shared-memory export, whose last release unlinks the block.
        ``wait=False`` abandons pending work: unstarted chunks are
        cancelled and outstanding handles resolve with an error.
        Subsequent :meth:`submit` calls raise ``RuntimeError``.
        """
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            self._jobs.put(None)  # under the lock: nothing enqueues after it
        if wait:
            self._dispatcher.join()
        self._pool.close(wait=wait, cancel_pending=not wait)
        if self._bound_store is not None:
            self._bound_store.close()
            self._bound_store = None
        if self._export is not None:
            self._export.release()
            self._export = None
        if self._atexit_registered:
            atexit.unregister(self.close)
            self._atexit_registered = False

    def __enter__(self) -> "QueryService":
        """Context-manager entry: the service itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the service, draining the queue."""
        self.close(wait=True)
