"""Long-lived query service: one worker pool for the whole process lifetime.

``QueryEngine.evaluate_many`` with an :class:`~repro.engine.executor
.ExecutorConfig` builds a process pool, evaluates one batch and tears the
pool down again — every batch pays pool startup and per-worker engine
rebuild.  A :class:`QueryService` hoists that cost out of the batch loop:

* the **worker pool** (:class:`~repro.engine.executor.WorkerPool`) is
  spawned once at construction and reused by every batch until the service
  closes, so pool startup and worker-local cache warm-up are paid once per
  *process lifetime*;
* the **dataset** travels by shared memory when the platform supports it:
  the database's array payload is exported into one
  :mod:`multiprocessing.shared_memory` block (see
  ``repro/uncertain/sharedmem.py``) before the pool starts, so every worker
  maps — not copies — the data and the per-worker payload shrinks to a
  handle of a few kilobytes;
* an **async-friendly request queue** fronts the pool: :meth:`QueryService.submit`
  enqueues a batch and immediately returns a :class:`ServiceBatch` handle,
  a single dispatcher thread drains the queue in FIFO order (chunks of one
  batch still run in parallel across the pool), and the blocking
  :meth:`QueryService.evaluate_many` routes through the same queue.

Determinism is inherited unchanged from the executor layer: results are
bit-identical to the serial path for every worker count, chunking and batch
composition, and persistent worker caches only ever remove recomputation.

Shutdown is deterministic and idempotent: :meth:`QueryService.close` (or the
context manager, or the ``atexit`` fallback for services that are never
closed explicitly) drains the queue, stops the dispatcher, shuts the pool
down and releases the shared-memory export — the last release unlinks the
block.  A request that raises inside a worker fails only its own batch; the
pool and the service survive.
"""

from __future__ import annotations

import atexit
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence, Union

from ..uncertain import UncertainDatabase
from ..uncertain.sharedmem import SharedDatabaseExport, shared_memory_available
from .executor import BatchReport, ExecutorConfig, WorkerPool, partition_requests

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .engine import QueryEngine
    from .requests import QueryRequest

__all__ = ["QueryService", "ServiceBatch"]

#: Sentinel distinguishing "argument not passed" from an explicit ``None``
#: (``chunk_size=None`` meaningfully requests one chunk per affinity bucket).
_UNSET = object()


class ServiceBatch:
    """Handle to one submitted batch — a future over results and report.

    Returned immediately by :meth:`QueryService.submit`; the batch itself
    runs on the service's worker pool once the dispatcher reaches it.  All
    methods are thread-safe.
    """

    def __init__(self, future: Future):
        self._future = future

    def done(self) -> bool:
        """Whether the batch has finished (successfully or with an error)."""
        return self._future.done()

    def result(self, timeout: Optional[float] = None) -> list:
        """Block until the batch completes and return its results.

        Results are in request order, bit-identical to evaluating the same
        requests serially.  Re-raises the first chunk failure if the batch
        errored, and :class:`TimeoutError` if ``timeout`` elapses first.
        """
        return self._future.result(timeout)[0]

    def report(self, timeout: Optional[float] = None) -> BatchReport:
        """Block until the batch completes and return its merged report.

        The report's ``elapsed_seconds`` measures submit-to-completion
        latency (queue wait included) and ``pool`` is ``"persistent"``.
        """
        return self._future.result(timeout)[1]

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The batch's failure, or ``None`` once it completed successfully."""
        return self._future.exception(timeout)


@dataclass
class _Job:
    """One queued batch: requests, their partitioning, and the future."""

    requests: list
    chunks: list[list[int]]
    chunking: str
    chunk_size: Optional[int]
    future: Future = field(default_factory=Future)
    enqueued_at: float = 0.0


class QueryService:
    """A persistent front-end over one engine, its pool and its dataset.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.engine.QueryEngine` to serve, or an
        :class:`~repro.uncertain.UncertainDatabase` (a default engine is
        built over it).
    executor:
        Optional :class:`~repro.engine.executor.ExecutorConfig` supplying
        the worker count (``effective_workers``; the adaptive default
        derives it from :func:`os.cpu_count`), default chunking and start
        method.  The ``mode`` field is ignored — a service exists to own a
        process pool; use ``engine.evaluate_many`` directly for serial
        evaluation.
    share_memory:
        ``True`` exports the database into shared memory before the pool
        starts (raises when the platform cannot); ``False`` forces the
        plain-pickling transport; ``None`` (default) uses shared memory
        exactly when :func:`~repro.uncertain.sharedmem.shared_memory_available`
        says so, falling back silently if the export fails at OS level.
    atexit_cleanup:
        Register an :mod:`atexit` fallback so a service never explicitly
        closed still shuts its pool down and unlinks its shared-memory
        block at interpreter exit.  :meth:`close` unregisters it.

    Example
    -------
    ::

        with QueryService(engine, ExecutorConfig(workers=4)) as service:
            for batch in request_stream:          # one pool for all batches
                results = service.evaluate_many(batch)

    Thread safety: :meth:`submit`, :meth:`evaluate_many` and :meth:`close`
    may be called from any thread; batches execute in FIFO submission order.
    """

    def __init__(
        self,
        engine: Union["QueryEngine", UncertainDatabase],
        executor: Optional[ExecutorConfig] = None,
        *,
        share_memory: Optional[bool] = None,
        atexit_cleanup: bool = True,
    ):
        from .engine import QueryEngine

        if isinstance(engine, UncertainDatabase):
            engine = QueryEngine(engine)
        self.engine = engine
        self.config = executor if executor is not None else ExecutorConfig()
        self._export: Optional[SharedDatabaseExport] = None
        self._transport = "pickle"
        if share_memory is None:
            if shared_memory_available():
                try:
                    self._export = engine.database.share_memory().acquire()
                    self._transport = "shared_memory"
                except OSError:  # pragma: no cover - e.g. /dev/shm missing
                    self._export = None
        elif share_memory:
            self._export = engine.database.share_memory().acquire()
            self._transport = "shared_memory"
        try:
            self._pool = WorkerPool(
                engine, self.config.effective_workers, self.config.start_method
            )
        except BaseException:
            if self._export is not None:
                self._export.release()
            raise
        #: Merged :class:`~repro.engine.executor.BatchReport` of the most
        #: recently *completed* batch (``None`` before the first one).
        self.last_batch_report: Optional[BatchReport] = None
        self._jobs: "queue.SimpleQueue[Optional[_Job]]" = queue.SimpleQueue()
        self._submit_lock = threading.Lock()
        self._closed = False
        self._seen_pids: set[int] = set()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-query-service", daemon=True
        )
        self._dispatcher.start()
        self._atexit_registered = atexit_cleanup
        if atexit_cleanup:
            atexit.register(self.close)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run; a closed service rejects submits."""
        return self._closed

    @property
    def workers(self) -> int:
        """Size of the persistent worker pool."""
        return self._pool.workers

    @property
    def transport(self) -> str:
        """Dataset transport to the workers: ``"shared_memory"`` or ``"pickle"``."""
        return self._transport

    @property
    def worker_pids(self) -> tuple[int, ...]:
        """Distinct worker pids observed across all completed batches.

        Bounded by :attr:`workers` for the service's whole lifetime — the
        observable guarantee that one pool serves every batch.
        """
        # the dispatcher rebinds _seen_pids atomically instead of mutating
        # it, so this snapshot can never observe a set mid-update
        return tuple(sorted(self._seen_pids))

    @property
    def payload_nbytes(self) -> int:
        """Bytes of engine payload each worker received at pool startup.

        On the shared-memory path this is a few kilobytes regardless of
        database size — the array payload lives in the shared block.
        """
        return self._pool.payload_nbytes

    def probe_workers(self) -> dict:
        """One worker's self-report: pid, dataset transport, block name.

        Workers are interchangeable (they all received the same payload),
        so a single report characterises the pool.
        """
        if self._closed:
            raise RuntimeError("the service is closed")
        return self._pool.probe()

    # ------------------------------------------------------------------ #
    # request queue
    # ------------------------------------------------------------------ #
    def submit(
        self,
        requests: Sequence["QueryRequest"],
        chunk_size=_UNSET,
        chunking: Optional[str] = None,
    ) -> ServiceBatch:
        """Enqueue a batch and return a :class:`ServiceBatch` immediately.

        The batch is partitioned here (a deterministic function of the batch
        alone) and executed by the dispatcher in FIFO order; chunks run in
        parallel across the persistent pool.  ``chunk_size`` / ``chunking``
        default to the service's executor config.  Raises ``RuntimeError``
        once the service is closed.
        """
        requests = list(requests)
        size = self.config.chunk_size if chunk_size is _UNSET else chunk_size
        strategy = chunking if chunking is not None else self.config.chunking
        chunks = partition_requests(requests, self._pool.workers, size, strategy)
        job = _Job(requests=requests, chunks=chunks, chunking=strategy, chunk_size=size)
        with self._submit_lock:
            if self._closed:
                raise RuntimeError("cannot submit to a closed QueryService")
            job.enqueued_at = time.perf_counter()
            self._jobs.put(job)
        return ServiceBatch(job.future)

    def evaluate_many(
        self,
        requests: Sequence["QueryRequest"],
        chunk_size=_UNSET,
        chunking: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> list:
        """Evaluate a batch through the request queue, blocking until done.

        Same contract as :meth:`QueryEngine.evaluate_many` — results in
        request order, bit-identical to the serial path — but dispatched
        onto the service's persistent pool.  The merged report lands on
        :attr:`last_batch_report` and on the engine's
        ``last_batch_report`` (with ``pool="persistent"``).
        """
        handle = self.submit(requests, chunk_size=chunk_size, chunking=chunking)
        return handle.result(timeout)

    # ------------------------------------------------------------------ #
    # dispatcher (single background thread)
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> None:
        while True:
            job = self._jobs.get()
            if job is None:
                break
            if not job.future.set_running_or_notify_cancel():
                continue  # cancelled before it started
            try:
                results, chunk_stats = self._pool.run_chunks(job.requests, job.chunks)
            except BaseException as error:
                job.future.set_exception(error)
                continue
            report = BatchReport(
                mode="process",
                workers=self._pool.workers,
                chunking=job.chunking,
                chunk_size=job.chunk_size,
                num_requests=len(job.requests),
                elapsed_seconds=time.perf_counter() - job.enqueued_at,
                chunks=tuple(chunk_stats),
                pool="persistent",
            )
            self._seen_pids = self._seen_pids | set(report.worker_pids)
            self.last_batch_report = report
            self.engine.last_batch_report = report
            job.future.set_result((results, report))

    # ------------------------------------------------------------------ #
    # shutdown
    # ------------------------------------------------------------------ #
    def close(self, wait: bool = True) -> None:
        """Shut the service down (idempotent; also the ``atexit`` fallback).

        ``wait=True`` (default) drains the queue — already-submitted batches
        complete and their handles resolve — then stops the dispatcher,
        shuts the pool down (no worker processes remain) and releases the
        shared-memory export, whose last release unlinks the block.
        ``wait=False`` abandons pending work: unstarted chunks are
        cancelled and outstanding handles resolve with an error.
        Subsequent :meth:`submit` calls raise ``RuntimeError``.
        """
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            self._jobs.put(None)  # under the lock: nothing enqueues after it
        if wait:
            self._dispatcher.join()
        self._pool.close(wait=wait, cancel_pending=not wait)
        if self._export is not None:
            self._export.release()
            self._export = None
        if self._atexit_registered:
            atexit.unregister(self.close)
            self._atexit_registered = False

    def __enter__(self) -> "QueryService":
        """Context-manager entry: the service itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the service, draining the queue."""
        self.close(wait=True)
