"""Long-lived query service: one worker pool for the whole process lifetime.

``QueryEngine.evaluate_many`` with an :class:`~repro.engine.executor
.ExecutorConfig` builds a process pool, evaluates one batch and tears the
pool down again — every batch pays pool startup and per-worker engine
rebuild.  A :class:`QueryService` hoists that cost out of the batch loop:

* the **worker pool** (:class:`~repro.engine.executor.WorkerPool`) is
  spawned once at construction and reused by every batch until the service
  closes, so pool startup and worker-local cache warm-up are paid once per
  *process lifetime*;
* the **dataset** travels by shared memory when the platform supports it:
  the database's array payload is exported into one
  :mod:`multiprocessing.shared_memory` block (see
  ``repro/uncertain/sharedmem.py``) before the pool starts, so every worker
  maps — not copies — the data and the per-worker payload shrinks to a
  handle of a few kilobytes;
* an **async-friendly request queue** fronts the pool: :meth:`QueryService.submit`
  enqueues a batch and immediately returns a :class:`ServiceBatch` handle,
  a single dispatcher thread drains the queue in FIFO order (chunks of one
  batch still run in parallel across the pool), and the blocking
  :meth:`QueryService.evaluate_many` routes through the same queue;
* the **bounds cache is shared across workers** (PR 5): the service owns a
  :class:`~repro.engine.boundstore.SharedBoundStore`, every worker attaches
  it through the pool initializer, and a column computed by one worker is
  served to all — see ``engine/boundstore.py`` for the publish protocol and
  the fallback rules;
* **dispatch is worker-affine** (PR 5): with ``"affinity"`` chunking each
  affinity bucket's lane is a stable hash of its key, so successive batches
  route a recurring query object to the same worker's warm caches, and
  ``chunk_size="adaptive"`` sizes chunks from the observed per-request cost
  of earlier batches (:class:`~repro.engine.executor.BatchReport` history);
* the **database is versioned in place** (PR 9): :meth:`QueryService.apply`
  threads a mutation batch through the same FIFO queue as query batches,
  which makes it a *snapshot barrier* — a batch admitted at epoch ``E``
  sees exactly snapshot ``E``, never a half-applied update.  Workers
  advance by replaying a small
  :class:`~repro.uncertain.sharedmem.MutationDelta` (touched objects only)
  instead of re-importing the dataset, and the shared bounds store stays
  warm for untouched columns because cache keys fold per-object
  generations (see ``engine/boundstore.py``).

Determinism is inherited unchanged from the executor layer: results are
bit-identical to the serial path for every worker count, chunking and batch
composition, and persistent worker caches only ever remove recomputation.

The service is **fault-tolerant** (see the "Failure model" section of
``docs/architecture.md``): the pool supervises its worker lanes and respawns
a crashed worker transparently (the retried chunk re-reads everything the
dead worker published into the shared bounds store, so recovery is
bit-identical *and* warm); ``submit(deadline=...)`` bounds a batch's wall
clock — expired work raises :class:`~repro.engine.errors.DeadlineExceeded`
instead of hanging, and a watchdog terminates+respawns a truly wedged lane;
``max_pending_batches`` / ``max_pending_requests`` bound the dispatcher
queue, rejecting over-limit submits fast with
:class:`~repro.engine.errors.ServiceOverloadedError` while in-flight batches
complete; and a worker that loses (or stops trusting) the shared bounds
store demotes itself to local memoisation, surfaced as
``BatchReport.degraded_workers`` rather than a failed batch.

Shutdown is deterministic and idempotent: :meth:`QueryService.close` (or the
context manager, or the ``atexit`` fallback for services that are never
closed explicitly) drains the queue, stops the dispatcher, shuts the pool
down and releases the shared-memory export — the last release unlinks the
block.  The closed-check and the enqueue in :meth:`QueryService.submit`
happen atomically under one lock, so a submit racing :meth:`close` either
raises :class:`~repro.engine.errors.ServiceClosedError` or returns a handle
the dispatcher is guaranteed to resolve — batches a non-waiting close
abandoned resolve with :class:`~repro.engine.errors.ServiceClosedError`
instead of stranding their callers.  A request that raises inside a worker
fails only its own batch; the pool and the service survive.
"""

from __future__ import annotations

import atexit
import math
import queue
import threading
import time
from concurrent.futures import BrokenExecutor, CancelledError, Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence, Union

from ..uncertain import UncertainDatabase
from ..uncertain.sharedmem import (
    MutationDeltaExport,
    SharedDatabaseExport,
    shared_memory_available,
)
from .boundstore import (
    DEFAULT_CLAIMS,
    SharedBoundStore,
    bound_store_available,
    config_fingerprint,
    database_digest,
)
from .errors import (
    DeadlineExceeded,
    ServiceClosedError,
    ServiceOverloadedError,
    WorkerCrashError,
)
from .executor import (
    ADAPTIVE,
    DEFAULT_MAX_CHUNK_RETRIES,
    DEFAULT_WATCHDOG_GRACE_SECONDS,
    BatchReport,
    ExecutorConfig,
    WorkerPool,
    _pool_context,
    adaptive_chunk_size,
    affine_partition,
    partition_requests,
    validate_chunk_size,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .engine import QueryEngine
    from .requests import QueryRequest

__all__ = ["QueryService", "ServiceBatch", "MutationTicket"]

#: Sentinel distinguishing "argument not passed" from an explicit ``None``
#: (``chunk_size=None`` meaningfully requests one chunk per affinity bucket).
_UNSET = object()

#: Extra bound-store publish segments beyond one per lane, claimable by
#: respawned workers.  A respawned worker that finds every segment taken
#: still *reads* the store — it only loses the ability to publish — so a
#: small fixed spare pool is enough to keep long-lived services writable
#: through the occasional crash without reserving memory for worst cases.
_RESPAWN_SEGMENT_SPARES = 4


class ServiceBatch:
    """Handle to one submitted batch — a future over results and report.

    Returned immediately by :meth:`QueryService.submit`; the batch itself
    runs on the service's worker pool once the dispatcher reaches it.  All
    methods are thread-safe.
    """

    def __init__(self, future: Future):
        self._future = future

    def done(self) -> bool:
        """Whether the batch has finished (successfully or with an error)."""
        return self._future.done()

    def result(self, timeout: Optional[float] = None) -> list:
        """Block until the batch completes and return its results.

        Results are in request order, bit-identical to evaluating the same
        requests serially.  Re-raises the first chunk failure if the batch
        errored, and :class:`TimeoutError` if ``timeout`` elapses first.
        """
        return self._future.result(timeout)[0]

    def report(self, timeout: Optional[float] = None) -> BatchReport:
        """Block until the batch completes and return its merged report.

        The report's ``elapsed_seconds`` measures submit-to-completion
        latency (queue wait included) and ``pool`` is ``"persistent"``.
        """
        return self._future.result(timeout)[1]

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The batch's failure, or ``None`` once it completed successfully."""
        return self._future.exception(timeout)

    def add_done_callback(self, callback) -> None:
        """Schedule ``callback(self)`` for when the batch resolves.

        Invoked immediately when the batch already resolved, otherwise from
        the thread that resolves it (the service dispatcher) — callers that
        need to re-enter an event loop must marshal themselves (e.g. via
        ``loop.call_soon_threadsafe``), which is exactly how the HTTP
        gateway (``repro/gateway/``) bridges a batch into asyncio without
        blocking a loop thread on :meth:`result`.  Callback exceptions are
        swallowed and logged by :mod:`concurrent.futures`, matching
        ``Future.add_done_callback`` semantics.
        """
        self._future.add_done_callback(lambda _future: callback(self))


class MutationTicket:
    """Handle to one submitted mutation batch — a future over the new epoch.

    Returned immediately by :meth:`QueryService.submit_mutations`; the
    mutations are applied by the dispatcher once every earlier batch has
    finished, so the resolved epoch is exactly the snapshot all later
    batches see.  All methods are thread-safe.
    """

    def __init__(self, future: Future):
        self._future = future

    def done(self) -> bool:
        """Whether the mutation batch has been applied (or failed)."""
        return self._future.done()

    def result(self, timeout: Optional[float] = None) -> int:
        """Block until the mutations are applied; return the new epoch.

        Re-raises the application failure if the batch errored (e.g. a
        ``ValueError`` from validation, or a worker-pool failure), and
        :class:`TimeoutError` if ``timeout`` elapses first.
        """
        return self._future.result(timeout)

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        """The batch's failure, or ``None`` once it applied successfully."""
        return self._future.exception(timeout)

    def add_done_callback(self, callback) -> None:
        """Schedule ``callback(self)`` for when the mutations resolve.

        Same threading contract as :meth:`ServiceBatch.add_done_callback`:
        the callback runs on the dispatcher thread (or immediately when
        already resolved), so event-loop callers must marshal themselves.
        """
        self._future.add_done_callback(lambda _future: callback(self))


@dataclass
class _Job:
    """One queued batch: requests, their partitioning, and the future."""

    requests: list
    chunks: list[list[int]]
    chunking: str
    chunk_size: Optional[int]
    lanes: Optional[list[int]] = None
    future: Future = field(default_factory=Future)
    enqueued_at: float = 0.0
    #: Absolute ``time.time()`` epoch the batch must finish by (``None`` =
    #: no deadline).  Epoch-based so the same number is comparable in the
    #: dispatcher, the parent-side watchdog and the worker processes.
    deadline_epoch: Optional[float] = None


@dataclass
class _MutationJob:
    """One queued mutation batch: the (unresolved) mutations and a future.

    Travels through the same FIFO queue as :class:`_Job`, which is the whole
    trick: the dispatcher applies it after every earlier batch completed and
    before any later batch starts — a snapshot barrier without extra locks.
    """

    mutations: tuple
    future: Future = field(default_factory=Future)


#: Exponential-moving-average weight of the newest batch's per-request cost
#: (0.5 adapts within a couple of batches while smoothing one-off spikes).
_COST_EWMA_ALPHA = 0.5


class QueryService:
    """A persistent front-end over one engine, its pool and its dataset.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.engine.QueryEngine` to serve, or an
        :class:`~repro.uncertain.UncertainDatabase` (a default engine is
        built over it).
    executor:
        Optional :class:`~repro.engine.executor.ExecutorConfig` supplying
        the worker count (``effective_workers``; the adaptive default
        derives it from :func:`os.cpu_count`), default chunking and start
        method.  The ``mode`` field is ignored — a service exists to own a
        process pool; use ``engine.evaluate_many`` directly for serial
        evaluation.
    share_memory:
        ``True`` exports the database into shared memory before the pool
        starts (raises when the platform cannot); ``False`` forces the
        plain-pickling transport; ``None`` (default) uses shared memory
        exactly when :func:`~repro.uncertain.sharedmem.shared_memory_available`
        says so, falling back silently if the export fails at OS level.
    atexit_cleanup:
        Register an :mod:`atexit` fallback so a service never explicitly
        closed still shuts its pool down and unlinks its shared-memory
        block at interpreter exit.  :meth:`close` unregisters it.
    max_pending_batches / max_pending_requests:
        Admission-control bounds on work that has been submitted but not
        yet finished (queued *and* in-flight).  A submit that would exceed
        either bound raises
        :class:`~repro.engine.errors.ServiceOverloadedError` immediately —
        backpressure instead of an unbounded queue.  ``None`` (default)
        leaves that bound off.
    max_chunk_retries:
        How many times a chunk whose worker crashed is re-driven on the
        respawned lane before the batch fails with
        :class:`~repro.engine.errors.WorkerCrashError` (default 3).
    watchdog_grace:
        Seconds past a batch's deadline before the wall-clock watchdog
        SIGKILLs and respawns lanes still holding its chunks (default 2.0).
        Only armed for batches submitted with a deadline.
    bounds_store_path / bounds_store_name:
        Persistence knobs for the shared bounds store (mutually exclusive).
        ``bounds_store_path`` opens a disk-backed mmap at that path —
        surviving service restarts *and* reboots; ``bounds_store_name``
        attaches (or creates) a stable-named shared-memory block that
        survives restarts while the host stays up.  Either way the store
        carries a content handshake (database digest + axis-policy
        fingerprint): a matching previous incarnation is **warm-started**
        (its published columns serve from the first batch), while a
        truncated, torn or mismatched backing is discarded and rebuilt from
        empty — never served (``bound_store_stats()["rejected_store"]``
        reports why).  Persistent backings outlive :meth:`close`; delete
        them via ``SharedBoundStore.destroy`` or the filesystem.
    store_claims:
        Enable claim leases on the shared store (default ``True``): a
        worker announces a column before computing it so concurrent workers
        wait briefly instead of duplicating the kernel work, and claims of
        crashed workers are stolen after a short lease.  ``False`` builds
        the store without a claim table (the PR-5 behaviour).
    store_reclaim:
        Enable generation-based segment recycling (default ``True``): when
        a batch reports rejected publishes the dispatcher retires one
        segment (round-robin) so publishing resumes instead of latching
        into local memoisation, and after every mutation batch segments
        dominated by superseded-generation columns are recycled.
    bounds_store_options:
        Optional dict of store-geometry overrides forwarded to
        :class:`~repro.engine.boundstore.SharedBoundStore` (``num_slots``,
        ``segment_bytes``, ``num_segments``, ``num_claims``) — for tests
        and memory-constrained deployments.

    Example
    -------
    ::

        with QueryService(engine, ExecutorConfig(workers=4)) as service:
            for batch in request_stream:          # one pool for all batches
                results = service.evaluate_many(batch)

    Thread safety: :meth:`submit`, :meth:`evaluate_many` and :meth:`close`
    may be called from any thread; batches execute in FIFO submission order.
    """

    def __init__(
        self,
        engine: Union["QueryEngine", UncertainDatabase],
        executor: Optional[ExecutorConfig] = None,
        *,
        share_memory: Optional[bool] = None,
        atexit_cleanup: bool = True,
        max_pending_batches: Optional[int] = None,
        max_pending_requests: Optional[int] = None,
        max_chunk_retries: int = DEFAULT_MAX_CHUNK_RETRIES,
        watchdog_grace: float = DEFAULT_WATCHDOG_GRACE_SECONDS,
        bounds_store_path: Optional[str] = None,
        bounds_store_name: Optional[str] = None,
        store_claims: bool = True,
        store_reclaim: bool = True,
        bounds_store_options: Optional[dict] = None,
    ):
        from .engine import QueryEngine

        for name, bound in (
            ("max_pending_batches", max_pending_batches),
            ("max_pending_requests", max_pending_requests),
        ):
            if bound is not None and (not isinstance(bound, int) or bound < 1):
                raise ValueError(f"{name} must be a positive integer or None")
        if isinstance(engine, UncertainDatabase):
            engine = QueryEngine(engine)
        self.engine = engine
        self.config = executor if executor is not None else ExecutorConfig()
        self._export: Optional[SharedDatabaseExport] = None
        self._transport = "pickle"
        if share_memory is None:
            if shared_memory_available():
                try:
                    self._export = engine.database.share_memory().acquire()
                    self._transport = "shared_memory"
                except OSError:  # pragma: no cover - e.g. /dev/shm missing
                    self._export = None
        elif share_memory:
            self._export = engine.database.share_memory().acquire()
            self._transport = "shared_memory"
        workers = self.config.effective_workers
        self._bound_store: Optional[SharedBoundStore] = None
        use_bounds = self.config.shared_bounds
        if use_bounds is None:
            use_bounds = bound_store_available()
        elif use_bounds and not bound_store_available():
            if self._export is not None:
                self._export.release()
            raise RuntimeError(
                "shared_bounds=True but the shared bounds store is "
                "unavailable on this platform (or disabled via environment)"
            )
        self._store_reclaim = store_reclaim
        if use_bounds:
            options = dict(bounds_store_options or {})
            num_claims = options.pop("num_claims", None)
            if num_claims is None:
                num_claims = DEFAULT_CLAIMS
            if not store_claims:
                num_claims = 0
            store_kwargs = {
                # one publish segment per worker lane plus a few spares for
                # respawned workers: supervision replaces a crashed worker
                # with a fresh process, which claims the next free segment
                # so it can keep publishing (read access never needs one)
                "num_segments": min(255, workers + _RESPAWN_SEGMENT_SPARES),
                "mp_context": _pool_context(self.config.start_method),
                "num_claims": num_claims,
            }
            store_kwargs.update(options)
            if bounds_store_path is not None or bounds_store_name is not None:
                # the content handshake a warm-start validates against: a
                # persisted backing built over different data or config is
                # rejected by the store's validation ladder
                store_kwargs.update(
                    path=bounds_store_path,
                    name=bounds_store_name,
                    content_digest=database_digest(engine.database),
                    config_fingerprint=config_fingerprint(
                        engine.context.axis_policy
                    ),
                )
            try:
                self._bound_store = SharedBoundStore(**store_kwargs)
            except OSError:  # pragma: no cover - e.g. /dev/shm exhausted
                # auto-detection degrades silently; an explicit request
                # must fail loudly rather than run without the store
                if self.config.shared_bounds:
                    if self._export is not None:
                        self._export.release()
                    raise
                self._bound_store = None
        try:
            self._pool = WorkerPool(
                engine,
                workers,
                self.config.start_method,
                bound_store=self._bound_store,
                max_chunk_retries=max_chunk_retries,
                watchdog_grace=watchdog_grace,
            )
        except BaseException:
            if self._bound_store is not None:
                self._bound_store.close()
            if self._export is not None:
                self._export.release()
            raise
        self._cost_ewma: Optional[float] = None
        # parent-side owners of every mutation delta shipped to the pool;
        # must outlive the pool (a respawned lane replays the whole delta
        # history from its block), released in close()
        self._delta_exports: list[MutationDeltaExport] = []
        #: Merged :class:`~repro.engine.executor.BatchReport` of the most
        #: recently *completed* batch (``None`` before the first one).
        self.last_batch_report: Optional[BatchReport] = None
        self._jobs: "queue.SimpleQueue[Optional[_Job]]" = queue.SimpleQueue()
        self._submit_lock = threading.Lock()
        self._closed = False
        self._abandoned = False
        self._max_pending_batches = max_pending_batches
        self._max_pending_requests = max_pending_requests
        # admission counters: submitted-but-unfinished work, maintained
        # under _submit_lock (incremented by submit, decremented by the
        # dispatcher when a job's future resolves)
        self._pending_batches = 0
        self._pending_requests = 0
        self._seen_pids: set[int] = set()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-query-service", daemon=True
        )
        self._dispatcher.start()
        self._atexit_registered = atexit_cleanup
        if atexit_cleanup:
            atexit.register(self.close)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run; a closed service rejects submits."""
        return self._closed

    @property
    def workers(self) -> int:
        """Size of the persistent worker pool."""
        return self._pool.workers

    @property
    def transport(self) -> str:
        """Dataset transport to the workers: ``"shared_memory"`` or ``"pickle"``."""
        return self._transport

    @property
    def shared_bounds(self) -> bool:
        """Whether a cross-worker shared bounds store backs this pool."""
        return self._bound_store is not None

    @property
    def epoch(self) -> int:
        """Snapshot epoch of the database currently being served.

        Starts at the epoch of the database the service was built over and
        advances by one per applied mutation batch (:meth:`apply`).  Read
        from the dispatcher's point of view this may lag a just-submitted
        mutation — the authoritative epoch for a mutation batch is the one
        its :class:`MutationTicket` resolves to.
        """
        return self.engine.database.epoch

    def bound_store_stats(self) -> Optional[dict]:
        """Global occupancy of the shared bounds store (``None`` without one).

        Filled index slots, claimed worker segments, per-segment used bytes
        and generations, active in-flight claims, lifetime reclaim count and
        the warm-start handshake outcome (``warm_started`` /
        ``rejected_store``) — the parent-side view; per-worker
        hit/publish/reject counters live in the
        :class:`~repro.engine.executor.BatchReport` chunk stats.
        """
        if self._bound_store is None:
            return None
        return self._bound_store.stats()

    @property
    def store_warm_started(self) -> bool:
        """Whether the bounds store adopted a previous incarnation's backing.

        ``True`` only for persistent stores (``bounds_store_path`` /
        ``bounds_store_name``) whose existing backing passed the content
        handshake — the previous lifetime's columns serve from the first
        batch.
        """
        return self._bound_store is not None and self._bound_store.warm_started

    def _identity_current(self, identity) -> bool:
        """Whether a stable object identity still names live content.

        The staleness predicate behind
        :meth:`~repro.engine.boundstore.SharedBoundStore.reclaim_stale`:
        ``("db", position, generation)`` identities are stale once the
        served database moved that position to a different generation (or
        dropped it); content-keyed identities and anything unrecognised are
        conservatively treated as current.
        """
        try:
            kind, position, generation = identity
        except (TypeError, ValueError):
            return True
        if kind != "db":
            return True
        database = self.engine.database
        if not isinstance(position, int) or not 0 <= position < len(database):
            return False
        return database.generation_of(position) == generation

    @property
    def observed_request_seconds(self) -> Optional[float]:
        """EWMA of per-request worker seconds over completed batches.

        The cost signal behind ``chunk_size="adaptive"``; ``None`` until the
        first batch completes.
        """
        return self._cost_ewma

    def adaptive_chunk_size(self, num_requests: int) -> Optional[int]:
        """Chunk-size cap ``chunk_size="adaptive"`` resolves to right now.

        Derived from :attr:`observed_request_seconds` via
        :func:`~repro.engine.executor.adaptive_chunk_size`; ``None`` (use
        the default chunking) while there is no cost history yet.
        """
        return adaptive_chunk_size(num_requests, self.workers, self._cost_ewma)

    @property
    def worker_pids(self) -> tuple[int, ...]:
        """Distinct worker pids observed across all completed batches.

        Bounded by :attr:`workers` plus :attr:`worker_respawns` for the
        service's whole lifetime — one pool serves every batch, and only
        supervision replacing a crashed worker ever adds a pid.
        """
        # the dispatcher rebinds _seen_pids atomically instead of mutating
        # it, so this snapshot can never observe a set mid-update
        return tuple(sorted(self._seen_pids))

    @property
    def worker_respawns(self) -> int:
        """Crashed worker lanes the pool has respawned over its lifetime."""
        return self._pool.respawns

    @property
    def pending_batches(self) -> int:
        """Batches submitted but not yet finished (queued + in flight)."""
        return self._pending_batches

    @property
    def pending_requests(self) -> int:
        """Requests submitted but not yet finished (queued + in flight)."""
        return self._pending_requests

    @property
    def payload_nbytes(self) -> int:
        """Bytes of engine payload each worker received at pool startup.

        On the shared-memory path this is a few kilobytes regardless of
        database size — the array payload lives in the shared block.
        """
        return self._pool.payload_nbytes

    def warm(self) -> None:
        """Force every worker lane's process to exist *now*.

        Pool lanes spawn their worker process on first use; under the
        ``fork`` start method a late spawn copies every file descriptor
        the parent holds at that moment — including client sockets a
        network tier accepted before the first batch, which then keeps
        those connections alive in the kernel long after the client's
        close.  Front-ends (the HTTP gateway) call this before accepting
        traffic so every fork happens while the parent holds no
        connection fds.  Idempotent; costs one probe round-trip per lane.
        """
        if self._closed:
            raise ServiceClosedError("the service is closed")
        for lane in range(self.workers):
            self._pool.probe(lane)

    def probe_workers(self) -> dict:
        """One worker's self-report: pid, dataset transport, block name.

        Workers are interchangeable (they all received the same payload),
        so a single report characterises the pool.
        """
        if self._closed:
            raise ServiceClosedError("the service is closed")
        return self._pool.probe()

    # ------------------------------------------------------------------ #
    # request queue
    # ------------------------------------------------------------------ #
    def submit(
        self,
        requests: Sequence["QueryRequest"],
        chunk_size=_UNSET,
        chunking: Optional[str] = None,
        deadline: Optional[float] = None,
        deadline_epoch: Optional[float] = None,
    ) -> ServiceBatch:
        """Enqueue a batch and return a :class:`ServiceBatch` immediately.

        The batch is partitioned here (a deterministic function of the batch
        alone) and executed by the dispatcher in FIFO order; chunks run in
        parallel across the persistent pool.  ``chunk_size`` / ``chunking``
        default to the service's executor config; ``chunk_size="adaptive"``
        resolves against the observed per-request cost of earlier batches
        (:meth:`adaptive_chunk_size`) under ``"contiguous"`` chunking, and
        is a no-op under ``"affinity"`` — splitting a lane-pinned bucket
        cannot move work to another lane, it only adds dispatch overhead.
        With ``"affinity"`` chunking the
        chunks are additionally *pinned*: each affinity bucket's lane is a
        stable hash of its key (:func:`~repro.engine.executor.affine_partition`),
        so a recurring query object lands on the worker whose caches served
        it last batch.

        ``deadline`` (seconds from now, positive and finite) bounds the
        batch's wall clock, queue wait included: work past the deadline
        fails with :class:`~repro.engine.errors.DeadlineExceeded` — checked
        in the dispatcher before the batch starts, between requests and
        every refinement iteration inside the workers, and by a hard
        watchdog that SIGKILLs+respawns a lane wedged past deadline +
        grace.  ``deadline_epoch`` is the absolute form (a ``time.time()``
        epoch, mutually exclusive with ``deadline``) for callers that fix
        the budget when a request *arrives* rather than when it is
        submitted — e.g. the HTTP gateway converting a client
        ``timeout_ms``.  Both are validated eagerly: a non-positive or
        non-finite ``deadline``, or a ``deadline_epoch`` that already lies
        in the past, raises ``ValueError`` here instead of enqueueing a
        batch that could only ever resolve
        :class:`~repro.engine.errors.DeadlineExceeded`.

        Raises :class:`~repro.engine.errors.ServiceClosedError` once the
        service is closed, and
        :class:`~repro.engine.errors.ServiceOverloadedError` when admission
        control would be exceeded (the batch is not enqueued; in-flight
        work is unaffected).
        """
        requests = list(requests)
        size = self.config.chunk_size if chunk_size is _UNSET else chunk_size
        if chunk_size is not _UNSET:
            validate_chunk_size(size)
        if deadline is not None and deadline_epoch is not None:
            raise ValueError("pass either deadline or deadline_epoch, not both")
        if deadline is not None and not (
            math.isfinite(deadline) and deadline > 0
        ):
            raise ValueError(
                f"deadline must be positive finite seconds, got {deadline!r}"
            )
        if deadline_epoch is not None:
            if not (
                isinstance(deadline_epoch, (int, float))
                and math.isfinite(deadline_epoch)
            ):
                raise ValueError(
                    f"deadline_epoch must be a finite epoch, got {deadline_epoch!r}"
                )
            # eager expiry check: an already-expired deadline could only ever
            # resolve DeadlineExceeded — fail the caller now, before the
            # batch occupies queue capacity
            if deadline_epoch <= time.time():
                raise ValueError(
                    f"deadline_epoch {deadline_epoch!r} already expired"
                )
        strategy = chunking if chunking is not None else self.config.chunking
        if size == ADAPTIVE:
            # splitting a lane-pinned bucket cannot rebalance work (the
            # extra chunks run sequentially on the same lane), so the
            # adaptive cap only applies to work-conserving dispatch
            size = (
                None
                if strategy == "affinity"
                else self.adaptive_chunk_size(len(requests))
            )
        lanes: Optional[list[int]] = None
        if strategy == "affinity":
            chunks, lanes = affine_partition(requests, self._pool.workers, size)
        else:
            chunks = partition_requests(requests, self._pool.workers, size, strategy)
        job = _Job(
            requests=requests,
            chunks=chunks,
            chunking=strategy,
            chunk_size=size,
            lanes=lanes,
        )
        with self._submit_lock:
            if self._closed:
                raise ServiceClosedError("cannot submit to a closed QueryService")
            if (
                self._max_pending_batches is not None
                and self._pending_batches >= self._max_pending_batches
            ):
                raise ServiceOverloadedError(
                    f"service at max_pending_batches={self._max_pending_batches}"
                )
            if (
                self._max_pending_requests is not None
                and self._pending_requests + len(requests)
                > self._max_pending_requests
            ):
                raise ServiceOverloadedError(
                    f"{len(requests)} requests would exceed "
                    f"max_pending_requests={self._max_pending_requests} "
                    f"({self._pending_requests} already pending)"
                )
            self._pending_batches += 1
            self._pending_requests += len(requests)
            job.enqueued_at = time.perf_counter()
            if deadline is not None:
                job.deadline_epoch = time.time() + deadline
            elif deadline_epoch is not None:
                job.deadline_epoch = float(deadline_epoch)
            self._jobs.put(job)
        return ServiceBatch(job.future)

    def evaluate_many(
        self,
        requests: Sequence["QueryRequest"],
        chunk_size=_UNSET,
        chunking: Optional[str] = None,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
        deadline_epoch: Optional[float] = None,
    ) -> list:
        """Evaluate a batch through the request queue, blocking until done.

        Same contract as :meth:`QueryEngine.evaluate_many` — results in
        request order, bit-identical to the serial path — but dispatched
        onto the service's persistent pool.  The merged report lands on
        :attr:`last_batch_report` and on the engine's
        ``last_batch_report`` (with ``pool="persistent"``).  ``deadline`` /
        ``deadline_epoch`` are forwarded to :meth:`submit`; ``timeout``
        only bounds this call's blocking wait (the batch keeps running
        server-side when it fires).
        """
        handle = self.submit(
            requests,
            chunk_size=chunk_size,
            chunking=chunking,
            deadline=deadline,
            deadline_epoch=deadline_epoch,
        )
        return handle.result(timeout)

    def submit_mutations(self, mutations) -> MutationTicket:
        """Enqueue a mutation batch; return a :class:`MutationTicket` now.

        The mutations ride the same FIFO queue as query batches, so they
        form a **snapshot barrier**: every batch submitted before this call
        runs against the pre-mutation snapshot, every batch submitted after
        the ticket resolves runs against the new one, and nothing ever
        observes a half-applied update.  The dispatcher resolves the batch
        against the current snapshot
        (:meth:`~repro.uncertain.UncertainDatabase.resolve_mutations`),
        ships a :class:`~repro.uncertain.sharedmem.MutationDelta` — touched
        objects only — to every worker lane, applies the same resolved
        batch parent-side, and resolves the ticket with the new epoch.

        Mutations are control-plane work: they bypass
        ``max_pending_batches`` / ``max_pending_requests`` admission (they
        must be able to land even under query backpressure).  Raises
        :class:`~repro.engine.errors.ServiceClosedError` once the service
        is closed.  A mutation that fails *after* reaching the workers
        (e.g. the pool died mid-apply) can leave workers ahead of the
        parent — treat a ticket that resolves with a pool error as fatal
        and close the service.
        """
        job = _MutationJob(mutations=tuple(mutations))
        with self._submit_lock:
            if self._closed:
                raise ServiceClosedError("cannot mutate a closed QueryService")
            self._jobs.put(job)
        return MutationTicket(job.future)

    def apply(self, mutations, timeout: Optional[float] = None) -> int:
        """Apply a mutation batch, blocking until every layer advanced.

        Convenience wrapper over :meth:`submit_mutations` — returns the new
        snapshot epoch once the parent engine, every worker lane, the shared
        cache keys and the candidate index all serve the new snapshot.
        ``timeout`` bounds only this call's wait; the mutation itself is
        applied by the dispatcher regardless.
        """
        return self.submit_mutations(mutations).result(timeout)

    # ------------------------------------------------------------------ #
    # dispatcher (single background thread)
    # ------------------------------------------------------------------ #
    def _job_finished(self, job: _Job) -> None:
        """Release a job's admission-control reservation (future resolved)."""
        with self._submit_lock:
            self._pending_batches -= 1
            self._pending_requests -= len(job.requests)

    def _run_mutation_job(self, job: _MutationJob) -> None:
        """Apply one mutation batch: workers first, then the parent engine.

        Ordering: the delta export is built from the *current* snapshot, the
        pool barrier advances every lane, and only then does the parent
        engine apply — so a failure anywhere before the parent apply leaves
        the parent (and all admission/partitioning state) on the old epoch.
        """
        if not job.future.set_running_or_notify_cancel():
            return
        if self._abandoned:
            job.future.set_exception(
                ServiceClosedError("the service closed before this mutation ran")
            )
            return
        try:
            database = self.engine.database
            resolved = database.resolve_mutations(job.mutations)
            export = MutationDeltaExport(database, resolved)
            self._delta_exports.append(export)
            self._pool.apply_delta(export.delta)
            self.engine.apply_mutations(resolved)
        except BaseException as error:
            if self._abandoned and isinstance(
                error, (BrokenExecutor, CancelledError, WorkerCrashError)
            ):
                job.future.set_exception(
                    ServiceClosedError(
                        "the service closed while this mutation was running"
                    )
                )
            else:
                job.future.set_exception(error)
            return
        # the cost profile of the old snapshot does not transfer: content,
        # cardinality and cache warmth all changed, so adaptive chunk
        # sizing restarts from scratch at the new epoch
        self._cost_ewma = None
        if self._bound_store is not None and self._store_reclaim:
            # the mutation made some generations unreachable; recycle
            # segments dominated by their columns.  Safe here: the
            # dispatcher runs one job at a time, so no worker is publishing
            self._bound_store.reclaim_stale(self._identity_current)
        job.future.set_result(self.engine.database.epoch)

    def _dispatch_loop(self) -> None:
        while True:
            job = self._jobs.get()
            if job is None:
                break
            if isinstance(job, _MutationJob):
                self._run_mutation_job(job)
                continue
            try:
                if not job.future.set_running_or_notify_cancel():
                    continue  # cancelled before it started
                if self._abandoned:
                    job.future.set_exception(
                        ServiceClosedError(
                            "the service closed before this batch ran"
                        )
                    )
                    continue
                if (
                    job.deadline_epoch is not None
                    and time.time() >= job.deadline_epoch
                ):
                    job.future.set_exception(
                        DeadlineExceeded("batch deadline expired while queued")
                    )
                    continue
                try:
                    results, chunk_stats, faults = self._pool.run_chunks(
                        job.requests,
                        job.chunks,
                        lanes=job.lanes,
                        deadline_epoch=job.deadline_epoch,
                    )
                except BaseException as error:
                    if self._abandoned and isinstance(
                        error, (BrokenExecutor, CancelledError, WorkerCrashError)
                    ):
                        # close(wait=False) tore the pool down underneath
                        # this batch; the executor-level failure is an
                        # artefact of that teardown, not a real crash —
                        # surface the close instead
                        job.future.set_exception(
                            ServiceClosedError(
                                "the service closed while this batch was running"
                            )
                        )
                    else:
                        job.future.set_exception(error)
                    continue
                completed = sum(s.size for s in chunk_stats)
                if completed > 0:
                    # divide by the work that ran: a report with zero
                    # completed requests carries no cost signal and must
                    # not poison (or zero-divide) the EWMA
                    per_request = sum(s.seconds for s in chunk_stats) / completed
                    if self._cost_ewma is None:
                        self._cost_ewma = per_request
                    else:
                        self._cost_ewma = (
                            _COST_EWMA_ALPHA * per_request
                            + (1.0 - _COST_EWMA_ALPHA) * self._cost_ewma
                        )
                report = BatchReport(
                    mode="process",
                    workers=self._pool.workers,
                    chunking=job.chunking,
                    chunk_size=job.chunk_size,
                    num_requests=len(job.requests),
                    elapsed_seconds=time.perf_counter() - job.enqueued_at,
                    chunks=tuple(chunk_stats),
                    pool="persistent",
                    worker_respawns=faults["worker_respawns"],
                    chunk_retries=faults["chunk_retries"],
                    epoch=self.engine.database.epoch,
                )
                self._seen_pids = self._seen_pids | set(report.worker_pids)
                self.last_batch_report = report
                self.engine.last_batch_report = report
                if (
                    self._bound_store is not None
                    and self._store_reclaim
                    and report.shared_rejected > 0
                ):
                    # saturation pressure: some worker wanted to publish and
                    # could not.  Retire one segment per batch (round-robin
                    # over the claimed ones) so publishing resumes and the
                    # workers' full latches release — between jobs, so no
                    # writer is mid-publish
                    self._bound_store.reclaim_round_robin()
                job.future.set_result((results, report))
            finally:
                self._job_finished(job)

    # ------------------------------------------------------------------ #
    # shutdown
    # ------------------------------------------------------------------ #
    def close(self, wait: bool = True) -> None:
        """Shut the service down (idempotent; also the ``atexit`` fallback).

        ``wait=True`` (default) drains the queue — already-submitted batches
        complete and their handles resolve — then stops the dispatcher,
        shuts the pool down (no worker processes remain) and releases the
        shared-memory export, whose last release unlinks the block.
        ``wait=False`` abandons pending work: queued batches resolve with
        :class:`~repro.engine.errors.ServiceClosedError`, unstarted chunks
        are cancelled, and the in-flight batch (if any) resolves with its
        results when it beats the teardown, otherwise with
        :class:`~repro.engine.errors.ServiceClosedError` — no handle is
        ever left unresolved.  Subsequent :meth:`submit` calls raise
        :class:`~repro.engine.errors.ServiceClosedError` (a subclass of
        ``RuntimeError``).
        """
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            if not wait:
                # the dispatcher fails queued jobs fast instead of running
                # them against a pool that is being torn down underneath it
                self._abandoned = True
            self._jobs.put(None)  # under the lock: nothing enqueues after it
        if wait:
            self._dispatcher.join()
        self._pool.close(wait=wait, cancel_pending=not wait)
        # no worker can attach a delta block once the pool is gone
        for export in self._delta_exports:
            export.close()
        self._delta_exports.clear()
        if self._bound_store is not None:
            self._bound_store.close()
            self._bound_store = None
        if self._export is not None:
            self._export.release()
            self._export = None
        if self._atexit_registered:
            atexit.unregister(self.close)
            self._atexit_registered = False

    def __enter__(self) -> "QueryService":
        """Context-manager entry: the service itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the service, draining the queue."""
        self.close(wait=True)
