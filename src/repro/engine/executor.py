"""Parallel batch execution behind :meth:`QueryEngine.evaluate_many`.

Layer contract: everything in this module sits *above* the engine — it never
reaches into refinement state.  A batch of :class:`~repro.engine.requests`
objects is partitioned into chunks, every chunk is evaluated by calling
``request.run(engine)`` exactly as the serial path does, and the per-chunk
outcomes are merged into a :class:`BatchReport`.  Three properties make this
safe to parallelise:

* **requests are independent** — no request reads another request's result;
* **shared caches never change results** — the refinement context only
  removes recomputation (the PR-1 invariant asserted by the seeded
  equivalence suite), so it does not matter which worker's cache serves a
  candidate;
* **budgets are per query** — the scheduler's ``global_iteration_budget``
  applies per :meth:`~RefinementScheduler.refine` call, never across queries,
  so chunk composition cannot starve or favour a query.

Together these give the determinism guarantee documented in
``docs/architecture.md``: ``evaluate_many`` returns bit-identical results for
every ``workers`` / ``chunk_size`` / chunking-strategy combination, including
the serial path.

Worker lifecycle: the parent pickles the engine **once**; every worker
process receives that payload through the pool initializer, unpickles it, and
thereby rebuilds an *empty* worker-local :class:`RefinementContext` (see
``RefinementContext.__reduce__``).  Workers keep their engine across chunks,
so cache warm-up is paid once per worker, not once per chunk — which is why
the ``affinity`` chunking strategy routes requests that share a query object
into the same *chunk*.  Chunks are dispatched to whichever worker is free,
so locality is guaranteed within a chunk and best-effort across chunks; with
``chunk_size=None`` (the default) each affinity bucket is exactly one chunk
and therefore does run on a single worker.

The pool lifecycle itself lives in :class:`WorkerPool`: ``run_process_batch``
creates one pool per batch (and tears it down on every exit path, so errors
cannot leak worker processes), while the long-lived
:class:`~repro.engine.service.QueryService` keeps a single :class:`WorkerPool`
alive across every batch of the process lifetime.  When the database carries
an active shared-memory export (``UncertainDatabase.share_memory``), the
engine payload both paths ship is a lightweight handle and workers *map* the
dataset instead of unpickling a copy.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import sys
import time
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Literal, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .engine import QueryEngine
    from .requests import QueryRequest

__all__ = [
    "BatchReport",
    "ChunkStats",
    "ExecutorConfig",
    "WorkerPool",
    "partition_requests",
    "result_iteration_stats",
    "run_chunk_on_engine",
]

ExecutionMode = Literal["auto", "serial", "process"]
ChunkingStrategy = Literal["affinity", "contiguous"]


@dataclass(frozen=True)
class ExecutorConfig:
    """How :meth:`QueryEngine.evaluate_many` should execute a batch.

    Parameters
    ----------
    mode:
        ``"serial"`` forces today's single-process path (bit-for-bit the
        behaviour of calling ``evaluate_many`` without a config).
        ``"process"`` forces the process pool even for one worker — useful to
        exercise the pickling path.  ``"auto"`` (default) picks the pool when
        the resolved worker count exceeds 1 and the batch has more than one
        request.
    workers:
        Number of worker processes.  ``None`` (default) derives the count
        from :func:`os.cpu_count` — so ``mode="auto"`` actually scales out
        on multi-core machines instead of silently meaning "serial".  An
        explicit value is always authoritative; ``workers=1`` under
        ``"auto"`` is the serial path.  :attr:`effective_workers` is the
        resolved count.
    chunk_size:
        Optional cap on requests per chunk.  ``None`` derives one chunk per
        worker (contiguous) or one chunk per affinity bucket (affinity).
        Results never depend on this value — it only trades scheduling
        granularity against per-chunk overhead.
    chunking:
        ``"affinity"`` (default) groups requests that share a query object
        into the same chunk so a worker's local caches serve the repeats;
        ``"contiguous"`` splits the batch in request order.
    start_method:
        Optional :mod:`multiprocessing` start method.  ``None`` prefers
        ``"fork"`` when the platform offers it (cheapest on Linux) and falls
        back to the platform default otherwise.  All methods receive the same
        explicitly pickled engine payload, so cache state is identical —
        empty — regardless of the start method.
    """

    mode: ExecutionMode = "auto"
    workers: Optional[int] = None
    chunk_size: Optional[int] = None
    chunking: ChunkingStrategy = "affinity"
    start_method: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in ("auto", "serial", "process"):
            raise ValueError(f"unknown execution mode {self.mode!r}")
        if self.chunking not in ("affinity", "contiguous"):
            raise ValueError(f"unknown chunking strategy {self.chunking!r}")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be at least 1 when given")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be at least 1 when given")

    @property
    def effective_workers(self) -> int:
        """The resolved worker count: explicit ``workers``, else CPU count.

        The adaptive default (``workers=None``) asks :func:`os.cpu_count`
        at resolution time, so the same config object adapts to the machine
        it runs on; explicitly configured counts are never overridden.
        """
        if self.workers is not None:
            return self.workers
        return max(1, os.cpu_count() or 1)

    def resolve_mode(self, num_requests: int) -> str:
        """Concrete execution mode for a batch of ``num_requests``."""
        if self.mode == "serial":
            return "serial"
        if self.mode == "process":
            return "process"
        if self.effective_workers > 1 and num_requests > 1:
            return "process"
        return "serial"


@dataclass(frozen=True)
class ChunkStats:
    """Execution statistics of one chunk, measured inside its worker.

    Cache counters are deltas over the chunk (a worker's context persists
    across the chunks it executes); ``trees`` is the occupancy of the
    worker's tree cache *after* the chunk, i.e. how much decomposition state
    the worker has accumulated so far.
    """

    chunk: int
    size: int
    seconds: float
    pid: int
    kinds: dict[str, int]
    scheduler_steps: int
    result_iterations: int
    result_seconds: float
    trees: int
    pair_bounds_hits: int
    pair_bounds_misses: int


@dataclass(frozen=True)
class BatchReport:
    """Merged execution report of one ``evaluate_many`` call.

    One :class:`ChunkStats` per executed chunk (the serial path reports the
    whole batch as a single chunk); the aggregate properties merge the
    per-worker refinement-iteration and cache counters so a batch can be
    profiled without reaching into worker processes.
    """

    mode: str
    workers: int
    chunking: str
    chunk_size: Optional[int]
    num_requests: int
    elapsed_seconds: float
    chunks: tuple[ChunkStats, ...] = field(default_factory=tuple)
    #: Pool lifetime behind the batch: ``"none"`` (serial), ``"per-batch"``
    #: (a pool created and torn down by this call) or ``"persistent"`` (a
    #: long-lived :class:`~repro.engine.service.QueryService` pool).
    pool: str = "none"

    @property
    def num_chunks(self) -> int:
        """Number of chunks the batch was partitioned into."""
        return len(self.chunks)

    @property
    def worker_pids(self) -> tuple[int, ...]:
        """Distinct worker process ids that executed chunks, sorted."""
        return tuple(sorted({stats.pid for stats in self.chunks}))

    @property
    def scheduler_steps(self) -> int:
        """Total refinement iterations spent across all workers."""
        return sum(stats.scheduler_steps for stats in self.chunks)

    @property
    def result_iterations(self) -> int:
        """Refinement iterations reported by the results, all workers merged."""
        return sum(stats.result_iterations for stats in self.chunks)

    @property
    def result_seconds(self) -> float:
        """Per-query evaluation seconds summed over all results and workers.

        In process mode this exceeds :attr:`elapsed_seconds` when workers
        overlap — the ratio is the effective parallelism of the batch.
        """
        return sum(stats.result_seconds for stats in self.chunks)

    @property
    def pair_bounds_hits(self) -> int:
        """Pair-bounds cache hits summed over all workers."""
        return sum(stats.pair_bounds_hits for stats in self.chunks)

    @property
    def pair_bounds_misses(self) -> int:
        """Pair-bounds cache misses summed over all workers."""
        return sum(stats.pair_bounds_misses for stats in self.chunks)

    @property
    def kinds(self) -> dict[str, int]:
        """Request counts per query kind, merged over all chunks."""
        merged: Counter[str] = Counter()
        for stats in self.chunks:
            merged.update(stats.kinds)
        return dict(merged)

    @property
    def busiest_chunk_seconds(self) -> float:
        """Wall-clock of the slowest chunk — the parallel critical path."""
        return max((stats.seconds for stats in self.chunks), default=0.0)

    def to_dict(self) -> dict:
        """JSON-serialisable summary (used by the parallel benchmark)."""
        return {
            "mode": self.mode,
            "pool": self.pool,
            "workers": self.workers,
            "chunking": self.chunking,
            "chunk_size": self.chunk_size,
            "num_requests": self.num_requests,
            "num_chunks": self.num_chunks,
            "num_worker_pids": len(self.worker_pids),
            "elapsed_seconds": self.elapsed_seconds,
            "busiest_chunk_seconds": self.busiest_chunk_seconds,
            "scheduler_steps": self.scheduler_steps,
            "result_iterations": self.result_iterations,
            "result_seconds": self.result_seconds,
            "pair_bounds_hits": self.pair_bounds_hits,
            "pair_bounds_misses": self.pair_bounds_misses,
            "kinds": self.kinds,
            "chunk_sizes": [stats.size for stats in self.chunks],
        }


# --------------------------------------------------------------------- #
# batch partitioning
# --------------------------------------------------------------------- #
def _split(indices: list[int], chunk_size: Optional[int]) -> list[list[int]]:
    if not indices:
        return []
    if chunk_size is None:
        return [indices]
    return [indices[i : i + chunk_size] for i in range(0, len(indices), chunk_size)]


def partition_requests(
    requests: Sequence["QueryRequest"],
    workers: int,
    chunk_size: Optional[int] = None,
    chunking: ChunkingStrategy = "affinity",
) -> list[list[int]]:
    """Partition a batch into chunks of request indices.

    Every index appears in exactly one chunk, so reassembling chunk results
    by index reproduces request order regardless of which worker ran which
    chunk.  ``"contiguous"`` splits the batch in order (default chunk size:
    one chunk per worker).  ``"affinity"`` buckets requests by
    :meth:`~repro.engine.requests.KNNQuery.affinity_key` — requests that
    share a query object land in the same bucket, largest buckets are
    assigned to the least-loaded of ``workers`` buckets first — so a
    worker's local caches serve the repeated queries of a production stream.
    The assignment is a deterministic function of the batch alone.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError("chunk_size must be at least 1 when given")
    if chunking not in ("affinity", "contiguous"):
        raise ValueError(f"unknown chunking strategy {chunking!r}")
    indices = list(range(len(requests)))
    if not indices:
        return []
    if chunking == "contiguous":
        size = chunk_size or math.ceil(len(indices) / workers)
        return _split(indices, size)

    groups: dict[object, list[int]] = {}
    for index, request in enumerate(requests):
        groups.setdefault(request.affinity_key(), []).append(index)
    # deterministic greedy assignment: largest group first, ties by first
    # appearance, into the currently lightest bucket
    ordered = sorted(groups.values(), key=lambda group: (-len(group), group[0]))
    buckets: list[list[int]] = [[] for _ in range(min(workers, len(ordered)))]
    loads = [0] * len(buckets)
    for group in ordered:
        target = loads.index(min(loads))
        buckets[target].extend(group)
        loads[target] += len(group)
    chunks: list[list[int]] = []
    for bucket in buckets:
        bucket.sort()
        chunks.extend(_split(bucket, chunk_size))
    return chunks


# --------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------- #
# One engine per worker process, installed by the pool initializer.  The
# payload is pickled by the parent exactly once; unpickling rebuilds the
# refinement context with empty worker-local caches (RefinementContext
# reduces to its constructor arguments) and a fresh scheduler accounting
# state (RefinementScheduler reduces to its configuration).
_WORKER_ENGINE: Optional["QueryEngine"] = None


def result_iteration_stats(results: Sequence) -> tuple[int, float]:
    """Merge the per-result ``IterationStats``-level counters of a chunk.

    Returns ``(refinement_iterations, seconds)`` summed over every result:
    threshold results contribute the iteration counts of their matches and
    their per-query wall-clock, ranking results the iteration counts of
    their entries, and IDCA-backed results the per-iteration statistics of
    the underlying :class:`~repro.core.idca.IDCAResult`.
    """
    iterations = 0
    seconds = 0.0
    for result in results:
        idca_result = getattr(result, "idca_result", None)
        if idca_result is None and hasattr(result, "iterations") and hasattr(
            result, "total_seconds"
        ):
            idca_result = result  # a raw IDCAResult from DominationCountQuery
        if idca_result is not None:
            iterations += idca_result.num_iterations
            seconds += idca_result.total_seconds
            continue
        if hasattr(result, "matches"):
            iterations += sum(
                m.iterations
                for bucket in (result.matches, result.undecided, result.rejected)
                for m in bucket
            )
            seconds += result.elapsed_seconds
        elif hasattr(result, "ranking"):
            iterations += sum(entry.iterations for entry in result.ranking)
            seconds += result.elapsed_seconds
    return iterations, seconds


def _initialise_worker(payload: bytes) -> None:
    """Pool initializer: unpack the engine shipped by the parent process."""
    global _WORKER_ENGINE
    _WORKER_ENGINE = pickle.loads(payload)


def run_chunk_on_engine(
    engine: "QueryEngine", requests: Sequence["QueryRequest"], chunk_index: int = 0
) -> tuple[list, ChunkStats]:
    """Evaluate ``requests`` on ``engine`` and measure them as one chunk.

    Runs ``request.run(engine)`` in chunk order and records the chunk's
    wall-clock plus the deltas of the engine's cache and scheduler counters.
    This is the single measurement path: the serial batch mode calls it in
    the parent process and :func:`_run_chunk` calls it inside each worker,
    so the two execution modes always report comparable :class:`ChunkStats`.
    """
    before = engine.context.stats()
    steps_before = engine.scheduler.steps_taken
    start = time.perf_counter()
    results = [request.run(engine) for request in requests]
    seconds = time.perf_counter() - start
    after = engine.context.stats()
    result_iterations, result_seconds = result_iteration_stats(results)
    stats = ChunkStats(
        chunk=chunk_index,
        size=len(requests),
        seconds=seconds,
        pid=os.getpid(),
        kinds=dict(Counter(request.kind for request in requests)),
        scheduler_steps=engine.scheduler.steps_taken - steps_before,
        result_iterations=result_iterations,
        result_seconds=result_seconds,
        trees=after["trees"],
        pair_bounds_hits=after["pair_bounds_hits"] - before["pair_bounds_hits"],
        pair_bounds_misses=after["pair_bounds_misses"] - before["pair_bounds_misses"],
    )
    return results, stats


def _run_chunk(
    chunk_index: int, requests: Sequence["QueryRequest"]
) -> tuple[int, list, ChunkStats]:
    """Evaluate one chunk on the worker-local engine; returns chunk stats."""
    engine = _WORKER_ENGINE
    if engine is None:  # pragma: no cover - defensive: initializer not run
        raise RuntimeError("worker engine was never initialised")
    results, stats = run_chunk_on_engine(engine, requests, chunk_index)
    return chunk_index, results, stats


def _worker_probe() -> dict:
    """Introspect the worker-local engine (runs inside a worker process).

    Reports the worker's pid and how it obtained its database: on the
    shared-memory path the worker *attached* the dataset (arrays are
    read-only views into the parent's block, named by ``shm_name``); on the
    fallback path it unpickled a private copy.  Used by
    ``QueryService.probe_workers`` and the transport tests.
    """
    from ..uncertain.sharedmem import database_transport

    engine = _WORKER_ENGINE
    if engine is None:  # pragma: no cover - defensive: initializer not run
        raise RuntimeError("worker engine was never initialised")
    database = engine.database
    return {
        "pid": os.getpid(),
        "transport": database_transport(database),
        "shm_name": getattr(database, "_shm_name", None),
        "num_objects": len(database),
    }


# --------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------- #
def _pool_context(start_method: Optional[str]) -> multiprocessing.context.BaseContext:
    """Multiprocessing context for the pool.

    ``fork`` is preferred only on Linux, where it is both safe and by far
    the cheapest; macOS deliberately defaulted to ``spawn`` in CPython 3.8
    because forking a process that has initialised system frameworks is
    unsafe, so every other platform keeps its default start method.
    """
    if start_method is None:
        if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
            start_method = "fork"
        else:
            return multiprocessing.get_context()
    return multiprocessing.get_context(start_method)


class WorkerPool:
    """A process pool bound to one pickled engine payload, reusable across
    batches.

    The pool owns the worker lifecycle the parallel executor relies on: the
    engine is pickled exactly once at construction (with a shared-memory
    export active on the database, the payload is a lightweight handle —
    see ``repro/uncertain/sharedmem.py``), every worker rebuilds it through
    the pool initializer, and the worker-local caches then persist across
    every chunk the pool ever executes.  ``run_process_batch`` creates one
    pool per batch; a :class:`~repro.engine.service.QueryService` keeps one
    alive across its whole lifetime, which is where pool startup and cache
    warm-up amortisation actually pay off.
    """

    def __init__(
        self,
        engine: "QueryEngine",
        workers: int,
        start_method: Optional[str] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers
        self._payload = pickle.dumps(engine)
        self._executor = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_pool_context(start_method),
            initializer=_initialise_worker,
            initargs=(self._payload,),
        )
        self._closed = False

    @property
    def payload_nbytes(self) -> int:
        """Size of the engine payload each worker receives, in bytes."""
        return len(self._payload)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (a closed pool accepts no chunks)."""
        return self._closed

    def submit_chunk(self, chunk_index: int, requests: Sequence["QueryRequest"]):
        """Dispatch one chunk; resolves to ``(chunk_index, results, stats)``."""
        return self._executor.submit(_run_chunk, chunk_index, list(requests))

    def run_chunks(
        self, requests: Sequence["QueryRequest"], chunks: Sequence[Sequence[int]]
    ) -> tuple[list, list[ChunkStats]]:
        """Execute pre-partitioned chunks and reassemble request order.

        Results are placed by original request index, so worker scheduling
        affects only *where* cache warm-up happens, never the results.  If
        any chunk raises, the pending chunks are cancelled and the first
        failure propagates — the pool itself stays usable (worker processes
        survive ordinary exceptions), so a poisoned batch does not cost a
        persistent service its pool.
        """
        futures = [
            self.submit_chunk(index, [requests[i] for i in chunk])
            for index, chunk in enumerate(chunks)
        ]
        results: list = [None] * len(requests)
        chunk_stats: list[ChunkStats] = []
        try:
            for future in futures:
                index, chunk_results, stats = future.result()
                for position, result in zip(chunks[index], chunk_results):
                    results[position] = result
                chunk_stats.append(stats)
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        chunk_stats.sort(key=lambda stats: stats.chunk)
        return results, chunk_stats

    def probe(self) -> dict:
        """Run the worker probe on one worker and return its report."""
        return self._executor.submit(_worker_probe).result()

    def close(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Shut the pool down (idempotent).

        ``wait=True`` blocks until the workers exited — afterwards no child
        processes remain.  ``cancel_pending=True`` additionally cancels
        chunks that have not started (running chunks always finish).
        """
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=wait, cancel_futures=cancel_pending)

    def __enter__(self) -> "WorkerPool":
        """Context-manager entry: the pool itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the pool, waiting for the workers."""
        self.close(wait=True, cancel_pending=exc_type is not None)


def run_process_batch(
    engine: "QueryEngine",
    requests: Sequence["QueryRequest"],
    config: ExecutorConfig,
) -> tuple[list, BatchReport]:
    """Evaluate ``requests`` on a per-batch process pool and merge reports.

    The engine is pickled once and shipped to every worker through the pool
    initializer; chunks are dispatched to whichever worker is free, and the
    chunk results are reassembled into request order by index.  The pool is
    torn down when the batch completes — including on error, so a failing
    chunk can never leak worker processes.  Use a
    :class:`~repro.engine.service.QueryService` to keep the pool (and the
    workers' warmed caches) alive across batches.
    """
    workers = config.effective_workers
    chunks = partition_requests(requests, workers, config.chunk_size, config.chunking)
    start = time.perf_counter()
    with WorkerPool(
        engine, max(1, min(workers, len(chunks))), config.start_method
    ) as pool:
        results, chunk_stats = pool.run_chunks(requests, chunks)
    report = BatchReport(
        mode="process",
        workers=workers,
        chunking=config.chunking,
        chunk_size=config.chunk_size,
        num_requests=len(requests),
        elapsed_seconds=time.perf_counter() - start,
        chunks=tuple(chunk_stats),
        pool="per-batch",
    )
    return results, report
