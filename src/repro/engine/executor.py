"""Parallel batch execution behind :meth:`QueryEngine.evaluate_many`.

Layer contract: everything in this module sits *above* the engine — it never
reaches into refinement state.  A batch of :class:`~repro.engine.requests`
objects is partitioned into chunks, every chunk is evaluated by calling
``request.run(engine)`` exactly as the serial path does, and the per-chunk
outcomes are merged into a :class:`BatchReport`.  Three properties make this
safe to parallelise:

* **requests are independent** — no request reads another request's result;
* **shared caches never change results** — the refinement context only
  removes recomputation (the PR-1 invariant asserted by the seeded
  equivalence suite), so it does not matter which worker's cache serves a
  candidate;
* **budgets are per query** — the scheduler's ``global_iteration_budget``
  applies per :meth:`~RefinementScheduler.refine` call, never across queries,
  so chunk composition cannot starve or favour a query.

Together these give the determinism guarantee documented in
``docs/architecture.md``: ``evaluate_many`` returns bit-identical results for
every ``workers`` / ``chunk_size`` / chunking-strategy combination, including
the serial path.

Worker lifecycle: the parent pickles the engine **once**; every worker
process receives that payload through the pool initializer, unpickles it, and
thereby rebuilds an *empty* worker-local :class:`RefinementContext` (see
``RefinementContext.__reduce__``).  Workers keep their engine across chunks,
so cache warm-up is paid once per worker, not once per chunk — which is why
the ``affinity`` chunking strategy routes requests that share a query object
into the same *chunk*.  Chunks are dispatched to whichever worker is free,
so locality is guaranteed within a chunk and best-effort across chunks; with
``chunk_size=None`` (the default) each affinity bucket is exactly one chunk
and therefore does run on a single worker.

The pool lifecycle itself lives in :class:`WorkerPool`: ``run_process_batch``
creates one pool per batch (and tears it down on every exit path, so errors
cannot leak worker processes), while the long-lived
:class:`~repro.engine.service.QueryService` keeps a single :class:`WorkerPool`
alive across every batch of the process lifetime.  When the database carries
an active shared-memory export (``UncertainDatabase.share_memory``), the
engine payload both paths ship is a lightweight handle and workers *map* the
dataset instead of unpickling a copy.

Fault tolerance: the pool *supervises* its lanes.  A lane whose worker dies
(SIGKILL, OOM, segfault) surfaces as ``BrokenProcessPool`` on the in-flight
future; the pool respawns the lane with the very same initargs — engine
payload, bound-store handle, lane index — and re-drives the chunk with
bounded exponential backoff.  The retry is safe because results are
deterministic and the shared bounds store still holds every column the dead
worker published, so the replay is bit-identical *and* cheaper than the
first attempt.  A ``deadline_epoch`` propagates into the workers (the
refinement scheduler checks it every iteration) and arms a parent-side
wall-clock watchdog that SIGKILLs and respawns a lane wedged past the
deadline plus :attr:`WorkerPool.watchdog_grace`.  Both escalation paths
raise the typed errors of ``engine/errors.py``.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import sys
import threading
import time
from collections import Counter
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Literal, Optional, Sequence, Union

from .errors import DeadlineExceeded, WorkerCrashError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .boundstore import BoundStoreHandle, SharedBoundStore
    from .engine import QueryEngine
    from .requests import QueryRequest

__all__ = [
    "BatchReport",
    "ChunkStats",
    "ExecutorConfig",
    "WorkerPool",
    "adaptive_chunk_size",
    "affine_partition",
    "affinity_lane",
    "partition_requests",
    "result_iteration_stats",
    "run_chunk_on_engine",
    "validate_chunk_size",
]

ExecutionMode = Literal["auto", "serial", "process"]
ChunkingStrategy = Literal["affinity", "contiguous"]

#: ``chunk_size`` value requesting cost-adaptive sizing from batch history.
ADAPTIVE = "adaptive"

#: Cost-adaptive chunking aims for chunks of roughly this much worker time:
#: small enough to keep all workers busy at the tail of a batch, large
#: enough that per-chunk dispatch overhead stays negligible.
ADAPTIVE_TARGET_CHUNK_SECONDS = 0.2

#: How many times a chunk whose worker died is re-driven on the respawned
#: lane before the crash escalates as :class:`WorkerCrashError`.
DEFAULT_MAX_CHUNK_RETRIES = 3

#: Base of the exponential backoff between a respawn and the retry submit
#: (``backoff * 2**attempt`` seconds) — long enough to not hammer a host
#: that is OOM-killing workers, short enough to be invisible per batch.
DEFAULT_RETRY_BACKOFF_SECONDS = 0.05

#: Grace beyond a batch's deadline before the wall-clock watchdog declares
#: a lane wedged and SIGKILLs it.  Covers the benign case of a chunk that
#: noticed the deadline in-worker and is busy raising/unwinding.
DEFAULT_WATCHDOG_GRACE_SECONDS = 2.0

#: Environment variable the fault-injection harness plants its plan in
#: (see ``repro/testing/faults.py``).  Workers check the variable once per
#: chunk; when unset — always, outside chaos tests — the hook is never
#: imported and costs one dict lookup.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


def validate_chunk_size(value) -> None:
    """Reject anything but a positive int, ``None`` or ``"adaptive"``.

    Shared by :class:`ExecutorConfig` construction and the per-call
    overrides of :meth:`~repro.engine.service.QueryService.submit`, so an
    invalid value always fails with this message instead of an opaque type
    error deep in partitioning.
    """
    if value is None:
        return
    if isinstance(value, str):
        if value != ADAPTIVE:
            raise ValueError(
                f"chunk_size must be a positive integer, None or "
                f"{ADAPTIVE!r}, got {value!r}"
            )
        return
    if not isinstance(value, int) or isinstance(value, bool):
        raise ValueError(
            f"chunk_size must be a positive integer, None or "
            f"{ADAPTIVE!r}, got {value!r}"
        )
    if value <= 0:
        raise ValueError(f"chunk_size must be at least 1 when given, got {value}")


@dataclass(frozen=True)
class ExecutorConfig:
    """How :meth:`QueryEngine.evaluate_many` should execute a batch.

    Parameters
    ----------
    mode:
        ``"serial"`` forces today's single-process path (bit-for-bit the
        behaviour of calling ``evaluate_many`` without a config).
        ``"process"`` forces the process pool even for one worker — useful to
        exercise the pickling path.  ``"auto"`` (default) picks the pool when
        the resolved worker count exceeds 1 and the batch has more than one
        request.
    workers:
        Number of worker processes.  ``None`` (default) derives the count
        from :func:`os.cpu_count` — so ``mode="auto"`` actually scales out
        on multi-core machines instead of silently meaning "serial".  An
        explicit value is always authoritative; ``workers=1`` under
        ``"auto"`` is the serial path.  :attr:`effective_workers` is the
        resolved count.
    chunk_size:
        Optional cap on requests per chunk.  ``None`` derives one chunk per
        worker (contiguous) or one chunk per affinity bucket (affinity).
        The string ``"adaptive"`` asks the executor to derive the cap from
        observed per-request cost in :class:`BatchReport` history (no
        history yet behaves like ``None``; under lane-pinned ``"affinity"``
        dispatch in a service it resolves to ``None``, because splitting a
        pinned bucket cannot rebalance work).  Results never depend on this
        value — it only trades scheduling granularity against per-chunk
        overhead.
    chunking:
        ``"affinity"`` (default) groups requests that share a query object
        into the same chunk so a worker's local caches serve the repeats;
        ``"contiguous"`` splits the batch in request order.  Under a
        :class:`~repro.engine.service.QueryService`, affinity chunks are
        additionally *pinned*: the bucket's lane is a stable hash of the
        affinity key, so the same query object lands on the same worker in
        every successive batch (see :func:`affine_partition`).
    start_method:
        Optional :mod:`multiprocessing` start method.  ``None`` prefers
        ``"fork"`` when the platform offers it (cheapest on Linux) and falls
        back to the platform default otherwise.  All methods receive the same
        explicitly pickled engine payload, so cache state is identical —
        empty — regardless of the start method.
    shared_bounds:
        Whether a :class:`~repro.engine.service.QueryService` should back its
        pool with a cross-worker shared bounds store
        (``engine/boundstore.py``).  ``None`` (default) enables it exactly
        when :func:`~repro.engine.boundstore.bound_store_available` says the
        platform supports it; ``True`` requires it (construction raises when
        unavailable); ``False`` forces purely process-local memoisation.
        Ignored by the per-batch pool path, whose caches die with the batch.
    kernel_backend:
        Pair-bounds kernel backend for the batch: ``"numpy"``, ``"numba"``
        or ``None`` (default) to keep the engine's own setting (which itself
        resolves through ``REPRO_KERNEL_BACKEND`` and availability).  The
        override is applied to the engine for the duration of the batch, so
        it reaches the serial path and per-batch worker pools (whose engine
        is pickled per batch).  It cannot reach the already-running workers
        of a persistent :class:`~repro.engine.service.QueryService`, whose
        engine was pickled at service construction — configure the service's
        engine (or the environment variable) instead.  Backends are
        bit-identical, so this knob only ever changes speed.
    """

    mode: ExecutionMode = "auto"
    workers: Optional[int] = None
    chunk_size: Optional[Union[int, str]] = None
    chunking: ChunkingStrategy = "affinity"
    start_method: Optional[str] = None
    shared_bounds: Optional[bool] = None
    kernel_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in ("auto", "serial", "process"):
            raise ValueError(f"unknown execution mode {self.mode!r}")
        if self.chunking not in ("affinity", "contiguous"):
            raise ValueError(f"unknown chunking strategy {self.chunking!r}")
        if self.kernel_backend is not None:
            from ..core.kernels import KERNEL_BACKENDS

            # name check only: availability is resolved where the batch runs
            if self.kernel_backend not in KERNEL_BACKENDS:
                raise ValueError(
                    f"unknown kernel backend {self.kernel_backend!r}; "
                    f"expected one of {KERNEL_BACKENDS}"
                )
        if self.workers is not None:
            if not isinstance(self.workers, int) or isinstance(self.workers, bool):
                raise ValueError(f"workers must be an integer, got {self.workers!r}")
            if self.workers <= 0:
                raise ValueError(
                    f"workers must be at least 1 when given, got {self.workers}"
                )
        validate_chunk_size(self.chunk_size)
        if self.shared_bounds not in (None, True, False):
            raise ValueError("shared_bounds must be True, False or None")

    @property
    def effective_workers(self) -> int:
        """The resolved worker count: explicit ``workers``, else CPU count.

        The adaptive default (``workers=None``) asks :func:`os.cpu_count`
        at resolution time, so the same config object adapts to the machine
        it runs on; explicitly configured counts are never overridden.
        """
        if self.workers is not None:
            return self.workers
        return max(1, os.cpu_count() or 1)

    def resolve_mode(self, num_requests: int) -> str:
        """Concrete execution mode for a batch of ``num_requests``."""
        if self.mode == "serial":
            return "serial"
        if self.mode == "process":
            return "process"
        if self.effective_workers > 1 and num_requests > 1:
            return "process"
        return "serial"


@dataclass(frozen=True)
class ChunkStats:
    """Execution statistics of one chunk, measured inside its worker.

    Cache counters are deltas over the chunk (a worker's context persists
    across the chunks it executes); ``trees`` is the occupancy of the
    worker's tree cache *after* the chunk, i.e. how much decomposition state
    the worker has accumulated so far.  The ``shared_*`` deltas describe the
    cross-worker bounds store (zero when no store is attached):
    ``shared_hits`` columns served from the store instead of the kernel,
    ``shared_misses`` store lookups that fell through to computation, and
    ``shared_publishes`` freshly computed columns this worker published.

    ``kernel_backend`` is the pair-bounds backend the chunk's engine resolves
    to and ``kernel_seconds`` the wall-clock its worker spent inside the CSR
    kernel during the chunk (a delta of the process-local counters in
    ``repro/core/kernels.py``), so batch time can be attributed to the
    kernel layer without reaching into refinement state.

    ``shared_corruptions`` counts store records the worker's validated reads
    rejected during the chunk (bad magic/CRC — someone scribbled on the
    segment), and ``shared_degraded`` is 1 when the worker ran the chunk
    demoted to purely local memoisation (it detected corruption, or never
    managed to attach the store at all).  Both are 0 in healthy operation.

    ``shared_rejected`` counts publishes the store refused (segment or index
    full — the saturation signal the service's reclaim policy watches),
    ``shared_duplicates`` columns this worker computed that another worker
    had already published, ``claim_steals`` in-flight claims this worker
    took over from a dead or lease-expired holder, and ``claim_waits``
    columns obtained by briefly waiting on another worker's claim instead
    of recomputing.
    """

    chunk: int
    size: int
    seconds: float
    pid: int
    kinds: dict[str, int]
    scheduler_steps: int
    result_iterations: int
    result_seconds: float
    trees: int
    pair_bounds_hits: int
    pair_bounds_misses: int
    shared_hits: int = 0
    shared_misses: int = 0
    shared_publishes: int = 0
    kernel_backend: str = ""
    kernel_seconds: float = 0.0
    shared_corruptions: int = 0
    shared_degraded: int = 0
    shared_rejected: int = 0
    shared_duplicates: int = 0
    claim_steals: int = 0
    claim_waits: int = 0


@dataclass(frozen=True)
class BatchReport:
    """Merged execution report of one ``evaluate_many`` call.

    One :class:`ChunkStats` per executed chunk (the serial path reports the
    whole batch as a single chunk); the aggregate properties merge the
    per-worker refinement-iteration and cache counters so a batch can be
    profiled without reaching into worker processes.
    """

    mode: str
    workers: int
    chunking: str
    chunk_size: Optional[int]
    num_requests: int
    elapsed_seconds: float
    chunks: tuple[ChunkStats, ...] = field(default_factory=tuple)
    #: Pool lifetime behind the batch: ``"none"`` (serial), ``"per-batch"``
    #: (a pool created and torn down by this call) or ``"persistent"`` (a
    #: long-lived :class:`~repro.engine.service.QueryService` pool).
    pool: str = "none"
    #: Worker lanes the pool respawned while executing this batch (a crashed
    #: or watchdog-killed worker, replaced with the same initargs).
    worker_respawns: int = 0
    #: Chunks re-driven on a respawned lane after their worker died.  The
    #: retries are bit-identical by determinism + warm shared bounds, so a
    #: non-zero count changes latency only, never results.
    chunk_retries: int = 0
    #: Database snapshot epoch the batch ran against.  Adaptive chunk sizing
    #: ignores cost history recorded at a different epoch: a mutation can
    #: change the workload's per-request cost profile arbitrarily.
    epoch: int = 0

    @property
    def num_chunks(self) -> int:
        """Number of chunks the batch was partitioned into."""
        return len(self.chunks)

    @property
    def worker_pids(self) -> tuple[int, ...]:
        """Distinct worker process ids that executed chunks, sorted.

        Bounded by ``workers + worker_respawns``: a lane contributes one pid
        for its original worker plus one per respawn of that lane.
        """
        return tuple(sorted({stats.pid for stats in self.chunks}))

    @property
    def completed_requests(self) -> int:
        """Requests that actually executed — the sum of chunk sizes.

        Equals :attr:`num_requests` for a successful batch; the distinction
        matters for adaptive chunk sizing, which must divide observed time
        by the work that *ran*, not the work that was submitted (a report
        can legitimately carry zero completed requests, e.g. an empty batch
        or a history record from a failed run).
        """
        return sum(stats.size for stats in self.chunks)

    @property
    def shared_corruptions(self) -> int:
        """Corrupt shared-store records rejected by validated reads, summed."""
        return sum(stats.shared_corruptions for stats in self.chunks)

    @property
    def degraded_workers(self) -> int:
        """Workers that ran chunks demoted to local-only memoisation.

        Counts distinct pids whose chunks report ``shared_degraded`` — the
        graceful-degradation counter the tentpole's failure model promises:
        a worker that cannot trust (or attach) the shared store keeps
        serving batches from its process-local caches instead of failing.
        """
        return len({stats.pid for stats in self.chunks if stats.shared_degraded})

    @property
    def scheduler_steps(self) -> int:
        """Total refinement iterations spent across all workers."""
        return sum(stats.scheduler_steps for stats in self.chunks)

    @property
    def result_iterations(self) -> int:
        """Refinement iterations reported by the results, all workers merged."""
        return sum(stats.result_iterations for stats in self.chunks)

    @property
    def result_seconds(self) -> float:
        """Per-query evaluation seconds summed over all results and workers.

        In process mode this exceeds :attr:`elapsed_seconds` when workers
        overlap — the ratio is the effective parallelism of the batch.
        """
        return sum(stats.result_seconds for stats in self.chunks)

    @property
    def pair_bounds_hits(self) -> int:
        """Pair-bounds cache hits summed over all workers."""
        return sum(stats.pair_bounds_hits for stats in self.chunks)

    @property
    def pair_bounds_misses(self) -> int:
        """Pair-bounds cache misses summed over all workers."""
        return sum(stats.pair_bounds_misses for stats in self.chunks)

    @property
    def shared_hits(self) -> int:
        """Bounds columns served from the cross-worker store, all workers."""
        return sum(stats.shared_hits for stats in self.chunks)

    @property
    def shared_misses(self) -> int:
        """Shared-store lookups that fell through to computation, all workers."""
        return sum(stats.shared_misses for stats in self.chunks)

    @property
    def shared_publishes(self) -> int:
        """Bounds columns published into the cross-worker store, all workers."""
        return sum(stats.shared_publishes for stats in self.chunks)

    @property
    def shared_rejected(self) -> int:
        """Publishes the store rejected (segment or index full), all workers.

        The saturation-pressure signal the service's reclaim policy watches:
        a non-zero count after a batch means some worker wanted to publish
        and could not, so recycling a segment would restore shared caching.
        """
        return sum(stats.shared_rejected for stats in self.chunks)

    @property
    def shared_duplicates(self) -> int:
        """Columns computed twice and deduplicated at publish, all workers."""
        return sum(stats.shared_duplicates for stats in self.chunks)

    @property
    def claim_steals(self) -> int:
        """Claims taken over from dead or lease-expired holders, all workers."""
        return sum(stats.claim_steals for stats in self.chunks)

    @property
    def claim_waits(self) -> int:
        """Columns obtained by waiting on another worker's claim, all workers."""
        return sum(stats.claim_waits for stats in self.chunks)

    @property
    def kernel_seconds(self) -> float:
        """Wall-clock spent inside the CSR pair-bounds kernel, all workers."""
        return sum(stats.kernel_seconds for stats in self.chunks)

    @property
    def kernel_backend(self) -> str:
        """Pair-bounds backend(s) the chunks resolved to.

        A single name in the common case; chunks that resolved differently
        (e.g. numba importable in some workers only) are joined with ``+``.
        Backends are bit-identical, so a mixed batch is still deterministic.
        """
        names = sorted({stats.kernel_backend for stats in self.chunks if stats.kernel_backend})
        return "+".join(names)

    @property
    def shared_hit_rate(self) -> float:
        """Fraction of local-cache misses the shared store absorbed.

        ``shared_hits / (shared_hits + shared_misses)`` — i.e. of the
        lookups that could not be served worker-locally, how many the
        cross-worker store answered.  ``0.0`` when the store was never
        consulted (serial path, store disabled, or every lookup hit the
        local tier).
        """
        consulted = self.shared_hits + self.shared_misses
        if consulted == 0:
            return 0.0
        return self.shared_hits / consulted

    @property
    def worker_cache_summaries(self) -> dict[int, dict[str, int]]:
        """Per-worker cache counters, merged over each worker's chunks.

        Maps worker pid to its summed ``shared_hits`` / ``shared_publishes``
        and local-tier ``local_hits`` / ``local_misses`` deltas — the
        per-worker view behind the aggregate properties, used by the
        shared-store benchmark to show where duplicate work went.
        """
        summaries: dict[int, dict[str, int]] = {}
        for stats in self.chunks:
            entry = summaries.setdefault(
                stats.pid,
                {
                    "chunks": 0,
                    "shared_hits": 0,
                    "shared_publishes": 0,
                    "local_hits": 0,
                    "local_misses": 0,
                },
            )
            entry["chunks"] += 1
            entry["shared_hits"] += stats.shared_hits
            entry["shared_publishes"] += stats.shared_publishes
            entry["local_hits"] += stats.pair_bounds_hits
            entry["local_misses"] += stats.pair_bounds_misses
        return summaries

    @property
    def kinds(self) -> dict[str, int]:
        """Request counts per query kind, merged over all chunks."""
        merged: Counter[str] = Counter()
        for stats in self.chunks:
            merged.update(stats.kinds)
        return dict(merged)

    @property
    def busiest_chunk_seconds(self) -> float:
        """Wall-clock of the slowest chunk — the parallel critical path."""
        return max((stats.seconds for stats in self.chunks), default=0.0)

    def to_dict(self) -> dict:
        """JSON-serialisable summary (used by the parallel benchmark)."""
        return {
            "mode": self.mode,
            "pool": self.pool,
            "workers": self.workers,
            "chunking": self.chunking,
            "chunk_size": self.chunk_size,
            "num_requests": self.num_requests,
            "num_chunks": self.num_chunks,
            "num_worker_pids": len(self.worker_pids),
            "elapsed_seconds": self.elapsed_seconds,
            "busiest_chunk_seconds": self.busiest_chunk_seconds,
            "scheduler_steps": self.scheduler_steps,
            "result_iterations": self.result_iterations,
            "result_seconds": self.result_seconds,
            "pair_bounds_hits": self.pair_bounds_hits,
            "pair_bounds_misses": self.pair_bounds_misses,
            "shared_hits": self.shared_hits,
            "shared_misses": self.shared_misses,
            "shared_publishes": self.shared_publishes,
            "shared_hit_rate": self.shared_hit_rate,
            "shared_corruptions": self.shared_corruptions,
            "shared_rejected": self.shared_rejected,
            "shared_duplicates": self.shared_duplicates,
            "claim_steals": self.claim_steals,
            "claim_waits": self.claim_waits,
            "degraded_workers": self.degraded_workers,
            "worker_respawns": self.worker_respawns,
            "chunk_retries": self.chunk_retries,
            "completed_requests": self.completed_requests,
            "kernel_backend": self.kernel_backend,
            "kernel_seconds": self.kernel_seconds,
            "kinds": self.kinds,
            "chunk_sizes": [stats.size for stats in self.chunks],
            "epoch": self.epoch,
        }

    def __str__(self) -> str:
        """One-line execution summary (used by the benchmarks' progress output)."""
        return (
            f"BatchReport({self.mode}/{self.pool}, workers={self.workers}, "
            f"{self.num_requests} req in {self.num_chunks} chunks, "
            f"{self.elapsed_seconds * 1e3:.1f} ms, "
            f"local {self.pair_bounds_hits}H/{self.pair_bounds_misses}M, "
            f"shared {self.shared_hits}H/{self.shared_misses}M/"
            f"{self.shared_publishes}P)"
        )


# --------------------------------------------------------------------- #
# batch partitioning
# --------------------------------------------------------------------- #
def _split(indices: list[int], chunk_size: Optional[int]) -> list[list[int]]:
    if not indices:
        return []
    if chunk_size is None:
        return [indices]
    return [indices[i : i + chunk_size] for i in range(0, len(indices), chunk_size)]


def partition_requests(
    requests: Sequence["QueryRequest"],
    workers: int,
    chunk_size: Optional[int] = None,
    chunking: ChunkingStrategy = "affinity",
) -> list[list[int]]:
    """Partition a batch into chunks of request indices.

    Every index appears in exactly one chunk, so reassembling chunk results
    by index reproduces request order regardless of which worker ran which
    chunk.  ``"contiguous"`` splits the batch in order (default chunk size:
    one chunk per worker).  ``"affinity"`` buckets requests by
    :meth:`~repro.engine.requests.KNNQuery.affinity_key` — requests that
    share a query object land in the same bucket, largest buckets are
    assigned to the least-loaded of ``workers`` buckets first — so a
    worker's local caches serve the repeated queries of a production stream.
    The assignment is a deterministic function of the batch alone.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError("chunk_size must be at least 1 when given")
    if chunking not in ("affinity", "contiguous"):
        raise ValueError(f"unknown chunking strategy {chunking!r}")
    indices = list(range(len(requests)))
    if not indices:
        return []
    if chunking == "contiguous":
        size = chunk_size or math.ceil(len(indices) / workers)
        return _split(indices, size)

    groups: dict[object, list[int]] = {}
    for index, request in enumerate(requests):
        groups.setdefault(request.affinity_key(), []).append(index)
    # deterministic greedy assignment: largest group first, ties by first
    # appearance, into the currently lightest bucket
    ordered = sorted(groups.values(), key=lambda group: (-len(group), group[0]))
    buckets: list[list[int]] = [[] for _ in range(min(workers, len(ordered)))]
    loads = [0] * len(buckets)
    for group in ordered:
        target = loads.index(min(loads))
        buckets[target].extend(group)
        loads[target] += len(group)
    chunks: list[list[int]] = []
    for bucket in buckets:
        bucket.sort()
        chunks.extend(_split(bucket, chunk_size))
    return chunks


def affinity_lane(key, workers: int) -> int:
    """Worker lane of an affinity key: a stable hash modulo the pool size.

    Stable *within a process*: ``hash`` of the key tuples the requests build
    (small ints and interned tags, plus ``id()`` for ad-hoc objects) does
    not vary between calls, so successive batches submitted to the same
    :class:`~repro.engine.service.QueryService` route a recurring query
    object to the same worker — whose local caches already hold its trees
    and bounds columns.  The lane never influences results, only which
    worker's cache gets warmed.
    """
    return hash(key) % workers


def affine_partition(
    requests: Sequence["QueryRequest"],
    workers: int,
    chunk_size: Optional[int] = None,
) -> tuple[list[list[int]], list[int]]:
    """Partition a batch into chunks pinned to stable worker lanes.

    Like :func:`partition_requests` with ``chunking="affinity"``, but the
    bucket of each affinity key goes to the lane :func:`affinity_lane`
    assigns — a function of the key alone, not of the batch — so follow-up
    batches land on the same workers' warm caches.  Returns ``(chunks,
    lanes)`` with one lane per chunk; every request index appears in exactly
    one chunk, so reassembly by index reproduces request order.

    The trade-off versus the load-balanced assignment: a skewed batch can
    leave lanes idle.  The shared bounds store covers the complementary
    case (a request *moving* workers finds the bounds already published);
    together they bound duplicate work from both directions.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    if chunk_size is not None and chunk_size < 1:
        raise ValueError("chunk_size must be at least 1 when given")
    buckets: dict[int, list[int]] = {}
    for index, request in enumerate(requests):
        buckets.setdefault(affinity_lane(request.affinity_key(), workers), []).append(
            index
        )
    chunks: list[list[int]] = []
    lanes: list[int] = []
    for lane in sorted(buckets):
        for part in _split(buckets[lane], chunk_size):
            chunks.append(part)
            lanes.append(lane)
    return chunks, lanes


def adaptive_chunk_size(
    num_requests: int,
    workers: int,
    seconds_per_request: Optional[float],
    target_chunk_seconds: float = ADAPTIVE_TARGET_CHUNK_SECONDS,
) -> Optional[int]:
    """Chunk-size cap derived from observed per-request cost.

    Sizes chunks to roughly ``target_chunk_seconds`` of worker time each —
    cheap requests batch up (amortising per-chunk dispatch overhead),
    expensive requests split down (so a straggler chunk cannot idle the
    rest of the pool at the tail of a batch).  The cap never exceeds an
    even ``num_requests / workers`` split and never drops below 1; with no
    cost history (``seconds_per_request`` is ``None`` or non-positive) the
    answer is ``None`` — the executor's default chunking.  Chunk size never
    affects results, so adapting it between batches is always safe.
    """
    if seconds_per_request is None or seconds_per_request <= 0:
        return None
    if num_requests <= 0:
        return None
    even = max(1, math.ceil(num_requests / max(1, workers)))
    size = int(round(target_chunk_seconds / seconds_per_request))
    return max(1, min(size if size > 0 else 1, even))


# --------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------- #
# One engine per worker process, installed by the pool initializer.  The
# payload is pickled by the parent exactly once; unpickling rebuilds the
# refinement context with empty worker-local caches (RefinementContext
# reduces to its constructor arguments) and a fresh scheduler accounting
# state (RefinementScheduler reduces to its configuration).
_WORKER_ENGINE: Optional["QueryEngine"] = None

# Lane index this worker serves (shipped as an initarg), used only by the
# fault-injection harness to target a specific lane.
_WORKER_LANE: Optional[int] = None

# Latched when the worker had a bound-store handle but could not attach the
# store (block unlinked, platform refused): the worker runs demoted to
# process-local memoisation and every chunk reports shared_degraded=1.
_WORKER_STORE_DEGRADED = False


def result_iteration_stats(results: Sequence) -> tuple[int, float]:
    """Merge the per-result ``IterationStats``-level counters of a chunk.

    Returns ``(refinement_iterations, seconds)`` summed over every result:
    threshold results contribute the iteration counts of their matches and
    their per-query wall-clock, ranking results the iteration counts of
    their entries, and IDCA-backed results the per-iteration statistics of
    the underlying :class:`~repro.core.idca.IDCAResult`.
    """
    iterations = 0
    seconds = 0.0
    for result in results:
        idca_result = getattr(result, "idca_result", None)
        if idca_result is None and hasattr(result, "iterations") and hasattr(
            result, "total_seconds"
        ):
            idca_result = result  # a raw IDCAResult from DominationCountQuery
        if idca_result is not None:
            iterations += idca_result.num_iterations
            seconds += idca_result.total_seconds
            continue
        if hasattr(result, "matches"):
            iterations += sum(
                m.iterations
                for bucket in (result.matches, result.undecided, result.rejected)
                for m in bucket
            )
            seconds += result.elapsed_seconds
        elif hasattr(result, "ranking"):
            iterations += sum(entry.iterations for entry in result.ranking)
            seconds += result.elapsed_seconds
    return iterations, seconds


def _initialise_worker(
    payload: bytes,
    bound_store_handle: Optional["BoundStoreHandle"] = None,
    lane: Optional[int] = None,
    deltas: tuple = (),
) -> None:
    """Pool initializer: unpack the engine shipped by the parent process.

    With a bound-store handle (shipped as a separate initarg, never inside
    the engine payload), the worker additionally attaches the cross-worker
    shared bounds store and claims a publish segment; any failure to attach
    degrades to process-local memoisation — the graceful-fallback rule of
    ``engine/boundstore.py`` — and latches ``shared_degraded`` so the
    demotion is visible in every :class:`ChunkStats` the worker reports.
    A respawned lane runs this initializer again with identical arguments,
    which is what makes supervision transparent: the fresh worker attaches
    the same store and finds every column its predecessor published.

    ``deltas`` is the pool's accumulated mutation-delta history: the engine
    payload is pickled exactly once at pool construction, so a lane spawned
    (or respawned) after the database mutated replays the deltas in order to
    reach the pool's current snapshot epoch bit-identically.
    """
    global _WORKER_ENGINE, _WORKER_LANE, _WORKER_STORE_DEGRADED
    _WORKER_ENGINE = pickle.loads(payload)
    _WORKER_LANE = lane
    if bound_store_handle is not None:
        from .boundstore import BoundStoreClient

        try:
            client = BoundStoreClient.from_handle(bound_store_handle)
        except Exception:  # block gone or platform refused: local caches only
            client = None
            _WORKER_STORE_DEGRADED = True
        if client is not None:
            _WORKER_ENGINE.context.attach_shared_store(client)
    for delta in deltas:
        _apply_delta_to_engine(_WORKER_ENGINE, delta)


def _apply_delta_to_engine(engine: "QueryEngine", delta) -> int:
    """Replay one mutation delta on an engine; returns the engine's epoch.

    Idempotent by epoch: a delta whose ``new_epoch`` the engine has already
    reached is skipped (a respawned lane replays the full history through the
    initializer before the pool re-submits the delta that triggered the
    respawn).  A delta that does not chain onto the current epoch means the
    histories diverged — that is a bug, not a recoverable condition.
    """
    from ..uncertain.sharedmem import load_delta_mutations

    database = engine.database
    if database.epoch >= delta.new_epoch:
        return database.epoch
    if database.epoch != delta.base_epoch:
        raise RuntimeError(
            f"mutation delta targets epoch {delta.base_epoch} but the worker "
            f"database is at epoch {database.epoch}"
        )
    engine.apply_mutations(load_delta_mutations(delta))
    return engine.database.epoch


def _worker_apply_delta(delta) -> int:
    """Advance the worker-local engine by one delta (runs inside a worker)."""
    engine = _WORKER_ENGINE
    if engine is None:  # pragma: no cover - defensive: initializer not run
        raise RuntimeError("worker engine was never initialised")
    return _apply_delta_to_engine(engine, delta)


def run_chunk_on_engine(
    engine: "QueryEngine",
    requests: Sequence["QueryRequest"],
    chunk_index: int = 0,
    deadline_epoch: Optional[float] = None,
) -> tuple[list, ChunkStats]:
    """Evaluate ``requests`` on ``engine`` and measure them as one chunk.

    Runs ``request.run(engine)`` in chunk order and records the chunk's
    wall-clock plus the deltas of the engine's cache and scheduler counters.
    This is the single measurement path: the serial batch mode calls it in
    the parent process and :func:`_run_chunk` calls it inside each worker,
    so the two execution modes always report comparable :class:`ChunkStats`.

    ``deadline_epoch`` (a ``time.time()`` epoch, comparable across
    processes) makes the chunk deadline-aware: the remaining requests are
    abandoned with :class:`~repro.engine.errors.DeadlineExceeded` once the
    epoch passes.  The scheduler-level per-iteration check (see
    :meth:`RefinementScheduler.refine`) cuts *inside* a request; this one
    cuts between requests, so an expired chunk never starts new work.
    """
    from ..core.kernels import resolve_backend, total_kernel_seconds

    before = engine.context.stats()
    steps_before = engine.scheduler.steps_taken
    kernel_before = total_kernel_seconds()
    start = time.perf_counter()
    results = []
    for request in requests:
        if deadline_epoch is not None and time.time() >= deadline_epoch:
            raise DeadlineExceeded(
                f"chunk {chunk_index} passed its deadline with "
                f"{len(requests) - len(results)} of {len(requests)} requests left"
            )
        results.append(request.run(engine))
    seconds = time.perf_counter() - start
    after = engine.context.stats()
    result_iterations, result_seconds = result_iteration_stats(results)
    stats = ChunkStats(
        chunk=chunk_index,
        size=len(requests),
        seconds=seconds,
        pid=os.getpid(),
        kinds=dict(Counter(request.kind for request in requests)),
        scheduler_steps=engine.scheduler.steps_taken - steps_before,
        result_iterations=result_iterations,
        result_seconds=result_seconds,
        trees=after["trees"],
        pair_bounds_hits=after["pair_bounds_hits"] - before["pair_bounds_hits"],
        pair_bounds_misses=after["pair_bounds_misses"] - before["pair_bounds_misses"],
        shared_hits=after.get("shared_hits", 0) - before.get("shared_hits", 0),
        shared_misses=after.get("shared_misses", 0) - before.get("shared_misses", 0),
        shared_publishes=after.get("shared_publishes", 0)
        - before.get("shared_publishes", 0),
        kernel_backend=resolve_backend(getattr(engine, "kernel_backend", None)),
        kernel_seconds=total_kernel_seconds() - kernel_before,
        shared_corruptions=after.get("shared_corruptions", 0)
        - before.get("shared_corruptions", 0),
        shared_degraded=int(
            _WORKER_STORE_DEGRADED or after.get("shared_degraded", False)
        ),
        shared_rejected=after.get("shared_rejected", 0)
        - before.get("shared_rejected", 0),
        shared_duplicates=after.get("shared_duplicates", 0)
        - before.get("shared_duplicates", 0),
        claim_steals=after.get("claim_steals", 0) - before.get("claim_steals", 0),
        claim_waits=after.get("claim_waits", 0) - before.get("claim_waits", 0),
    )
    return results, stats


def _run_chunk(
    chunk_index: int,
    requests: Sequence["QueryRequest"],
    deadline_epoch: Optional[float] = None,
) -> tuple[int, list, ChunkStats]:
    """Evaluate one chunk on the worker-local engine; returns chunk stats."""
    engine = _WORKER_ENGINE
    if engine is None:  # pragma: no cover - defensive: initializer not run
        raise RuntimeError("worker engine was never initialised")
    if os.environ.get(FAULT_PLAN_ENV):  # chaos tests only; no import otherwise
        from ..testing.faults import chunk_fault_hook

        chunk_fault_hook(_WORKER_LANE)
    engine.scheduler.deadline_epoch = deadline_epoch
    try:
        results, stats = run_chunk_on_engine(
            engine, requests, chunk_index, deadline_epoch=deadline_epoch
        )
    finally:
        engine.scheduler.deadline_epoch = None
    return chunk_index, results, stats


def _worker_probe() -> dict:
    """Introspect the worker-local engine (runs inside a worker process).

    Reports the worker's pid and how it obtained its database: on the
    shared-memory path the worker *attached* the dataset (arrays are
    read-only views into the parent's block, named by ``shm_name``); on the
    fallback path it unpickled a private copy.  Used by
    ``QueryService.probe_workers`` and the transport tests.
    """
    from ..uncertain.sharedmem import database_transport

    engine = _WORKER_ENGINE
    if engine is None:  # pragma: no cover - defensive: initializer not run
        raise RuntimeError("worker engine was never initialised")
    database = engine.database
    return {
        "pid": os.getpid(),
        "transport": database_transport(database),
        "shm_name": getattr(database, "_shm_name", None),
        "num_objects": len(database),
        "epoch": database.epoch,
    }


# --------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------- #
def _pool_context(start_method: Optional[str]) -> multiprocessing.context.BaseContext:
    """Multiprocessing context for the pool.

    ``fork`` is preferred only on Linux, where it is both safe and by far
    the cheapest; macOS deliberately defaulted to ``spawn`` in CPython 3.8
    because forking a process that has initialised system frameworks is
    unsafe, so every other platform keeps its default start method.
    """
    if start_method is None:
        if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
            start_method = "fork"
        else:
            return multiprocessing.get_context()
    return multiprocessing.get_context(start_method)


class WorkerPool:
    """A process pool bound to one pickled engine payload, reusable across
    batches.

    The pool owns the worker lifecycle the parallel executor relies on: the
    engine is pickled exactly once at construction (with a shared-memory
    export active on the database, the payload is a lightweight handle —
    see ``repro/uncertain/sharedmem.py``), every worker rebuilds it through
    the pool initializer, and the worker-local caches then persist across
    every chunk the pool ever executes.  ``run_process_batch`` creates one
    pool per batch; a :class:`~repro.engine.service.QueryService` keeps one
    alive across its whole lifetime, which is where pool startup and cache
    warm-up amortisation actually pay off.

    Internally the pool is a set of single-worker **lanes** (one
    ``ProcessPoolExecutor`` of one process each).  Chunks submitted without
    a lane go to the least-loaded lane; chunks submitted *with* one run on
    exactly that worker — which is what lets the service pin affinity
    buckets of successive batches to the worker whose caches already hold
    their state (:func:`affine_partition`).  Lane choice never influences
    results, only where warm-up happens.

    With ``bound_store`` set, every worker also attaches the store and
    claims a publish segment through the initializer — the handle travels
    next to the engine payload, through the pool's ordinary process-creation
    channel (its lock is inherited under ``fork`` and pickled by the spawn
    machinery otherwise).

    Supervision (``supervised=True``, the default): a lane whose worker
    process dies surfaces ``BrokenProcessPool`` on its futures; the pool
    replaces the lane's executor with a fresh one built from the *same*
    initargs and re-drives the failed chunk there, with exponential backoff
    and at most ``max_chunk_retries`` attempts per chunk before the crash
    escalates as :class:`~repro.engine.errors.WorkerCrashError`.  Chunks
    merely *queued* behind the crash are resubmitted the same way.  Because
    the respawned worker attaches the same bound store, the retry re-reads
    everything the dead worker already published.
    """

    def __init__(
        self,
        engine: "QueryEngine",
        workers: int,
        start_method: Optional[str] = None,
        bound_store: Optional["SharedBoundStore"] = None,
        supervised: bool = True,
        max_chunk_retries: int = DEFAULT_MAX_CHUNK_RETRIES,
        retry_backoff: float = DEFAULT_RETRY_BACKOFF_SECONDS,
        watchdog_grace: float = DEFAULT_WATCHDOG_GRACE_SECONDS,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if max_chunk_retries < 0:
            raise ValueError("max_chunk_retries must be non-negative")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        if watchdog_grace <= 0:
            raise ValueError("watchdog_grace must be positive")
        self.workers = workers
        self.supervised = supervised
        self.max_chunk_retries = max_chunk_retries
        self.retry_backoff = retry_backoff
        self.watchdog_grace = watchdog_grace
        self.respawns = 0
        self._payload = pickle.dumps(engine)
        self._mp_context = _pool_context(start_method)
        self._handle = bound_store.handle if bound_store is not None else None
        # mutation-delta history: replayed by every lane spawned after the
        # payload was pickled, so respawns land on the current snapshot
        self._deltas: list = []
        self._lanes = [self._new_lane(lane) for lane in range(workers)]
        # bumped on every respawn of a lane, so concurrent failures of many
        # futures from the same dead executor trigger exactly one respawn
        self._generation = [0] * workers
        self._respawn_lock = threading.Lock()
        self._pending = [0] * workers
        self._pending_lock = threading.Lock()
        self._closed = False

    def _new_lane(self, lane: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=1,
            mp_context=self._mp_context,
            initializer=_initialise_worker,
            initargs=(self._payload, self._handle, lane, tuple(self._deltas)),
        )

    @property
    def payload_nbytes(self) -> int:
        """Size of the engine payload each worker receives, in bytes."""
        return len(self._payload)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (a closed pool accepts no chunks)."""
        return self._closed

    def _respawn_lane(self, lane: int, generation: int) -> None:
        """Replace a dead lane's executor with a fresh worker (same initargs).

        ``generation`` is the lane generation the caller observed when it
        submitted the failed work: if the lane has already been respawned
        since (several futures of the same dead executor fail together),
        this is a no-op — one crash costs one respawn.
        """
        with self._respawn_lock:
            if self._closed or self._generation[lane] != generation:
                return
            old = self._lanes[lane]
            self._lanes[lane] = self._new_lane(lane)
            self._generation[lane] += 1
            self.respawns += 1
        old.shutdown(wait=False, cancel_futures=True)

    def _kill_lane(self, lane: int) -> None:
        """SIGKILL a lane's worker process (the watchdog's hammer)."""
        executor = self._lanes[lane]
        for process in list(getattr(executor, "_processes", {}).values()):
            try:
                process.kill()
            except Exception:  # pragma: no cover - process already gone
                pass

    def submit_chunk(
        self,
        chunk_index: int,
        requests: Sequence["QueryRequest"],
        lane: Optional[int] = None,
    ):
        """Dispatch one chunk; resolves to ``(chunk_index, results, stats)``.

        ``lane=None`` picks the lane with the fewest outstanding chunks
        (ties to the lowest index); an explicit lane pins the chunk to that
        worker.  Out-of-range lanes wrap modulo the pool size, so lane
        assignments computed for a larger pool degrade gracefully.  On a
        supervised pool, submitting to a lane whose worker has died respawns
        the lane and submits to the fresh worker.
        """
        future, _lane = self._submit_chunk(chunk_index, requests, lane)
        return future

    def _submit_chunk(
        self,
        chunk_index: int,
        requests: Sequence["QueryRequest"],
        lane: Optional[int] = None,
        deadline_epoch: Optional[float] = None,
    ):
        """:meth:`submit_chunk` plus the chosen lane, for the supervisor."""
        with self._pending_lock:
            if lane is None:
                lane = min(range(self.workers), key=lambda i: (self._pending[i], i))
            else:
                lane %= self.workers
            self._pending[lane] += 1
        try:
            future = self._lanes[lane].submit(
                _run_chunk, chunk_index, list(requests), deadline_epoch
            )
        except BrokenExecutor:
            # the lane died between batches: respawn once and retry there
            if not self.supervised:
                self._release_lane(lane)
                raise
            self._respawn_lane(lane, self._generation[lane])
            try:
                future = self._lanes[lane].submit(
                    _run_chunk, chunk_index, list(requests), deadline_epoch
                )
            except BaseException:
                self._release_lane(lane)
                raise
        except BaseException:
            # e.g. a closed lane: undo the reservation so least-loaded
            # selection is not skewed for the pool's remaining lifetime
            self._release_lane(lane)
            raise
        future.add_done_callback(lambda _f, lane=lane: self._release_lane(lane))
        return future, lane

    def _release_lane(self, lane: int) -> None:
        with self._pending_lock:
            self._pending[lane] -= 1

    def run_chunks(
        self,
        requests: Sequence["QueryRequest"],
        chunks: Sequence[Sequence[int]],
        lanes: Optional[Sequence[int]] = None,
        deadline_epoch: Optional[float] = None,
    ) -> tuple[list, list[ChunkStats], dict[str, int]]:
        """Execute pre-partitioned chunks and reassemble request order.

        ``lanes``, when given, pins chunk ``i`` to worker lane ``lanes[i]``
        (the worker-affine dispatch of :func:`affine_partition`).  Without
        lanes, dispatch is *work-conserving*: two chunks are primed per
        lane (so a worker never stalls on the parent's dispatch round-trip)
        and every further chunk goes to whichever lane finishes first —
        approximating a shared-queue pool, up to the one already-queued
        chunk per lane that cannot be stolen once primed.  Results are
        placed by original request index, so worker scheduling affects only
        *where* cache warm-up happens, never the results.

        Failure handling, in escalation order: a chunk whose worker *died*
        (``BrokenProcessPool``) has its lane respawned and is re-driven
        there with exponential backoff, up to ``max_chunk_retries`` times —
        bit-identical by determinism, cheaper than the first attempt thanks
        to the still-warm shared bounds store — before escalating as
        :class:`~repro.engine.errors.WorkerCrashError`.  With a
        ``deadline_epoch``, lanes still holding chunks past the deadline
        plus :attr:`watchdog_grace` are SIGKILLed and respawned, and the
        batch raises :class:`~repro.engine.errors.DeadlineExceeded`.  Any
        *ordinary* chunk exception cancels the pending chunks and
        propagates unchanged — worker processes survive it, so a poisoned
        batch does not cost a persistent service its pool.

        Returns ``(results, chunk_stats, faults)`` where ``faults`` carries
        the batch's ``{"worker_respawns", "chunk_retries"}`` counters.
        """
        results: list = [None] * len(requests)
        chunk_stats: list[ChunkStats] = []
        attempts = [0] * len(chunks)
        retries = 0
        respawns_before = self.respawns
        pending: dict = {}  # in-flight future -> (chunk index, lane, generation)

        def _submit(index: int, lane: Optional[int]) -> None:
            future, chosen = self._submit_chunk(
                index, [requests[i] for i in chunks[index]], lane, deadline_epoch
            )
            pending[future] = (index, chosen, self._generation[chosen])

        if lanes is not None:
            feed = None
            for index in range(len(chunks)):
                _submit(index, lanes[index])
        else:
            order = iter(range(len(chunks)))

            def feed(lane: int) -> None:
                index = next(order, None)
                if index is not None:
                    _submit(index, lane)

            # depth-2 pipeline per lane: one chunk running, one queued, so a
            # worker never stalls on the parent's dispatch round-trip
            for _ in range(2):
                for lane in range(self.workers):
                    feed(lane)

        try:
            while pending:
                timeout = None
                if deadline_epoch is not None:
                    timeout = max(
                        0.0, deadline_epoch + self.watchdog_grace - time.time()
                    )
                done, _ = wait(
                    set(pending), timeout=timeout, return_when=FIRST_COMPLETED
                )
                if not done:
                    # watchdog: nothing finished by deadline + grace — the
                    # lane(s) are wedged beyond what in-worker deadline
                    # checks can reach.  Kill, respawn, fail the batch.
                    wedged = sorted({entry[1] for entry in pending.values()})
                    for lane in wedged:
                        generation = self._generation[lane]
                        self._kill_lane(lane)
                        self._respawn_lane(lane, generation)
                    raise DeadlineExceeded(
                        f"deadline passed {self.watchdog_grace:.1f}s ago; "
                        f"terminated and respawned wedged worker lane(s) {wedged}"
                    )
                for future in done:
                    index, lane, generation = pending.pop(future)
                    try:
                        _, chunk_results, stats = future.result()
                    except BrokenExecutor as error:
                        # the lane's worker died under this chunk (or under
                        # the chunk queued ahead of it) — respawn and retry
                        self._respawn_lane(lane, generation)
                        if not self.supervised or attempts[index] >= self.max_chunk_retries:
                            raise WorkerCrashError(
                                f"worker lane {lane} died running chunk {index} "
                                f"(attempt {attempts[index] + 1})"
                            ) from error
                        if deadline_epoch is not None and time.time() >= deadline_epoch:
                            raise DeadlineExceeded(
                                f"worker lane {lane} died running chunk {index} "
                                "and the batch deadline leaves no time to retry"
                            ) from error
                        time.sleep(self.retry_backoff * (2 ** attempts[index]))
                        attempts[index] += 1
                        retries += 1
                        _submit(index, lane)
                        continue
                    for position, result in zip(chunks[index], chunk_results):
                        results[position] = result
                    chunk_stats.append(stats)
                    if feed is not None:
                        feed(lane)
        except BaseException:
            for future in pending:
                future.cancel()
            raise
        chunk_stats.sort(key=lambda stats: stats.chunk)
        faults = {
            "worker_respawns": self.respawns - respawns_before,
            "chunk_retries": retries,
        }
        return results, chunk_stats, faults

    def probe(self, lane: int = 0) -> dict:
        """Run the worker probe on one worker lane and return its report."""
        return self._lanes[lane % self.workers].submit(_worker_probe).result()

    def apply_delta(self, delta) -> None:
        """Advance every worker lane to the delta's snapshot epoch.

        Appends the delta to the pool's replay history first, so a lane that
        dies mid-apply (or any time later) is respawned straight onto the new
        epoch — the initializer replays the history and the re-submitted
        apply becomes an epoch-checked no-op.  Blocks until every lane
        confirmed the new epoch; callers (the service dispatcher) run this
        between batches, which is what makes it a barrier.
        """
        if self._closed:
            raise RuntimeError("the worker pool is closed")
        self._deltas.append(delta)
        pending = {
            lane: (self._lanes[lane], self._generation[lane])
            for lane in range(self.workers)
        }
        attempts = 0
        while pending:
            futures = {}
            for lane, (executor, generation) in pending.items():
                try:
                    futures[lane] = (executor.submit(_worker_apply_delta, delta), generation)
                except BrokenExecutor:
                    futures[lane] = (None, generation)
            retry: dict[int, tuple] = {}
            for lane, (future, generation) in futures.items():
                try:
                    if future is None:
                        raise BrokenExecutor("lane died before the delta apply")
                    future.result()
                except BrokenExecutor:
                    if not self.supervised or attempts >= self.max_chunk_retries:
                        raise
                    self._respawn_lane(lane, generation)
                    retry[lane] = (self._lanes[lane], self._generation[lane])
            if retry:
                attempts += 1
            pending = retry

    def close(self, wait: bool = True, cancel_pending: bool = False) -> None:
        """Shut the pool down (idempotent).

        ``wait=True`` blocks until the workers exited — afterwards no child
        processes remain.  ``cancel_pending=True`` additionally cancels
        chunks that have not started (running chunks always finish).
        """
        if self._closed:
            return
        self._closed = True
        for lane in self._lanes:
            lane.shutdown(wait=wait, cancel_futures=cancel_pending)

    def __enter__(self) -> "WorkerPool":
        """Context-manager entry: the pool itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the pool, waiting for the workers."""
        self.close(wait=True, cancel_pending=exc_type is not None)


def run_process_batch(
    engine: "QueryEngine",
    requests: Sequence["QueryRequest"],
    config: ExecutorConfig,
) -> tuple[list, BatchReport]:
    """Evaluate ``requests`` on a per-batch process pool and merge reports.

    The engine is pickled once and shipped to every worker through the pool
    initializer; chunks are dispatched to whichever worker is free, and the
    chunk results are reassembled into request order by index.  The pool is
    torn down when the batch completes — including on error, so a failing
    chunk can never leak worker processes.  Use a
    :class:`~repro.engine.service.QueryService` to keep the pool (and the
    workers' warmed caches) alive across batches.
    """
    workers = config.effective_workers
    chunk_size = config.chunk_size
    if chunk_size == ADAPTIVE:
        # one-report history: the engine's previous batch, when there was one.
        # Divide by the requests that actually *ran* — a history report with
        # zero completed requests (empty or failed batch) carries no cost
        # signal and falls through to default sizing.
        previous = engine.last_batch_report
        per_request = None
        if (
            previous is not None
            and previous.completed_requests > 0
            and previous.epoch == engine.database.epoch
        ):
            # cost history from a different snapshot epoch is discarded: a
            # mutation can change the per-request cost profile arbitrarily
            per_request = (
                sum(stats.seconds for stats in previous.chunks)
                / previous.completed_requests
            )
        chunk_size = adaptive_chunk_size(len(requests), workers, per_request)
    chunks = partition_requests(requests, workers, chunk_size, config.chunking)
    start = time.perf_counter()
    # the report records the *resolved* chunk size (int or None), matching
    # what the service path records for the same sentinel
    with WorkerPool(
        engine, max(1, min(workers, len(chunks))), config.start_method
    ) as pool:
        results, chunk_stats, faults = pool.run_chunks(requests, chunks)
    report = BatchReport(
        mode="process",
        workers=workers,
        chunking=config.chunking,
        chunk_size=chunk_size,
        num_requests=len(requests),
        elapsed_seconds=time.perf_counter() - start,
        chunks=tuple(chunk_stats),
        pool="per-batch",
        worker_respawns=faults["worker_respawns"],
        chunk_retries=faults["chunk_retries"],
        epoch=engine.database.epoch,
    )
    return results, report
