"""Global refinement scheduling across the candidates of a query.

The seed implementation refined candidates in arrival order, exhausting each
candidate's iteration budget before touching the next.  The paper's guiding
principle (Sections IV-E/V) is the opposite: refinement effort should go
where it still decides predicates.  :class:`RefinementScheduler` therefore
drives the incremental :class:`~repro.core.idca.IDCARun` objects of all
still-undecided candidates from a priority queue keyed by their current
bound uncertainty — the candidate whose predicate bounds are widest receives
the next iteration.

Because every candidate's refinement is independent, the schedule changes
only *when* work happens, never its outcome: without a global budget the
per-candidate results are identical to arrival-order evaluation.  With
``global_iteration_budget`` set, the scheduler degrades gracefully — the
budget is spent on the most uncertain candidates first, which is exactly the
behaviour the paper's iterative scheme is after.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Callable, Optional, Sequence

from ..core import IDCARun
from .errors import DeadlineExceeded

__all__ = ["RefinementScheduler"]

PriorityFn = Callable[[IDCARun], float]


class RefinementScheduler:
    """Uncertainty-prioritised round-robin over incremental IDCA runs.

    Parameters
    ----------
    global_iteration_budget:
        Optional cap on the *total* number of refinement iterations spent
        across all runs of one :meth:`refine` call.  ``None`` (the default)
        lets every run exhaust its own per-candidate budget, which keeps
        results identical to independent evaluation.

    Notes
    -----
    The budget is scoped to a single :meth:`refine` call — one query — never
    accumulated across queries.  This per-query scoping is what lets the
    parallel batch executor split a batch across workers without changing
    results: a query receives the same refinement effort no matter which
    chunk it lands in.  :attr:`steps_taken` accumulates the iterations this
    scheduler instance has driven (all :meth:`refine` calls combined) for the
    batch report; pickling a scheduler ships only its configuration, so every
    worker's accounting starts at zero and stays chunk-local.
    """

    def __init__(self, global_iteration_budget: Optional[int] = None):
        if global_iteration_budget is not None and global_iteration_budget < 0:
            raise ValueError("global_iteration_budget must be non-negative")
        self.global_iteration_budget = global_iteration_budget
        self.steps_taken = 0
        #: Optional wall-clock cut-off (``time.time()`` epoch) installed by
        #: the executor for the duration of a deadline-carrying chunk: the
        #: refinement loop checks it every iteration and raises
        #: :class:`~repro.engine.errors.DeadlineExceeded` once passed, which
        #: is what turns a would-be-hung refinement into a clean batch
        #: failure.  ``None`` (the default, and the value every pickled
        #: scheduler starts with) disables the check.
        self.deadline_epoch: Optional[float] = None

    def __reduce__(self):
        """Pickle as configuration only — accounting never crosses processes."""
        return (type(self), (self.global_iteration_budget,))

    def refine(
        self,
        runs: Sequence[IDCARun],
        priority: PriorityFn,
        on_finished: Optional[Callable[[IDCARun], None]] = None,
    ) -> int:
        """Drive ``runs`` to completion in priority order; returns total steps.

        ``priority`` maps a run to a non-negative urgency (larger = refined
        first) and is re-evaluated after every step, so a candidate whose
        bounds tighten quickly falls down the queue while stubborn candidates
        keep receiving iterations until they decide or exhaust their budget.
        ``on_finished`` is invoked each time a stepped run finishes — callers
        use it to record the order in which evaluations concluded.

        With :attr:`deadline_epoch` set, every iteration first checks the
        wall clock and raises
        :class:`~repro.engine.errors.DeadlineExceeded` once the epoch has
        passed (steps taken so far are still accounted).  Unlike the budget
        cut-off — which degrades results gracefully and deterministically —
        the deadline aborts the query: partial results under a wall-clock
        race would not be reproducible, so none are returned.
        """
        counter = itertools.count()
        heap: list[tuple[float, int, IDCARun]] = []
        for run in runs:
            if not run.finished:
                heapq.heappush(heap, (-priority(run), next(counter), run))
        steps = 0
        budget = self.global_iteration_budget
        while heap:
            if budget is not None and steps >= budget:
                break
            if self.deadline_epoch is not None and time.time() >= self.deadline_epoch:
                self.steps_taken += steps
                raise DeadlineExceeded(
                    f"refinement passed its deadline after {steps} iterations"
                )
            _, _, run = heapq.heappop(heap)
            if run.finished:
                continue
            run.step()
            steps += 1
            if run.finished:
                if on_finished is not None:
                    on_finished(run)
            else:
                heapq.heappush(heap, (-priority(run), next(counter), run))
        self.steps_taken += steps
        return steps
