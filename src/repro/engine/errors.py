"""Error types of the fault-tolerant service tier.

These exceptions form the service's failure contract, documented in the
"Failure model" section of ``docs/architecture.md``: every way a batch can
fail *other than the query itself raising* maps onto exactly one of the
types below, so callers can tell overload (back off and retry elsewhere)
from a missed deadline (the request budget was too small) from an exhausted
worker-crash retry (something is structurally wrong with the host).

All of them subclass :class:`ServiceError`, which itself subclasses
``RuntimeError`` — pre-existing callers that caught ``RuntimeError`` around
``submit()`` keep working unchanged.  :class:`DeadlineExceeded` additionally
subclasses ``TimeoutError`` so generic timeout handling catches it too.

The module deliberately imports nothing from the rest of the package: it is
shared by ``engine/scheduler.py`` (deadline checks inside the refinement
loop), ``engine/executor.py`` (worker supervision) and ``engine/service.py``
(admission control) without creating an import cycle, and the exceptions
pickle cleanly across the process boundary when a worker raises one.
"""

from __future__ import annotations

__all__ = [
    "DeadlineExceeded",
    "ServiceClosedError",
    "ServiceError",
    "ServiceOverloadedError",
    "WorkerCrashError",
]


class ServiceError(RuntimeError):
    """Base class of every service-tier failure.

    Subclasses ``RuntimeError`` so code written against the pre-fault-model
    service (which raised bare ``RuntimeError``) keeps catching these.
    """


class ServiceClosedError(ServiceError):
    """Raised by ``submit()`` after ``close()``, and set on batches a
    non-waiting ``close()`` abandoned before they ran.

    The closed-check and the enqueue happen atomically under the service's
    submit lock, so a caller either gets this error or a future the
    dispatcher is guaranteed to resolve — never a stranded handle.
    """


class ServiceOverloadedError(ServiceError):
    """Raised by ``submit()`` when admission control rejects a batch.

    Signals backpressure: the service's pending work already sits at the
    configured ``max_pending_batches`` / ``max_pending_requests`` bound, and
    queueing more would only grow latency unboundedly.  In-flight batches
    are unaffected; the caller should retry later or shed load upstream.
    """


class DeadlineExceeded(ServiceError, TimeoutError):
    """Raised when a batch ran past its ``submit(deadline=...)`` budget.

    Three layers enforce the deadline, cheapest first: the dispatcher fails
    a batch whose deadline expired while it was still queued; inside each
    worker the refinement scheduler checks the deadline every iteration and
    between requests, so an over-deadline chunk raises cleanly instead of
    hanging; and a hard wall-clock watchdog in the pool terminates and
    respawns a lane that stays wedged past the deadline plus a grace period
    (e.g. stuck in a C extension where the scheduler check cannot run).
    """


class WorkerCrashError(ServiceError):
    """Raised when a crashed worker lane exhausted its chunk retries.

    A single crash never surfaces as this error: the pool respawns the lane
    and re-drives the in-flight chunk (results are deterministic, and the
    shared bounds store still holds everything the dead worker published,
    so the retry is bit-identical and cheaper than the first attempt).
    Only a chunk that keeps killing its worker past the retry budget —
    i.e. a structural problem, not a transient one — escalates to this.
    """
