"""Shared refinement state reused across candidates and across queries.

A single query evaluates many candidates against the same query object; a
batch evaluates many queries against the same database.  Most of the work
IDCA performs per candidate is positionally identical across those runs:

* the decomposition kd-trees of the query object and of the database objects
  (influence objects recur between candidates and between queries), and
* the domination-bound matrix columns produced by the batched pair-bounds
  kernel: for one candidate at one depth against one (target grid, reference
  grid), the ``(num_pairs,)`` lower/upper bound vectors over *all* partition
  pairs are deterministic functions of the key, so an entry is stored —
  and served — as a whole array, and a cache hit removes the candidate's
  entire column from the next kernel call.

:class:`RefinementContext` owns both memos and hands out IDCA instances wired
to them, so every run launched through the same context — including every
query of a batch — amortises the decomposition and bound computations.

Since PR 5 the pair-bounds memo is **tiered**: worker processes attach a
:class:`~repro.engine.boundstore.BoundStoreClient` over the service's shared
bounds store, and :class:`TieredPairBoundsCache` reads through to it on local
misses and writes freshly computed columns back.  Shared entries are
deterministic functions of their (process-independent) key, so the tier only
ever removes recomputation — results are bit-identical with or without it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core import IDCA
from ..core.idca import _PAIR_BOUNDS_CACHE_MAX, _TREE_CACHE_MAX, _evict_oldest_tenth
from ..geometry import DominationCriterion
from ..uncertain import DecompositionTree, UncertainDatabase, UncertainObject
from ..uncertain.decomposition import AxisPolicy
from .boundstore import encode_stable_key, stable_object_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .boundstore import BoundStoreClient

__all__ = ["CacheStats", "RefinementContext", "TieredPairBoundsCache"]

#: Bound on the encoded-key memo; on overflow it is simply reset (entries
#: rebuild on use), matching the churn bound of the pair-bounds cache.
_ENCODED_KEYS_MAX = _PAIR_BOUNDS_CACHE_MAX


class CacheStats(dict):
    """A dict that counts lookup hits and misses (for benchmark reporting).

    Since the kernel refactor one entry is a whole bounds-matrix column, so a
    single hit now stands for ``num_pairs`` scalar bounds served at once.
    """

    def __init__(self) -> None:
        super().__init__()
        self.hits = 0
        self.misses = 0

    def get(self, key, default=None):
        """Dict lookup that tallies the hit/miss counters as a side effect."""
        value = super().get(key, default)
        if value is default:
            self.misses += 1
        else:
            self.hits += 1
        return value


class TieredPairBoundsCache(CacheStats):
    """Pair-bounds memo with an optional shared cross-worker tier.

    Tier 1 is the ordinary process-local dict (``hits``/``misses`` keep
    their PR-2 meaning: local-tier outcomes).  When the owning context has a
    shared store attached, a local miss falls through to the store
    (``shared_hits``/``shared_misses``), and every locally inserted column
    is published back (``shared_publishes``).  Shared hits are installed
    into the local dict so follow-up lookups stay in tier 1.

    The shared tier can only serve a column that some worker deterministically
    computed for the *same* stable key, so consulting it never changes
    results — the fallback (store missing, full, or key untranslatable)
    is always "compute locally", exactly the pre-store behaviour.
    """

    def __init__(self, context: "RefinementContext") -> None:
        super().__init__()
        self._context = context
        self.shared_hits = 0
        self.shared_misses = 0
        self.shared_publishes = 0
        self.claim_waits = 0

    def get(self, key, default=None):
        """Tiered lookup: local dict first, then the shared store.

        On a shared miss by a *writable* client the store's claim protocol
        runs: the client claims the key (announcing it will compute the
        column) — unless another live worker already holds the claim, in
        which case this worker briefly waits for that worker's publish
        instead of duplicating the kernel work.  A timed-out wait falls
        through to local compute, so claims never stall a batch; the claim
        itself is released when :meth:`__setitem__` publishes.
        """
        value = dict.get(self, key, default)
        if value is not default:
            self.hits += 1
            return value
        store = self._context.shared_store
        if store is not None and not store.demoted:
            encoded = self._context.stable_pair_key(key)
            if encoded is not None:
                entry = store.get(encoded)
                if entry is None and store.claims_enabled and store.writable:
                    if store.claim(encoded) == "held":
                        entry = store.wait_for(encoded)
                        if entry is not None:
                            self.claim_waits += 1
                if entry is not None:
                    self.shared_hits += 1
                    # install locally so hot keys stay in tier 1, evicting
                    # like the compute path does — never skipping, which
                    # would re-fetch hot columns from shm forever
                    _evict_oldest_tenth(self, _PAIR_BOUNDS_CACHE_MAX)
                    dict.__setitem__(self, key, entry)
                    return entry
                self.shared_misses += 1
        self.misses += 1
        return default

    def __setitem__(self, key, value) -> None:
        """Insert locally, publish to the shared store, release any claim."""
        dict.__setitem__(self, key, value)
        store = self._context.shared_store
        if store is None:
            return
        encoded = None
        if store.writable:
            encoded = self._context.stable_pair_key(key)
            if encoded is not None and store.put(encoded, value[0], value[1]):
                self.shared_publishes += 1
        if store.claims_enabled and not store.demoted:
            # idempotent: only an entry carrying this pid is cleared, so
            # releasing keys that were never claimed (local hits that
            # re-enter, failed publishes) is safe
            if encoded is None:
                encoded = self._context.stable_pair_key(key)
            if encoded is not None:
                store.release(encoded)

    def reset_counters(self) -> None:
        """Zero all hit/miss/publish counters (cache contents untouched)."""
        self.hits = 0
        self.misses = 0
        self.shared_hits = 0
        self.shared_misses = 0
        self.shared_publishes = 0
        self.claim_waits = 0


class _RegisteringTreeCache(dict):
    """Tree cache that reports every admitted tree to its context.

    The context needs a ``tree token -> stable object key`` translation to
    derive shared-store keys, and trees enter the cache from two places
    (:meth:`RefinementContext.tree_for` and ``IDCA._tree_for``, which share
    this mapping).  Hooking ``__setitem__``/``__delitem__`` catches both
    without the IDCA layer knowing the store exists.
    """

    def __init__(self, context: "RefinementContext") -> None:
        super().__init__()
        self._context = context

    def __setitem__(self, key, tree) -> None:
        """Admit a tree and register its token translation."""
        super().__setitem__(key, tree)
        self._context._register_tree(tree)

    def __delitem__(self, key) -> None:
        """Evict a tree and drop its token translation."""
        tree = super().pop(key)
        self._context._token_keys.pop(tree.token, None)


class RefinementContext:
    """Decomposition and domination-bound memos shared between IDCA runs.

    Parameters
    ----------
    database:
        The uncertain database all runs operate on.  A context must never be
        shared between engines over different databases — the caches key
        influence objects by their database position.
    axis_policy:
        Split-axis policy used for every decomposition tree the context
        creates (and for the IDCA instances it hands out), so cached trees
        are valid for every consumer.
    """

    def __init__(
        self,
        database: UncertainDatabase,
        axis_policy: AxisPolicy = "round_robin",
    ):
        self.database = database
        self.axis_policy: AxisPolicy = axis_policy
        self.tree_cache: dict[int, DecompositionTree] = _RegisteringTreeCache(self)
        self.pair_bounds_cache = TieredPairBoundsCache(self)
        #: Optional :class:`~repro.engine.boundstore.BoundStoreClient` — the
        #: cross-worker shared tier.  ``None`` means purely local memoisation.
        self.shared_store: Optional["BoundStoreClient"] = None
        self._token_keys: dict[int, tuple] = {}
        self._encoded_keys: dict[tuple, Optional[bytes]] = {}
        self._idca_instances: dict[tuple, IDCA] = {}

    def __reduce__(self):
        """Pickle as (database, axis_policy) — caches rebuild empty.

        Cached state must never cross a process boundary: decomposition trees
        are keyed by object identity (meaningless in another process) and
        pair-bounds columns are keyed by process-unique tree tokens.  Reducing
        to the constructor arguments makes a context cheap to ship to worker
        processes — each worker rebuilds its own empty, *local* caches, which
        is exactly the worker lifecycle the parallel batch executor relies on
        (see ``engine/executor.py``).  Memoised bounds are deterministic, so
        rebuilding them locally never changes results.

        The shared-store client is likewise never shipped: workers attach
        their own through the pool initializer (the handle travels as an
        initarg, not inside the engine payload).  The database itself decides
        its own transport: with an active shared-memory export
        (``UncertainDatabase.share_memory``) it pickles to a lightweight
        handle that workers *attach* — so shipping a context costs kilobytes
        regardless of database size — and to a full copy otherwise.
        """
        return (type(self), (self.database, self.axis_policy))

    # ------------------------------------------------------------------ #
    # shared resources
    # ------------------------------------------------------------------ #
    def tree_for(self, obj: UncertainObject) -> DecompositionTree:
        """Decomposition tree of ``obj``, cached by object identity.

        Bounded like the IDCA-side cache: a context serving a long stream of
        transient query objects must not grow without limit.  Evicted trees
        are simply rebuilt on next use; memoised pair bounds stay safe
        because they key trees by process-unique token, not ``id()``.
        """
        key = id(obj)
        tree = self.tree_cache.get(key)
        if tree is None:
            _evict_oldest_tenth(self.tree_cache, _TREE_CACHE_MAX)
            tree = DecompositionTree(obj, axis_policy=self.axis_policy)
            self.tree_cache[key] = tree
        return tree

    def idca_for(
        self,
        p: float = 2.0,
        criterion: DominationCriterion = "optimal",
        k_cap: Optional[int] = None,
        **idca_kwargs,
    ) -> IDCA:
        """An IDCA instance wired to the shared caches, memoised by parameters.

        Instances only differ in scalar configuration; the expensive state
        (trees, pair bounds) lives in the context, so handing the same
        instance to every query of a batch is both safe and what makes the
        batch fast.
        """
        key = (p, criterion, k_cap, tuple(sorted(idca_kwargs.items())))
        idca = self._idca_instances.get(key)
        if idca is None:
            idca = IDCA(
                self.database,
                p=p,
                criterion=criterion,
                axis_policy=self.axis_policy,
                k_cap=k_cap,
                tree_cache=self.tree_cache,
                pair_bounds_cache=self.pair_bounds_cache,
                **idca_kwargs,
            )
            self._idca_instances[key] = idca
        return idca

    # ------------------------------------------------------------------ #
    # shared bounds store (cross-worker tier)
    # ------------------------------------------------------------------ #
    def attach_shared_store(self, client: "BoundStoreClient") -> None:
        """Install a shared bounds store as the cache's second tier.

        Called by the worker-pool initializer after the engine is unpickled
        (the handle travels next to the engine payload, never inside it).
        Trees created before attachment are registered retroactively so
        their tokens translate too.
        """
        self.shared_store = client
        self._encoded_keys.clear()  # drop "stay local" verdicts cached pre-attach
        for tree in self.tree_cache.values():
            self._register_tree(tree)

    def _register_tree(self, tree: DecompositionTree) -> None:
        """Record the stable identity behind a tree's process-unique token."""
        if self.shared_store is None:
            return
        if tree.token not in self._token_keys:
            self._token_keys[tree.token] = stable_object_key(self.database, tree.obj)

    def stable_pair_key(self, key: tuple) -> Optional[bytes]:
        """Translate a process-local memo key into encoded shared-store bytes.

        The local key is ``((candidate token, depth), (target token, depth),
        (reference token, depth), (p, criterion))``; each token is swapped
        for the stable identity registered at tree creation.  Returns
        ``None`` — "stay local" — when any token is unknown, which can only
        happen for trees created outside this context's caches.

        The translation is memoised per local key (bounded), because the
        tiered cache encodes each cold key twice — once on the lookup miss
        and once when publishing the freshly computed column.
        """
        if key in self._encoded_keys:
            return self._encoded_keys[key]
        encoded = self._encode_pair_key(key)
        if len(self._encoded_keys) >= _ENCODED_KEYS_MAX:
            self._encoded_keys.clear()  # cheap reset; entries rebuild on use
        self._encoded_keys[key] = encoded
        return encoded

    def _encode_pair_key(self, key: tuple) -> Optional[bytes]:
        """Uncached translation behind :meth:`stable_pair_key`."""
        try:
            (candidate, target, reference, config) = key
        except (TypeError, ValueError):  # pragma: no cover - foreign key shape
            return None
        stable = []
        for token, depth in (candidate, target, reference):
            identity = self._token_keys.get(token)
            if identity is None:
                return None
            stable.append((identity, depth))
        return encode_stable_key(("pb1", self.axis_policy, *stable, config))

    # ------------------------------------------------------------------ #
    # snapshot advancement
    # ------------------------------------------------------------------ #
    def advance(
        self,
        database: UncertainDatabase,
        removed_objects: "tuple[UncertainObject, ...] | list[UncertainObject]" = (),
    ) -> None:
        """Move the context to a new database snapshot, evicting by generation.

        ``removed_objects`` are the object instances the mutation replaced or
        deleted (every other object is shared between the snapshots).  Only
        their state is dropped: the decomposition trees cached for them and
        the local pair-bounds columns whose key references those trees'
        tokens.  Everything else stays warm — which is the whole point of the
        snapshot model; a wholesale :meth:`clear` would throw away every
        column the shared store could keep serving.

        Staleness is structurally impossible on both tiers: local pair keys
        use process-unique tree tokens (a replaced object's new tree gets a
        new token), and shared keys fold the per-object generation (a
        replaced object gets a fresh generation), so a lookup for the new
        content can never land on a column computed for the old content.
        The evictions here reclaim memory and unregister dead token
        translations; the token translations of surviving trees are
        recomputed against the new snapshot because a delete may have
        shifted member positions.
        """
        self.database = database
        dead_tokens: set[int] = set()
        for obj in removed_objects:
            tree = dict.get(self.tree_cache, id(obj))
            if tree is not None:
                dead_tokens.add(tree.token)
                del self.tree_cache[id(obj)]
        if dead_tokens:
            cache = self.pair_bounds_cache
            stale = []
            for key in cache:
                try:
                    (candidate, target, reference, _config) = key
                    parts = (candidate[0], target[0], reference[0])
                except (TypeError, ValueError, IndexError):  # pragma: no cover
                    continue
                if any(token in dead_tokens for token in parts):
                    stale.append(key)
            for key in stale:
                dict.__delitem__(cache, key)
        self._token_keys.clear()
        self._encoded_keys.clear()
        if self.shared_store is not None:
            for tree in self.tree_cache.values():
                self._register_tree(tree)
        for idca in self._idca_instances.values():
            idca.database = database

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Cache occupancy and hit counters (used by the batch reports).

        ``pair_bounds_hits``/``pair_bounds_misses`` describe the local tier;
        the ``shared_*`` counters describe the cross-worker tier (all zero
        while no store is attached).  ``shared_corruptions`` counts store
        records the client's validated reads rejected, and
        ``shared_degraded`` says whether the client has demoted itself to
        local-only memoisation as a result — the graceful-degradation
        signal the chunk stats surface per worker.
        """
        cache = self.pair_bounds_cache
        store = self.shared_store
        return {
            "trees": len(self.tree_cache),
            "pair_bounds": len(cache),
            "pair_bounds_hits": cache.hits,
            "pair_bounds_misses": cache.misses,
            "shared_hits": cache.shared_hits,
            "shared_misses": cache.shared_misses,
            "shared_publishes": cache.shared_publishes,
            "shared_store": store is not None,
            "shared_corruptions": store.corruptions if store is not None else 0,
            "shared_degraded": bool(store is not None and store.demoted),
            "shared_rejected": store.rejected if store is not None else 0,
            "shared_duplicates": store.duplicates if store is not None else 0,
            "claim_steals": store.claim_steals if store is not None else 0,
            "claim_waits": cache.claim_waits,
        }

    def clear(self) -> None:
        """Drop all cached state (keeps the handed-out IDCA instances valid)."""
        self.tree_cache.clear()
        self._token_keys.clear()
        self._encoded_keys.clear()
        self.pair_bounds_cache.clear()
        self.pair_bounds_cache.reset_counters()
