"""Shared refinement state reused across candidates and across queries.

A single query evaluates many candidates against the same query object; a
batch evaluates many queries against the same database.  Most of the work
IDCA performs per candidate is positionally identical across those runs:

* the decomposition kd-trees of the query object and of the database objects
  (influence objects recur between candidates and between queries), and
* the domination-bound matrix columns produced by the batched pair-bounds
  kernel: for one candidate at one depth against one (target grid, reference
  grid), the ``(num_pairs,)`` lower/upper bound vectors over *all* partition
  pairs are deterministic functions of the key, so an entry is stored —
  and served — as a whole array, and a cache hit removes the candidate's
  entire column from the next kernel call.

:class:`RefinementContext` owns both memos and hands out IDCA instances wired
to them, so every run launched through the same context — including every
query of a batch — amortises the decomposition and bound computations.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..core import IDCA
from ..core.idca import _TREE_CACHE_MAX
from ..geometry import DominationCriterion
from ..uncertain import DecompositionTree, UncertainDatabase, UncertainObject
from ..uncertain.decomposition import AxisPolicy

__all__ = ["CacheStats", "RefinementContext"]


class CacheStats(dict):
    """A dict that counts lookup hits and misses (for benchmark reporting).

    Since the kernel refactor one entry is a whole bounds-matrix column, so a
    single hit now stands for ``num_pairs`` scalar bounds served at once.
    """

    def __init__(self) -> None:
        super().__init__()
        self.hits = 0
        self.misses = 0

    def get(self, key, default=None):
        """Dict lookup that tallies the hit/miss counters as a side effect."""
        value = super().get(key, default)
        if value is default:
            self.misses += 1
        else:
            self.hits += 1
        return value


class RefinementContext:
    """Decomposition and domination-bound memos shared between IDCA runs.

    Parameters
    ----------
    database:
        The uncertain database all runs operate on.  A context must never be
        shared between engines over different databases — the caches key
        influence objects by their database position.
    axis_policy:
        Split-axis policy used for every decomposition tree the context
        creates (and for the IDCA instances it hands out), so cached trees
        are valid for every consumer.
    """

    def __init__(
        self,
        database: UncertainDatabase,
        axis_policy: AxisPolicy = "round_robin",
    ):
        self.database = database
        self.axis_policy: AxisPolicy = axis_policy
        self.tree_cache: dict[int, DecompositionTree] = {}
        self.pair_bounds_cache = CacheStats()
        self._idca_instances: dict[tuple, IDCA] = {}

    def __reduce__(self):
        """Pickle as (database, axis_policy) — caches rebuild empty.

        Cached state must never cross a process boundary: decomposition trees
        are keyed by object identity (meaningless in another process) and
        pair-bounds columns are keyed by process-unique tree tokens.  Reducing
        to the constructor arguments makes a context cheap to ship to worker
        processes — each worker rebuilds its own empty, *local* caches, which
        is exactly the worker lifecycle the parallel batch executor relies on
        (see ``engine/executor.py``).  Memoised bounds are deterministic, so
        rebuilding them locally never changes results.

        The database itself decides its own transport: with an active
        shared-memory export (``UncertainDatabase.share_memory``) it pickles
        to a lightweight handle that workers *attach* — so shipping a context
        costs kilobytes regardless of database size — and to a full copy
        otherwise.  Either way this reduce stays cache-free.
        """
        return (type(self), (self.database, self.axis_policy))

    # ------------------------------------------------------------------ #
    # shared resources
    # ------------------------------------------------------------------ #
    def tree_for(self, obj: UncertainObject) -> DecompositionTree:
        """Decomposition tree of ``obj``, cached by object identity.

        Bounded like the IDCA-side cache: a context serving a long stream of
        transient query objects must not grow without limit.  Evicted trees
        are simply rebuilt on next use; memoised pair bounds stay safe
        because they key trees by process-unique token, not ``id()``.
        """
        key = id(obj)
        tree = self.tree_cache.get(key)
        if tree is None:
            if len(self.tree_cache) >= _TREE_CACHE_MAX:
                stale = list(itertools.islice(iter(self.tree_cache), _TREE_CACHE_MAX // 10))
                for old in stale:
                    del self.tree_cache[old]
            tree = DecompositionTree(obj, axis_policy=self.axis_policy)
            self.tree_cache[key] = tree
        return tree

    def idca_for(
        self,
        p: float = 2.0,
        criterion: DominationCriterion = "optimal",
        k_cap: Optional[int] = None,
        **idca_kwargs,
    ) -> IDCA:
        """An IDCA instance wired to the shared caches, memoised by parameters.

        Instances only differ in scalar configuration; the expensive state
        (trees, pair bounds) lives in the context, so handing the same
        instance to every query of a batch is both safe and what makes the
        batch fast.
        """
        key = (p, criterion, k_cap, tuple(sorted(idca_kwargs.items())))
        idca = self._idca_instances.get(key)
        if idca is None:
            idca = IDCA(
                self.database,
                p=p,
                criterion=criterion,
                axis_policy=self.axis_policy,
                k_cap=k_cap,
                tree_cache=self.tree_cache,
                pair_bounds_cache=self.pair_bounds_cache,
                **idca_kwargs,
            )
            self._idca_instances[key] = idca
        return idca

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Cache occupancy and hit counters (used by the batch benchmark)."""
        return {
            "trees": len(self.tree_cache),
            "pair_bounds": len(self.pair_bounds_cache),
            "pair_bounds_hits": self.pair_bounds_cache.hits,
            "pair_bounds_misses": self.pair_bounds_cache.misses,
        }

    def clear(self) -> None:
        """Drop all cached state (keeps the handed-out IDCA instances valid)."""
        self.tree_cache.clear()
        self.pair_bounds_cache.clear()
        self.pair_bounds_cache.hits = 0
        self.pair_bounds_cache.misses = 0
