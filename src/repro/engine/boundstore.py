"""Cross-worker shared pair-bounds store.

Since PR 1 the engine memoises the domination-bound matrix columns the
batched kernel produces — but only per process: with ``w`` workers the
parallel path recomputes up to ``w`` copies of every column the serial path
computes once.  This module extends the PR-4 shared-memory machinery
(``repro/uncertain/sharedmem.py``) from *shipping the dataset* to *sharing
the read-mostly bounds cache itself*: one worker computes a column, every
worker serves it.

Design (the "Shared refinement cache" section of ``docs/architecture.md``
documents the same protocol from the consumer's point of view):

* **One block, four regions.**  A single shared block (POSIX shared memory,
  or a disk-backed mmap for stores that must survive reboots) holds a fixed
  header, a fixed-slot hash index (open addressing, 8 bytes per slot), a
  small table of in-flight *claims*, and one append-only *data segment per
  worker*.
* **Stable keys.**  The process-local memo keys the engine uses are built
  from process-unique tree tokens, so they cannot cross a process boundary.
  :func:`stable_object_key` translates each participating object into a
  process-independent identity — its database position for members, a
  content digest for ad-hoc query objects — and
  :meth:`~repro.engine.context.RefinementContext` derives the shared key
  ``(axis_policy, (candidate, depth), (target, depth), (reference, depth),
  (p, criterion))`` from it.  Entries are deterministic functions of their
  key, so a shared hit is bit-identical to recomputation.
* **Single-writer publish.**  Every worker appends records only to its own
  segment, so record payloads are never written concurrently.  A record is
  fully written — and the segment's append cursor durably advanced past it —
  *before* its index slot is published, and slot publishes are serialised by
  one writer lock, so the index never holds a pointer to a half-written
  record; a writer that dies between the append and the publish leaves only
  an orphaned record (wasted bytes), never a dangling pointer.
* **Claim leases.**  Before computing a missing column a writer publishes an
  in-flight *claim* (key fingerprint + pid + monotonic lease stamp) in the
  claims table, so a concurrent worker that misses on the same key can
  *wait briefly or skip* instead of duplicating the kernel work.  A claim
  whose holder died — or whose lease expired — is **stolen** by the next
  claimant, so a SIGKILLed worker can never wedge a column.  Claims are an
  optimisation only: a saturated claim table fails open (everyone computes)
  and the publish-time duplicate check keeps the index exact.
* **Lock-free validated reads.**  Readers never take the lock: they read the
  8-byte slot word, follow it into the segment and *validate* the record
  (segment generation, magic, key length, CRC of the key bytes, full key
  comparison, payload bounds) before trusting it.  A reader that loses every
  race still returns either ``None`` or a fully consistent column — torn
  reads are structurally impossible because published records are immutable
  while their generation holds and validation rejects anything else.
* **Generation-based recycling.**  Every segment carries a generation
  counter (stamped into each slot word at publish time and re-checked on
  every read), so the owner can *reclaim* a segment — bump its generation,
  reset its cursor, tombstone its slots — and recycle the space instead of
  letting the append-only store latch into local-memoisation fallback.
  Clients observe the header's reclaim counter and reset their ``full``
  latches when space frees.
* **Warm-start persistence.**  The versioned header carries a content
  handshake (database digest + axis/config fingerprint, CRC-protected), so
  a re-spawned service can attach a previous incarnation's block by name —
  or open a disk-backed mmap that survives reboots — and serve the
  previous lifetime's columns from the first batch.  A truncated, torn or
  digest-mismatched backing is detected by the validation ladder and
  discarded (the store rebuilds from empty); it is never served.
* **Graceful fallback.**  When shared memory is unavailable (platform,
  ``REPRO_DISABLE_SHARED_MEMORY``/``REPRO_DISABLE_SHARED_BOUNDS``), the
  store is full, the index probe limit is exhausted, or a worker arrives
  after every segment is claimed, publishing simply stops (or never starts)
  and the engine falls back to the process-local memo — results stay
  bit-identical either way, only duplicate work returns.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import os
import pickle
import struct
import time
import weakref
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Optional

import numpy as np

from ..uncertain.sharedmem import (
    _OWNED_NAMES,
    FileBackedBlock,
    _attach_block,
    _cleanup_block,
    _shared_memory,
    shared_memory_available,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..uncertain import UncertainDatabase, UncertainObject

__all__ = [
    "BoundStoreClient",
    "BoundStoreHandle",
    "SharedBoundStore",
    "bound_store_available",
    "config_fingerprint",
    "database_digest",
    "encode_stable_key",
    "stable_object_key",
]

#: Extra kill-switch for just the bounds store (the dataset transport keeps
#: honouring ``REPRO_DISABLE_SHARED_MEMORY``, which disables both).
DISABLE_BOUNDS_ENV = "REPRO_DISABLE_SHARED_BOUNDS"

#: Default number of index slots (8 bytes each).
DEFAULT_SLOTS = 8192

#: Default bytes of append-only record space per worker segment.
DEFAULT_SEGMENT_BYTES = 4 << 20

#: Default number of claim-table entries (24 bytes each).  In-flight claims
#: are bounded by how many columns the pool's workers compute concurrently,
#: so a small table suffices; overflow fails open (see :meth:`claim`).
DEFAULT_CLAIMS = 1024

#: Open-addressing probe limit; lookups and publishes give up after this many
#: consecutive slots (the fallback is the process-local memo, never an error).
PROBE_LIMIT = 32

#: Claim-table probe limit; an exhausted window fails open.
CLAIM_PROBE_LIMIT = 8

#: Seconds an in-flight claim stays honoured after its last stamp.  A claim
#: older than this is presumed abandoned (wedged or dead holder) and is
#: stolen by the next claimant.  Liveness of the holder pid is checked
#: first, so a *crashed* holder is stolen immediately, not after the lease.
CLAIM_LEASE_SECONDS = 5.0

#: Wall-clock budget a reader spends waiting on someone else's claim before
#: giving up and computing the column itself.  Deliberately short: the
#: holder computes whole kernel frontiers per call, so a long wait would
#: cost more than the duplicate compute it avoids.
CLAIM_WAIT_SECONDS = 0.02

#: Poll interval while waiting on a claim.
CLAIM_POLL_SECONDS = 0.002

#: Fraction of a segment's records that must be stale (superseded database
#: generations) before :meth:`SharedBoundStore.reclaim_stale` retires it.
STALE_RECLAIM_FRACTION = 0.5

_HEADER_BYTES = 128
_SLOT_BYTES = 8
_CLAIM_BYTES = 24
_SEGMENT_HEADER_BYTES = 16
_RECORD_HEADER_BYTES = 16
#: Leftover segment space below this is treated as exhausted (header plus a
#: short key plus a one-pair column — no real record is smaller).
_MIN_RECORD_BYTES = _RECORD_HEADER_BYTES + 64

#: Consecutive probe-window exhaustions after which a writer stops trying to
#: publish — a saturated index would otherwise cost every future publish a
#: payload copy plus a full probe scan under the writer lock.  The latch is
#: *not* permanent: it resets when the header's reclaim counter advances
#: (see :meth:`BoundStoreClient._resync`).
_INDEX_FULL_LATCH = 8
_STORE_MAGIC = 0x42535452  # "BSTR"
_STORE_VERSION = 2
_RECORD_MAGIC = 0x52454342  # "RECB"
_PRESENT = 1 << 63
#: Slot value of a scrubbed (reclaimed) entry: probes skip it without
#: terminating — deleting to zero would break open-addressing chains —
#: and publishes may reuse it.
_TOMBSTONE = 1

# mutable header fields live *after* the CRC-covered identity prefix
_H_NEXT_SEGMENT = 68
_H_RECLAIMS = 72
_H_CRC = 64
_H_DIGEST = 32
_H_CONFIG = 48

#: Environment variable of the fault-injection harness (mirrors
#: ``executor.FAULT_PLAN_ENV``; duplicated as a literal to avoid importing
#: the executor from this lower layer).
_FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

_block_counter = itertools.count()


def bound_store_available() -> bool:
    """Whether the cross-worker shared bounds store can be used here.

    Requires working ``multiprocessing.shared_memory`` (and honours the
    ``REPRO_DISABLE_SHARED_MEMORY`` kill-switch through
    :func:`~repro.uncertain.sharedmem.shared_memory_available`); the
    dedicated ``REPRO_DISABLE_SHARED_BOUNDS`` variable disables only the
    bounds store while keeping the dataset transport active.
    """
    if not shared_memory_available():
        return False
    if os.environ.get(DISABLE_BOUNDS_ENV):
        return False
    return True


# --------------------------------------------------------------------- #
# stable cross-process keys
# --------------------------------------------------------------------- #
def stable_object_key(database: "UncertainDatabase", obj: "UncertainObject") -> tuple:
    """Process-independent identity of ``obj`` relative to ``database``.

    Database members key by position *and generation*
    (``("db", index, generation)``) — positions and generations are
    identical in every process that received the same database snapshot,
    including workers that *mapped* it through shared memory or advanced it
    by replaying mutation deltas.  Folding the generation in is what makes
    the store survive mutations with per-column granularity: an untouched
    object keeps its key (and therefore its published columns) across
    epochs, while a mutated object gets a fresh generation and its stale
    columns simply become unreachable — generations are unique per object
    content within a snapshot lineage, so a ``(position, generation)`` pair
    can never alias two different contents even after deletes shift
    positions.  Ad-hoc objects (e.g. query objects shipped inside requests)
    key by a content digest of their pickle (``("pickle", hexdigest)``):
    the worker's unpickled copy digests to the same value as the parent's
    original, so both sides derive the same shared-store key.  The digest
    is memoised in a weak side table — never written onto the object, which
    would change its future pickles and therefore the digests other
    processes compute.  A digest mismatch can only ever cause a cache
    *miss*, never a wrong hit, because the full key is verified on every
    read.
    """
    position = database.position_of(obj)
    if position is not None:
        return ("db", position, database.generation_of(position))
    digest = _DIGESTS.get(obj)
    if digest is None:
        digest = hashlib.blake2b(
            pickle.dumps(obj, protocol=4), digest_size=16
        ).hexdigest()
        _DIGESTS[obj] = digest
    return ("pickle", digest)


#: Content digests of ad-hoc objects, keyed weakly by the object itself so
#: transient query objects do not accumulate.
_DIGESTS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def encode_stable_key(key: tuple) -> bytes:
    """Deterministic byte encoding of a stable memo key.

    The key is a nested tuple of strings, ints and floats; ``repr`` is
    deterministic for those across processes of the same interpreter, and
    the result is only ever compared for equality (and, for the
    staleness scan of :meth:`SharedBoundStore.reclaim_stale`, parsed back
    with :func:`ast.literal_eval` — which the same value domain makes
    exact).
    """
    return repr(key).encode()


def database_digest(database: "UncertainDatabase") -> bytes:
    """16-byte content digest of a database snapshot's member identities.

    Hashes every member's generation and pickled content in position order
    — exactly the inputs ``("db", position, generation)`` keys depend on —
    so two databases agree on the digest iff columns published against one
    are valid for the other.  The snapshot *epoch* is deliberately
    excluded: generation-folded keys already make superseded columns
    unreachable, so a store persisted at any epoch of the same lineage
    stays safe to serve.
    """
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(struct.pack("<Q", len(database)))
    for position in range(len(database)):
        hasher.update(struct.pack("<q", database.generation_of(position)))
        hasher.update(pickle.dumps(database[position], protocol=4))
    return hasher.digest()


def config_fingerprint(axis_policy, key_schema: str = "pb1") -> bytes:
    """16-byte fingerprint of everything shared keys depend on besides data.

    Covers the key-schema version and the context's ``axis_policy`` (the
    partition arrays — and therefore every published column — depend on
    it).  A persisted store whose fingerprint differs was built by an
    incompatible configuration and must be rebuilt from empty.
    """
    return hashlib.blake2b(
        repr((key_schema, axis_policy)).encode(), digest_size=16
    ).digest()


def _fingerprint(key_bytes: bytes) -> int:
    """64-bit content fingerprint used for slot addressing and tagging."""
    return int.from_bytes(
        hashlib.blake2b(key_bytes, digest_size=8).digest(), "little"
    )


def _pad8(n: int) -> int:
    return -(-n // 8) * 8


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (EPERM counts as alive)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user pid: alive
        return True
    return True


class _StoreRejected(Exception):
    """An existing persisted backing failed the validation ladder."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


# --------------------------------------------------------------------- #
# handle
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class BoundStoreHandle:
    """What crosses the process boundary instead of the store.

    Carries the block name (or file path for disk-backed stores), the store
    geometry and the writer lock.  The lock is a :mod:`multiprocessing`
    primitive created from the worker pool's own context, so it travels to
    workers through the pool's normal process-creation channel (inherited
    under ``fork``, pickled by the spawn machinery otherwise) — exactly
    like the pool's other initargs.

    Attributes
    ----------
    shm_name:
        Name of the shared-memory block holding the store (``""`` for
        disk-backed stores).
    num_slots:
        Number of 8-byte hash-index slots.
    num_segments:
        Number of per-worker data segments.
    segment_bytes:
        Bytes per data segment (including its small header).
    lock:
        Writer lock serialising segment claims, claim-table updates and
        index-slot publishes.  Readers never touch it.
    num_claims:
        Number of claim-table entries (0 disables claim leases).
    path:
        Filesystem path of a disk-backed store (``None`` for shm stores).
    """

    shm_name: str
    num_slots: int
    num_segments: int
    segment_bytes: int
    lock: object
    num_claims: int = 0
    path: Optional[str] = None


# --------------------------------------------------------------------- #
# client (reader in any process, writer in workers that claimed a segment)
# --------------------------------------------------------------------- #
class BoundStoreClient:
    """Per-process accessor of a shared bounds store.

    Reads are lock-free and allowed from any process that can attach the
    block.  Writes require a claimed segment: :meth:`from_handle` claims the
    next free one under the handle's lock (workers that arrive after all
    segments are taken become read-only — a graceful degradation, not an
    error).  All counters are process-local.
    """

    #: Seconds an in-flight claim is honoured before it may be stolen.
    lease_seconds = CLAIM_LEASE_SECONDS

    def __init__(
        self,
        shm,
        handle: BoundStoreHandle,
        segment: Optional[int],
        owns_mapping: bool = True,
    ):
        self._shm = shm
        self._buf = shm.buf
        self._handle = handle
        self._segment = segment
        # reader() clients borrow the owner's mapping and must never close
        # it; from_handle() clients attached their own and should
        self._owns_mapping = owns_mapping
        self._index_offset = _HEADER_BYTES
        self._claims_offset = _HEADER_BYTES + handle.num_slots * _SLOT_BYTES
        self._segments_offset = (
            self._claims_offset + handle.num_claims * _CLAIM_BYTES
        )
        self._append = _SEGMENT_HEADER_BYTES
        self._gen = 0
        if segment is not None:
            base = self._segment_base(segment)
            (cursor,) = struct.unpack_from("<Q", self._buf, base)
            # a warm-started segment resumes appending where the previous
            # incarnation stopped; a fresh (zero-filled) one starts at the
            # segment header
            if _SEGMENT_HEADER_BYTES <= cursor <= handle.segment_bytes:
                self._append = int(cursor)
            (self._gen,) = struct.unpack_from("<I", self._buf, base + 8)
        self._full = False
        self._index_full_streak = 0
        (self._reclaims_seen,) = struct.unpack_from(
            "<Q", self._buf, _H_RECLAIMS
        )
        #: Successful shared lookups (validated records returned).
        self.hits = 0
        #: Lookups that found no valid record.
        self.misses = 0
        #: Columns this client published into the index.
        self.publishes = 0
        #: Publishes skipped because another worker already published the key.
        self.duplicates = 0
        #: Publishes rejected because the segment or the index was full.
        self.rejected = 0
        #: Claims this client acquired (it computes the column).
        self.claim_acquires = 0
        #: Claims found held by a live holder (this client waits or skips).
        self.claim_conflicts = 0
        #: Claims stolen from a dead or lease-expired holder.
        self.claim_steals = 0
        #: Records a validated read rejected as corrupt (bad magic, CRC
        #: mismatch, or an out-of-bounds geometry field).  Distinct from a
        #: fingerprint collision or a reclaimed-generation record, which
        #: are benign and keep probing.
        self.corruptions = 0
        #: Latched on the first detected corruption: the client demotes
        #: itself to read-nothing/write-nothing and the tiered cache falls
        #: back to process-local memoisation (see ``context.py``).
        self._demoted = False

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_handle(cls, handle: BoundStoreHandle) -> "BoundStoreClient":
        """Attach to the store named by ``handle`` and claim a segment.

        Called inside worker processes by the pool initializer.  The
        segment claim (a read-increment-write of the header counter) runs
        under the handle's writer lock; when every segment is already
        claimed the client attaches read-only.  Attaching never adopts
        unlink responsibility — the creating process owns the block.
        """
        if handle.path is not None:
            shm = FileBackedBlock(handle.path)
        else:
            shm = _attach_block(handle.shm_name)
        segment: Optional[int] = None
        with handle.lock:
            (next_segment,) = struct.unpack_from("<I", shm.buf, _H_NEXT_SEGMENT)
            if next_segment < handle.num_segments:
                struct.pack_into(
                    "<I", shm.buf, _H_NEXT_SEGMENT, next_segment + 1
                )
                segment = next_segment
        return cls(shm, handle, segment)

    @property
    def writable(self) -> bool:
        """Whether this client owns a segment and can still publish into it.

        Checking resyncs against the header's reclaim counter first, so a
        ``full`` latch taken before a reclaim freed space releases here —
        the fix for the permanent-demotion failure mode of the append-only
        store.
        """
        if self._segment is not None and not self._demoted:
            self._resync()
        return self._segment is not None and not self._full and not self._demoted

    @property
    def demoted(self) -> bool:
        """Whether this client saw store corruption and dropped to local-only.

        The validated-read path (generation + magic + key CRC +
        bounds-checked geometry) makes a corrupt record unreadable, never a
        wrong answer; but a store someone scribbled on cannot be trusted for
        *future* records either, so the first detected corruption latches
        the client off.  The worker keeps serving batches from its
        process-local caches — graceful degradation, surfaced as
        ``shared_degraded`` in :class:`ChunkStats`.
        """
        return self._demoted

    def _note_corruption(self) -> None:
        self.corruptions += 1
        self._demoted = True

    @property
    def segment(self) -> Optional[int]:
        """Index of the claimed data segment (``None`` for read-only clients)."""
        return self._segment

    @property
    def claims_enabled(self) -> bool:
        """Whether the store carries a claim table (``num_claims > 0``)."""
        return self._handle.num_claims > 0

    # ------------------------------------------------------------------ #
    # geometry helpers
    # ------------------------------------------------------------------ #
    def _slot_offset(self, slot: int) -> int:
        return self._index_offset + _SLOT_BYTES * slot

    def _segment_base(self, segment: int) -> int:
        return self._segments_offset + segment * self._handle.segment_bytes

    def _segment_generation(self, segment: int) -> int:
        (generation,) = struct.unpack_from(
            "<I", self._buf, self._segment_base(segment) + 8
        )
        return generation

    def _resync(self) -> None:
        """Adopt reclaim-driven state changes (cursor reset, latch release).

        Cheap — one header read per call — and only meaningful for writers:
        when the owner reclaimed any segment since the last check, the
        client re-reads its own segment's cursor and generation (its own
        segment may have been the one recycled) and releases the ``full``
        latches, because a reclaim by definition freed index slots and
        possibly segment space.
        """
        (reclaims,) = struct.unpack_from("<Q", self._buf, _H_RECLAIMS)
        if reclaims == self._reclaims_seen:
            return
        self._reclaims_seen = reclaims
        if self._segment is not None:
            base = self._segment_base(self._segment)
            (cursor,) = struct.unpack_from("<Q", self._buf, base)
            if _SEGMENT_HEADER_BYTES <= cursor <= self._handle.segment_bytes:
                self._append = int(cursor)
            else:
                self._append = _SEGMENT_HEADER_BYTES
            (self._gen,) = struct.unpack_from("<I", self._buf, base + 8)
        self._full = False
        self._index_full_streak = 0

    def _read_record(self, word: int, key_bytes: bytes, with_payload: bool = True):
        """Resolve an index word to its validated record, or ``None``.

        Validation order matters: every field is bounds-checked before it is
        used to address memory, so even an (astronomically unlikely) torn
        slot word can only produce a rejected lookup, never a torn read.
        Returns ``None`` for invalid records and ``False`` for valid records
        of a *different* key (fingerprint collision — keep probing) **and**
        for records whose segment generation moved on (a reclaimed segment:
        benign staleness, not corruption).  With ``with_payload=False`` a
        key match returns ``True`` without copying the column out — used by
        the publish path's duplicate check, which runs under the writer
        lock and must stay short.
        """
        handle = self._handle
        segment = (word >> 32) & 0xFF
        offset = word & 0xFFFFFFFF
        if segment >= handle.num_segments:
            return None
        if offset < _SEGMENT_HEADER_BYTES:
            return None
        if offset + _RECORD_HEADER_BYTES > handle.segment_bytes:
            return None
        # seqlock-style generation check: the slot word carries the low 8
        # bits of the segment generation it was published under; a mismatch
        # means the segment was reclaimed and the record bytes may be gone
        generation = self._segment_generation(segment)
        if (word >> 40) & 0xFF != generation & 0xFF:
            return False
        base = self._segment_base(segment) + offset
        magic, key_len, num_pairs, key_crc = struct.unpack_from(
            "<IIII", self._buf, base
        )
        if magic != _RECORD_MAGIC:
            return None
        if key_len != len(key_bytes):
            return False
        payload_offset = _RECORD_HEADER_BYTES + _pad8(key_len)
        record_bytes = payload_offset + 16 * num_pairs
        if offset + record_bytes > handle.segment_bytes:
            return None
        stored_key = bytes(self._buf[base + _RECORD_HEADER_BYTES : base + _RECORD_HEADER_BYTES + key_len])
        if zlib.crc32(stored_key) != key_crc:
            return None
        if stored_key != key_bytes:
            return False
        if not with_payload:
            return True
        lower = np.frombuffer(
            self._buf, dtype="<f8", count=num_pairs, offset=base + payload_offset
        ).copy()
        upper = np.frombuffer(
            self._buf,
            dtype="<f8",
            count=num_pairs,
            offset=base + payload_offset + 8 * num_pairs,
        ).copy()
        # re-check the generation *after* the copy: if a reclaim raced the
        # read, the copied bytes cannot be trusted — a benign miss, because
        # the reclaim already scrubbed the slot for future probes
        if self._segment_generation(segment) != generation:
            return False
        return lower, upper

    def _lookup(self, key_bytes: bytes):
        """Uncounted probe behind :meth:`get` (shared with :meth:`wait_for`)."""
        fingerprint = _fingerprint(key_bytes)
        tag = (fingerprint >> 48) & 0x7FFF
        num_slots = self._handle.num_slots
        home = fingerprint % num_slots
        for i in range(PROBE_LIMIT):
            (word,) = struct.unpack_from(
                "<Q", self._buf, self._slot_offset((home + i) % num_slots)
            )
            if word == 0:
                break
            if not word & _PRESENT or ((word >> 48) & 0x7FFF) != tag:
                continue  # tombstones and foreign tags: keep probing
            record = self._read_record(word, key_bytes)
            if record is False:
                continue  # benign collision or reclaimed generation
            if record is None:
                # validation failed — someone scribbled on the store.  The
                # lookup stays safe (nothing was returned), but the client
                # stops trusting the store from here on.
                self._note_corruption()
                continue
            return record
        return None

    # ------------------------------------------------------------------ #
    # read path (lock-free)
    # ------------------------------------------------------------------ #
    def get(self, key_bytes: bytes) -> Optional[tuple[np.ndarray, np.ndarray]]:
        """Look one bounds column up; returns ``(lower, upper)`` or ``None``.

        Lock-free: probes up to :data:`PROBE_LIMIT` index slots from the
        key's home slot, stopping at the first empty slot (tombstones left
        by a reclaim are skipped, never terminal).  Returned arrays are
        private copies — they stay valid after the store unlinks.
        """
        record = self._lookup(key_bytes)
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        return record

    # ------------------------------------------------------------------ #
    # claim leases (in-flight computation markers)
    # ------------------------------------------------------------------ #
    def claim(self, key_bytes: bytes) -> str:
        """Announce the intent to compute ``key_bytes``'s column.

        Returns ``"acquired"`` (this client should compute — either the
        claim table recorded the claim, the claim was already this
        process's, or the table's probe window was saturated and the claim
        *fails open*), ``"stolen"`` (acquired by taking over a dead or
        lease-expired holder's claim) or ``"held"`` (a live holder is
        computing — wait briefly via :meth:`wait_for` or compute anyway).

        Claims are advisory: every outcome keeps results bit-identical
        because the publish path's duplicate check is the actual
        synchronisation point.  They exist to cut *duplicate work*, which
        is why failing open on saturation is correct.
        """
        handle = self._handle
        if handle.num_claims <= 0:
            return "acquired"
        fingerprint = _fingerprint(key_bytes)
        mine = os.getpid()
        now = time.monotonic()
        outcome: Optional[str] = None
        with handle.lock:
            free = None
            for i in range(CLAIM_PROBE_LIMIT):
                offset = self._claims_offset + _CLAIM_BYTES * (
                    (fingerprint + i) % handle.num_claims
                )
                entry_fp, pid, _pad, stamp = struct.unpack_from(
                    "<QIId", self._buf, offset
                )
                if pid == 0:
                    if free is None:
                        free = offset
                    continue
                if entry_fp != fingerprint:
                    continue
                if pid == mine:
                    # refresh our own lease (a long compute must not be
                    # stolen out from under us between frontiers)
                    struct.pack_into(
                        "<QIId", self._buf, offset, fingerprint, mine, 0, now
                    )
                    outcome = "acquired"
                elif _pid_alive(pid) and now - stamp < self.lease_seconds:
                    self.claim_conflicts += 1
                    return "held"
                else:
                    struct.pack_into(
                        "<QIId", self._buf, offset, fingerprint, mine, 0, now
                    )
                    outcome = "stolen"
                break
            if outcome is None and free is not None:
                struct.pack_into(
                    "<QIId", self._buf, free, fingerprint, mine, 0, now
                )
                outcome = "acquired"
        if outcome is None:
            # probe window saturated: fail open.  The duplicate check at
            # publish time keeps the index exact; the only cost is possible
            # duplicate compute — exactly the pre-claims behaviour.
            self.claim_acquires += 1
            return "acquired"
        if outcome == "stolen":
            self.claim_steals += 1
        else:
            self.claim_acquires += 1
        # fire the chaos hook only with an entry actually recorded, and only
        # after the lock is released — a kill while holding the writer lock
        # would wedge every store in the pool, which is not the fault model
        if os.environ.get(_FAULT_PLAN_ENV):  # chaos tests only
            from ..testing.faults import claim_fault_hook

            claim_fault_hook()
        return outcome

    def release(self, key_bytes: bytes) -> bool:
        """Drop this process's claim on ``key_bytes`` (idempotent).

        Safe to call for keys never claimed (or claimed and then stolen):
        only an entry carrying *this* pid and the key's fingerprint is
        cleared.  Returns whether an entry was released.
        """
        handle = self._handle
        if handle.num_claims <= 0:
            return False
        fingerprint = _fingerprint(key_bytes)
        mine = os.getpid()
        with handle.lock:
            for i in range(CLAIM_PROBE_LIMIT):
                offset = self._claims_offset + _CLAIM_BYTES * (
                    (fingerprint + i) % handle.num_claims
                )
                entry_fp, pid, _pad, _stamp = struct.unpack_from(
                    "<QIId", self._buf, offset
                )
                if pid == mine and entry_fp == fingerprint:
                    self._buf[offset : offset + _CLAIM_BYTES] = bytes(_CLAIM_BYTES)
                    return True
        return False

    def wait_for(
        self, key_bytes: bytes, budget: float = CLAIM_WAIT_SECONDS
    ) -> Optional[tuple[np.ndarray, np.ndarray]]:
        """Briefly poll for a column someone else claimed; ``None`` on timeout.

        The budget is deliberately small (see :data:`CLAIM_WAIT_SECONDS`):
        when it expires the caller simply computes the column itself —
        bounded duplicate work, never a stall.
        """
        deadline = time.monotonic() + budget
        while True:
            record = self._lookup(key_bytes)
            if record is not None:
                return record
            if time.monotonic() >= deadline or self._demoted:
                return None
            time.sleep(CLAIM_POLL_SECONDS)

    # ------------------------------------------------------------------ #
    # write path (single writer per segment; slot publish under the lock)
    # ------------------------------------------------------------------ #
    def put(self, key_bytes: bytes, lower: np.ndarray, upper: np.ndarray) -> bool:
        """Publish one bounds column; returns True when it entered the index.

        The record is appended to this client's own segment *first* (no
        other process writes there) and the segment's append cursor is
        durably advanced past it **before** the index slot is published
        under the writer lock — so a concurrent reader either finds the
        complete record or nothing, and a writer killed mid-publish leaves
        at worst an orphaned record that a warm-started successor simply
        never points at.  Returns False without error when the client is
        read-only, the segment or the probe window is full, or another
        worker already published the same key (the cursor is then rolled
        back, reclaiming the space — safe because this segment has exactly
        one writer).
        """
        if self._segment is not None:
            self._resync()
        if self._segment is None or self._full:
            self.rejected += 1
            return False
        lower = np.ascontiguousarray(lower, dtype="<f8")
        upper = np.ascontiguousarray(upper, dtype="<f8")
        num_pairs = int(lower.shape[0])
        if upper.shape[0] != num_pairs:
            raise ValueError("lower and upper bounds must have the same length")
        handle = self._handle
        payload_offset = _RECORD_HEADER_BYTES + _pad8(len(key_bytes))
        record_bytes = payload_offset + 16 * num_pairs
        if self._append + record_bytes > handle.segment_bytes:
            # this record does not fit, but smaller columns still might —
            # only stop trying once the leftover space is below any
            # plausible record size
            if handle.segment_bytes - self._append < _MIN_RECORD_BYTES:
                self._full = True
            self.rejected += 1
            return False
        segment_base = self._segment_base(self._segment)
        base = segment_base + self._append
        struct.pack_into(
            "<IIII",
            self._buf,
            base,
            _RECORD_MAGIC,
            len(key_bytes),
            num_pairs,
            zlib.crc32(key_bytes),
        )
        self._buf[base + _RECORD_HEADER_BYTES : base + _RECORD_HEADER_BYTES + len(key_bytes)] = key_bytes
        np.frombuffer(
            self._buf, dtype="<f8", count=num_pairs, offset=base + payload_offset
        )[:] = lower
        np.frombuffer(
            self._buf,
            dtype="<f8",
            count=num_pairs,
            offset=base + payload_offset + 8 * num_pairs,
        )[:] = upper

        # durably advance the cursor past the record *before* the slot
        # exists: a crash in the publish window leaves an orphaned record,
        # never a successor appending over a slot-referenced one
        previous_append = self._append
        self._append += record_bytes
        struct.pack_into("<Q", self._buf, segment_base, self._append)
        if os.environ.get(_FAULT_PLAN_ENV):  # chaos tests only
            from ..testing.faults import publish_fault_hook

            publish_fault_hook()

        fingerprint = _fingerprint(key_bytes)
        tag = (fingerprint >> 48) & 0x7FFF
        num_slots = handle.num_slots
        home = fingerprint % num_slots
        word = (
            _PRESENT
            | (tag << 48)
            | ((self._gen & 0xFF) << 40)
            | (self._segment << 32)
            | previous_append
        )

        def _rollback() -> None:
            self._append = previous_append
            struct.pack_into("<Q", self._buf, segment_base, self._append)

        with handle.lock:
            reusable = None
            for i in range(PROBE_LIMIT):
                slot_offset = self._slot_offset((home + i) % num_slots)
                (existing,) = struct.unpack_from("<Q", self._buf, slot_offset)
                if existing == 0:
                    if reusable is None:
                        reusable = slot_offset
                    break
                if not existing & _PRESENT:
                    # tombstone: reusable, but keep scanning for duplicates
                    if reusable is None:
                        reusable = slot_offset
                    continue
                if (existing >> 48) & 0x7FFF == tag:
                    if self._read_record(existing, key_bytes, with_payload=False) is True:
                        # someone else computed the same deterministic column
                        _rollback()
                        self.duplicates += 1
                        self._index_full_streak = 0
                        return False
            if reusable is not None:
                struct.pack_into("<Q", self._buf, reusable, word)
                self.publishes += 1
                self._index_full_streak = 0
                return True
        # probe window exhausted: the index region is (locally) saturated.
        # A latch after several consecutive exhaustions stops future
        # publishes from paying the payload copy plus a full probe scan
        # under the writer lock just to fail again; a later reclaim
        # releases the latch through _resync().
        _rollback()
        self.rejected += 1
        self._index_full_streak += 1
        if self._index_full_streak >= _INDEX_FULL_LATCH:
            self._full = True
        return False

    # ------------------------------------------------------------------ #
    # introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Process-local counters plus this client's segment occupancy."""
        used = None
        if self._segment is not None:
            used = self._append - _SEGMENT_HEADER_BYTES
        return {
            "hits": self.hits,
            "misses": self.misses,
            "publishes": self.publishes,
            "duplicates": self.duplicates,
            "rejected": self.rejected,
            "corruptions": self.corruptions,
            "claim_acquires": self.claim_acquires,
            "claim_conflicts": self.claim_conflicts,
            "claim_steals": self.claim_steals,
            "demoted": self._demoted,
            "segment": self._segment,
            "segment_used_bytes": used,
        }

    def close(self) -> None:
        """Detach this client (never unlinks — the creator owns that).

        Only closes the underlying mapping when this client attached it
        itself; a client borrowed from :meth:`SharedBoundStore.reader`
        leaves the owner's mapping intact.
        """
        self._buf = None
        if self._owns_mapping:
            try:
                self._shm.close()
            except Exception:  # pragma: no cover - already detached
                pass


# --------------------------------------------------------------------- #
# parent-side owner
# --------------------------------------------------------------------- #
class SharedBoundStore:
    """Parent-side owner of one shared bounds block.

    Created by :class:`~repro.engine.service.QueryService` (one per service)
    before its worker pool starts; the :attr:`handle` travels to every
    worker through the pool initializer, where
    :meth:`BoundStoreClient.from_handle` attaches and claims a segment.

    Three backing flavours, selected by ``path`` / ``name``:

    * **ephemeral** (default): an anonymous POSIX shm block, unlinked on
      :meth:`close` (with a :mod:`weakref` finalizer backing
      interpreter-exit and GC paths, like the dataset export);
    * **named persistent shm** (``name=..., persistent=True``): attaches
      the existing block of a previous incarnation when its content
      handshake validates, creates it otherwise; :meth:`close` detaches
      without unlinking (call :meth:`destroy` to delete);
    * **disk-backed** (``path=...``): a file mmap that survives reboots;
      :meth:`close` flushes and detaches, :meth:`destroy` deletes the file.

    For the persistent flavours, :attr:`warm_started` reports whether an
    existing backing was adopted and :attr:`rejected_store` the validation
    ladder's reason when one was found but discarded (truncated, torn,
    wrong digest/config — the store then rebuilds from empty; a bad
    backing is never served).
    """

    def __init__(
        self,
        num_slots: int = DEFAULT_SLOTS,
        num_segments: int = 2,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        mp_context=None,
        num_claims: int = DEFAULT_CLAIMS,
        path: Optional[str] = None,
        name: Optional[str] = None,
        persistent: bool = False,
        content_digest: bytes = b"",
        config_fingerprint: bytes = b"",
    ):
        if not bound_store_available():
            raise RuntimeError(
                "the shared bounds store is unavailable "
                f"(no shared memory, or disabled via {DISABLE_BOUNDS_ENV})"
            )
        if num_slots < 64:
            raise ValueError("num_slots must be at least 64")
        if not 1 <= num_segments <= 255:
            raise ValueError("num_segments must be between 1 and 255")
        if segment_bytes < 4096:
            raise ValueError("segment_bytes must be at least 4096")
        if segment_bytes > 0xFFFFFFFF:
            raise ValueError("segment_bytes must fit 32-bit record offsets")
        if not 0 <= num_claims <= 65535:
            raise ValueError("num_claims must be between 0 and 65535")
        if path is not None and name is not None:
            raise ValueError("pass either path or name, not both")
        digest = self._pad16(content_digest)
        config = self._pad16(config_fingerprint)
        self._path = path
        self._persistent = persistent or path is not None or name is not None
        #: Whether an existing persisted backing was adopted (content
        #: handshake validated) instead of starting empty.
        self.warm_started = False
        #: Validation-ladder reason an existing backing was discarded
        #: (``None`` when none existed or it was adopted).
        self.rejected_store = None
        if path is not None:
            self._shm = self._open_file(
                path, num_slots, num_segments, segment_bytes, num_claims,
                digest, config,
            )
        elif name is not None:
            self._shm = self._open_named(
                name, num_slots, num_segments, segment_bytes, num_claims,
                digest, config,
            )
        else:
            total = self._total_bytes(
                num_slots, num_segments, segment_bytes, num_claims
            )
            block_name = f"repro_bs_{os.getpid()}_{next(_block_counter)}"
            self._shm = _shared_memory.SharedMemory(
                create=True, size=total, name=block_name
            )
            self._write_header(
                self._shm.buf, num_slots, num_segments, segment_bytes,
                num_claims, digest, config,
            )
        if self.warm_started:
            # adopt the backing's geometry (authoritative for the mapped
            # bytes) and reset the incarnation-scoped state: segment claims
            # restart at zero and stale in-flight claims are cleared
            buf = self._shm.buf
            _magic, _version, num_slots, num_segments = struct.unpack_from(
                "<IIII", buf, 0
            )
            (segment_bytes,) = struct.unpack_from("<Q", buf, 16)
            (num_claims,) = struct.unpack_from("<I", buf, 24)
            struct.pack_into("<I", buf, _H_NEXT_SEGMENT, 0)
            claims_offset = _HEADER_BYTES + num_slots * _SLOT_BYTES
            buf[claims_offset : claims_offset + num_claims * _CLAIM_BYTES] = (
                bytes(num_claims * _CLAIM_BYTES)
            )
        context = mp_context if mp_context is not None else multiprocessing
        self.handle = BoundStoreHandle(
            shm_name=getattr(self._shm, "name", "") if path is None else "",
            num_slots=num_slots,
            num_segments=num_segments,
            segment_bytes=int(segment_bytes),
            lock=context.Lock(),
            num_claims=num_claims,
            path=path,
        )
        #: Total bytes of the shared block (header + index + claims +
        #: segments).
        self.nbytes = self._total_bytes(
            num_slots, num_segments, int(segment_bytes), num_claims
        )
        self._active = True
        self._reclaim_next = 0
        if path is None and not self._persistent:
            _OWNED_NAMES.add(self._shm.name)
            self._finalizer = weakref.finalize(self, _cleanup_block, self._shm)
        else:
            # persistent backings must survive this process: the finalizer
            # only detaches the mapping, never unlinks
            self._finalizer = weakref.finalize(self, _close_block, self._shm)

    # ------------------------------------------------------------------ #
    # layout / creation helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _pad16(value: bytes) -> bytes:
        if len(value) > 16:
            raise ValueError("digests must be at most 16 bytes")
        return value.ljust(16, b"\x00")

    @staticmethod
    def _total_bytes(
        num_slots: int, num_segments: int, segment_bytes: int, num_claims: int
    ) -> int:
        return (
            _HEADER_BYTES
            + num_slots * _SLOT_BYTES
            + num_claims * _CLAIM_BYTES
            + num_segments * segment_bytes
        )

    @staticmethod
    def _write_header(
        buf, num_slots, num_segments, segment_bytes, num_claims, digest, config
    ) -> None:
        struct.pack_into(
            "<IIII", buf, 0, _STORE_MAGIC, _STORE_VERSION, num_slots, num_segments
        )
        struct.pack_into("<Q", buf, 16, segment_bytes)
        struct.pack_into("<I", buf, 24, num_claims)
        buf[_H_DIGEST : _H_DIGEST + 16] = digest
        buf[_H_CONFIG : _H_CONFIG + 16] = config
        struct.pack_into("<I", buf, _H_CRC, zlib.crc32(bytes(buf[:_H_CRC])))

    @classmethod
    def _validate_existing(cls, buf, size: int, digest: bytes, config: bytes):
        """The corruption-rejection ladder for a persisted backing.

        Every check runs before any derived value is trusted; the first
        failure raises :class:`_StoreRejected` with a stable reason string
        (surfaced through :attr:`rejected_store` and the service metrics).
        """
        if size < _HEADER_BYTES:
            raise _StoreRejected("truncated-header")
        magic, version, num_slots, num_segments = struct.unpack_from(
            "<IIII", buf, 0
        )
        if magic != _STORE_MAGIC:
            raise _StoreRejected("bad-magic")
        if version != _STORE_VERSION:
            raise _StoreRejected("version-mismatch")
        (segment_bytes,) = struct.unpack_from("<Q", buf, 16)
        (num_claims,) = struct.unpack_from("<I", buf, 24)
        (stored_crc,) = struct.unpack_from("<I", buf, _H_CRC)
        if zlib.crc32(bytes(buf[:_H_CRC])) != stored_crc:
            raise _StoreRejected("corrupt-header")
        if not (
            64 <= num_slots
            and 1 <= num_segments <= 255
            and 4096 <= segment_bytes <= 0xFFFFFFFF
            and 0 <= num_claims <= 65535
        ):
            raise _StoreRejected("corrupt-header")
        expected = cls._total_bytes(
            num_slots, num_segments, segment_bytes, num_claims
        )
        if size < expected:
            raise _StoreRejected("truncated")
        stored_digest = bytes(buf[_H_DIGEST : _H_DIGEST + 16])
        if digest != b"\x00" * 16 and stored_digest != digest:
            raise _StoreRejected("digest-mismatch")
        stored_config = bytes(buf[_H_CONFIG : _H_CONFIG + 16])
        if config != b"\x00" * 16 and stored_config != config:
            raise _StoreRejected("config-mismatch")
        # per-segment sanity: a torn cursor would point appends (and the
        # staleness scan) outside the segment — reject the whole backing
        segments_offset = (
            _HEADER_BYTES + num_slots * _SLOT_BYTES + num_claims * _CLAIM_BYTES
        )
        for segment in range(num_segments):
            (cursor,) = struct.unpack_from(
                "<Q", buf, segments_offset + segment * segment_bytes
            )
            if cursor != 0 and not (
                _SEGMENT_HEADER_BYTES <= cursor <= segment_bytes
            ):
                raise _StoreRejected("corrupt-segment-cursor")

    def _open_file(
        self, path, num_slots, num_segments, segment_bytes, num_claims,
        digest, config,
    ):
        total = self._total_bytes(num_slots, num_segments, segment_bytes, num_claims)
        if os.path.exists(path):
            try:
                block = FileBackedBlock(path)
            except (ValueError, OSError):
                # unmappable (e.g. truncated to zero bytes): same treatment
                # as a failed ladder — rebuild from empty
                self.rejected_store = "truncated-header"
            else:
                try:
                    self._validate_existing(block.buf, block.size, digest, config)
                except _StoreRejected as rejected:
                    self.rejected_store = rejected.reason
                    block.close()
                else:
                    self.warm_started = True
                    return block
        block = FileBackedBlock(path, size=total, create=True)
        self._write_header(
            block.buf, num_slots, num_segments, segment_bytes, num_claims,
            digest, config,
        )
        return block

    def _open_named(
        self, name, num_slots, num_segments, segment_bytes, num_claims,
        digest, config,
    ):
        total = self._total_bytes(num_slots, num_segments, segment_bytes, num_claims)
        try:
            block = _attach_block(name)
        except FileNotFoundError:
            block = None
        if block is not None:
            try:
                self._validate_existing(block.buf, block.size, digest, config)
            except _StoreRejected as rejected:
                self.rejected_store = rejected.reason
                try:
                    block.unlink()
                except FileNotFoundError:  # pragma: no cover - raced
                    pass
                block.close()
            else:
                self.warm_started = True
                return block
        block = _shared_memory.SharedMemory(create=True, size=total, name=name)
        self._write_header(
            block.buf, num_slots, num_segments, segment_bytes, num_claims,
            digest, config,
        )
        return block

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def active(self) -> bool:
        """Whether the block is still mapped (clients can attach)."""
        return self._active

    @property
    def path(self) -> Optional[str]:
        """Filesystem path of a disk-backed store (``None`` for shm)."""
        return self._path

    @property
    def persistent(self) -> bool:
        """Whether :meth:`close` keeps the backing for a next incarnation."""
        return self._persistent

    @property
    def _segments_offset(self) -> int:
        handle = self.handle
        return (
            _HEADER_BYTES
            + handle.num_slots * _SLOT_BYTES
            + handle.num_claims * _CLAIM_BYTES
        )

    @property
    def reclaim_count(self) -> int:
        """Total segment reclaims over the store's whole (persisted) life."""
        (count,) = struct.unpack_from("<Q", self._shm.buf, _H_RECLAIMS)
        return int(count)

    def reader(self) -> BoundStoreClient:
        """A read-only client over the owner's own mapping (for stats/tests).

        The client borrows this store's mapping: closing it does not unmap
        the owner's block.
        """
        return BoundStoreClient(
            self._shm, self.handle, segment=None, owns_mapping=False
        )

    def stats(self) -> dict:
        """Global occupancy: filled slots, per-segment usage, reclaims."""
        handle = self.handle
        buf = self._shm.buf
        # one vectorised read instead of num_slots unpack calls; the
        # snapshot is racy against concurrent publishes but monotonic.
        # Tombstones (no present bit) do not count as filled.
        words = np.frombuffer(
            buf, dtype="<u8", count=handle.num_slots, offset=_HEADER_BYTES
        )
        filled = int(np.count_nonzero(words >> 63))
        (claimed,) = struct.unpack_from("<I", buf, _H_NEXT_SEGMENT)
        segments_offset = self._segments_offset
        used = []
        generations = []
        for segment in range(min(claimed, handle.num_segments)):
            base = segments_offset + segment * handle.segment_bytes
            (cursor,) = struct.unpack_from("<Q", buf, base)
            (generation,) = struct.unpack_from("<I", buf, base + 8)
            used.append(max(0, cursor - _SEGMENT_HEADER_BYTES))
            generations.append(int(generation))
        active_claims = 0
        if handle.num_claims:
            claims_offset = _HEADER_BYTES + handle.num_slots * _SLOT_BYTES
            pids = np.frombuffer(
                buf,
                dtype="<u4",
                count=handle.num_claims * (_CLAIM_BYTES // 4),
                offset=claims_offset,
            )[2 :: _CLAIM_BYTES // 4]
            active_claims = int(np.count_nonzero(pids))
        return {
            "num_slots": handle.num_slots,
            "filled_slots": filled,
            "occupancy": filled / handle.num_slots,
            "claimed_segments": int(claimed),
            "segment_used_bytes": used,
            "segment_generations": generations,
            "num_claims": handle.num_claims,
            "active_claims": active_claims,
            "reclaim_count": self.reclaim_count,
            "warm_started": self.warm_started,
            "rejected_store": self.rejected_store,
            "persistent": self._persistent,
            "path": self._path,
            "nbytes": self.nbytes,
        }

    # ------------------------------------------------------------------ #
    # generation-based segment recycling
    # ------------------------------------------------------------------ #
    def _segment_records(self, segment: int) -> Iterator[bytes]:
        """Yield the encoded key of every record in ``segment``, in order.

        Walks the append-only layout from the segment header to the cursor;
        stops early at anything inconsistent (a torn tail cannot derail the
        scan).  Owner-side only — callers coordinate with writers (the
        service runs this from its dispatcher, between jobs).
        """
        handle = self.handle
        buf = self._shm.buf
        base = self._segments_offset + segment * handle.segment_bytes
        (cursor,) = struct.unpack_from("<Q", buf, base)
        cursor = min(int(cursor), handle.segment_bytes)
        offset = _SEGMENT_HEADER_BYTES
        while offset + _RECORD_HEADER_BYTES <= cursor:
            magic, key_len, num_pairs, key_crc = struct.unpack_from(
                "<IIII", buf, base + offset
            )
            if magic != _RECORD_MAGIC:
                break
            payload_offset = _RECORD_HEADER_BYTES + _pad8(key_len)
            record_bytes = payload_offset + 16 * num_pairs
            if offset + record_bytes > cursor:
                break
            key_bytes = bytes(
                buf[base + offset + _RECORD_HEADER_BYTES :
                    base + offset + _RECORD_HEADER_BYTES + key_len]
            )
            if zlib.crc32(key_bytes) != key_crc:
                break
            yield key_bytes
            offset += record_bytes

    def reclaim_segment(self, segment: int) -> None:
        """Recycle one segment: bump its generation, scrub its slots.

        Under the writer lock: the segment's generation advances (so every
        already-published slot word pointing into it fails the read-side
        generation check), its slots are overwritten with tombstones (so
        probe chains stay intact while the slots become reusable), its
        cursor resets, and the header's reclaim counter advances — which is
        what releases every client's ``full`` latch on their next write
        attempt.  Callers must quiesce writers first (the service calls
        this from its dispatcher thread, between jobs — a natural barrier);
        concurrent *readers* are safe at any time thanks to the generation
        re-check after payload copy.
        """
        handle = self.handle
        if not 0 <= segment < handle.num_segments:
            raise ValueError(f"segment {segment} out of range")
        buf = self._shm.buf
        with handle.lock:
            base = self._segments_offset + segment * handle.segment_bytes
            (generation,) = struct.unpack_from("<I", buf, base + 8)
            struct.pack_into("<I", buf, base + 8, (generation + 1) & 0xFFFFFFFF)
            struct.pack_into("<Q", buf, base, _SEGMENT_HEADER_BYTES)
            words = np.frombuffer(
                buf, dtype="<u8", count=handle.num_slots, offset=_HEADER_BYTES
            )
            stale = ((words >> 63) > 0) & (((words >> 32) & 0xFF) == segment)
            words[stale] = _TOMBSTONE
            (reclaims,) = struct.unpack_from("<Q", buf, _H_RECLAIMS)
            struct.pack_into("<Q", buf, _H_RECLAIMS, reclaims + 1)

    def reclaim_round_robin(self) -> Optional[int]:
        """Recycle the next claimed segment in rotation; returns its index.

        The saturation-pressure path: when publishes are being rejected the
        owner retires one segment per call, cycling through the claimed
        segments so every worker's oldest columns are evicted in turn —
        FIFO-ish eviction without per-record bookkeeping.  ``None`` when no
        segment has been claimed yet (nothing to free).
        """
        (claimed,) = struct.unpack_from("<I", self._shm.buf, _H_NEXT_SEGMENT)
        claimed = min(int(claimed), self.handle.num_segments)
        if claimed == 0:
            return None
        segment = self._reclaim_next % claimed
        self._reclaim_next += 1
        self.reclaim_segment(segment)
        return segment

    def reclaim_stale(
        self,
        identity_is_current: Callable[[tuple], bool],
        threshold: float = STALE_RECLAIM_FRACTION,
    ) -> list[int]:
        """Recycle segments dominated by superseded-generation columns.

        Decodes every record key (the ``repr``-encoded tuples of
        :func:`encode_stable_key`) and asks ``identity_is_current`` about
        each participating object identity — the service passes a predicate
        over its database's per-position generations, so ``("db", position,
        generation)`` identities that a mutation superseded (PR 9 made
        their keys structurally unreachable) count as stale.  A segment
        whose stale fraction reaches ``threshold`` is reclaimed.  Returns
        the reclaimed segment indices.
        """
        import ast

        reclaimed = []
        (claimed,) = struct.unpack_from("<I", self._shm.buf, _H_NEXT_SEGMENT)
        for segment in range(min(int(claimed), self.handle.num_segments)):
            total = 0
            stale = 0
            for key_bytes in self._segment_records(segment):
                total += 1
                try:
                    key = ast.literal_eval(key_bytes.decode())
                    identities = [part[0] for part in key[2:5]]
                except (ValueError, SyntaxError, IndexError, TypeError):
                    continue  # foreign key shape: never count as stale
                if any(not identity_is_current(identity) for identity in identities):
                    stale += 1
            if total > 0 and stale / total >= threshold:
                self.reclaim_segment(segment)
                reclaimed.append(segment)
        return reclaimed

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Detach (idempotent); ephemeral stores also unlink their block.

        Persistent stores (``path=`` or ``name=``/``persistent=True``)
        flush and keep their backing so a next incarnation can warm-start
        from it — POSIX keeps shm blocks alive until unlinked, and the
        page cache carries file-backed dirty pages even past a SIGKILL of
        this process.  Use :meth:`destroy` to delete a persistent backing.
        """
        if not self._active:
            return
        self._active = False
        self._finalizer.detach()
        if self._persistent:
            _close_block(self._shm)
        else:
            _cleanup_block(self._shm)

    def destroy(self) -> None:
        """Delete a persistent backing (file or named block); then close."""
        if self._path is not None:
            self.close()
            try:
                os.unlink(self._path)
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            return
        if self._active:
            self._active = False
            self._finalizer.detach()
            _cleanup_block(self._shm)

    def __enter__(self) -> "SharedBoundStore":
        """Context-manager entry: the store itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: close the store."""
        self.close()


def _close_block(shm) -> None:
    """Detach-only cleanup for persistent backings (never unlinks)."""
    try:
        flush = getattr(shm, "flush", None)
        if flush is not None:
            flush()
    except Exception:  # pragma: no cover - backing already gone
        pass
    try:
        shm.close()
    except Exception:  # pragma: no cover - already detached
        pass
