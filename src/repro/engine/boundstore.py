"""Cross-worker shared pair-bounds store.

Since PR 1 the engine memoises the domination-bound matrix columns the
batched kernel produces — but only per process: with ``w`` workers the
parallel path recomputes up to ``w`` copies of every column the serial path
computes once.  This module extends the PR-4 shared-memory machinery
(``repro/uncertain/sharedmem.py``) from *shipping the dataset* to *sharing
the read-mostly bounds cache itself*: one worker computes a column, every
worker serves it.

Design (the "Shared refinement cache" section of ``docs/architecture.md``
documents the same protocol from the consumer's point of view):

* **One block, three regions.**  A single ``multiprocessing.shared_memory``
  block holds a fixed header, a fixed-slot hash index (open addressing,
  8 bytes per slot) and one append-only *data segment per worker*.
* **Stable keys.**  The process-local memo keys the engine uses are built
  from process-unique tree tokens, so they cannot cross a process boundary.
  :func:`stable_object_key` translates each participating object into a
  process-independent identity — its database position for members, a
  content digest for ad-hoc query objects — and
  :meth:`~repro.engine.context.RefinementContext` derives the shared key
  ``(axis_policy, (candidate, depth), (target, depth), (reference, depth),
  (p, criterion))`` from it.  Entries are deterministic functions of their
  key, so a shared hit is bit-identical to recomputation.
* **Single-writer publish.**  Every worker appends records only to its own
  segment, so record payloads are never written concurrently.  A record is
  fully written *before* its index slot is published, and slot publishes are
  serialised by one writer lock, so the index never holds a pointer to a
  half-written record.
* **Lock-free validated reads.**  Readers never take the lock: they read the
  8-byte slot word, follow it into the segment and *validate* the record
  (magic, key length, CRC of the key bytes, full key comparison, payload
  bounds) before trusting it.  A reader that loses every race still returns
  either ``None`` or a fully consistent column — torn reads are structurally
  impossible because published records are immutable and validation rejects
  anything else.
* **Graceful fallback.**  When shared memory is unavailable (platform,
  ``REPRO_DISABLE_SHARED_MEMORY``/``REPRO_DISABLE_SHARED_BOUNDS``), the
  store is full, the index probe limit is exhausted, or a worker arrives
  after every segment is claimed, publishing simply stops (or never starts)
  and the engine falls back to the process-local memo — results stay
  bit-identical either way, only duplicate work returns.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import os
import pickle
import struct
import weakref
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..uncertain.sharedmem import (
    _OWNED_NAMES,
    _attach_block,
    _cleanup_block,
    _shared_memory,
    shared_memory_available,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..uncertain import UncertainDatabase, UncertainObject

__all__ = [
    "BoundStoreClient",
    "BoundStoreHandle",
    "SharedBoundStore",
    "bound_store_available",
    "encode_stable_key",
    "stable_object_key",
]

#: Extra kill-switch for just the bounds store (the dataset transport keeps
#: honouring ``REPRO_DISABLE_SHARED_MEMORY``, which disables both).
DISABLE_BOUNDS_ENV = "REPRO_DISABLE_SHARED_BOUNDS"

#: Default number of index slots (8 bytes each).
DEFAULT_SLOTS = 8192

#: Default bytes of append-only record space per worker segment.
DEFAULT_SEGMENT_BYTES = 4 << 20

#: Open-addressing probe limit; lookups and publishes give up after this many
#: consecutive slots (the fallback is the process-local memo, never an error).
PROBE_LIMIT = 32

_HEADER_BYTES = 64
_SLOT_BYTES = 8
_SEGMENT_HEADER_BYTES = 16
_RECORD_HEADER_BYTES = 16
#: Leftover segment space below this is treated as exhausted (header plus a
#: short key plus a one-pair column — no real record is smaller).
_MIN_RECORD_BYTES = _RECORD_HEADER_BYTES + 64

#: Consecutive probe-window exhaustions after which a writer stops trying to
#: publish — a saturated index would otherwise cost every future publish a
#: payload copy plus a full probe scan under the writer lock.
_INDEX_FULL_LATCH = 8
_STORE_MAGIC = 0x42535452  # "BSTR"
_RECORD_MAGIC = 0x52454342  # "RECB"
_PRESENT = 1 << 63

_block_counter = itertools.count()


def bound_store_available() -> bool:
    """Whether the cross-worker shared bounds store can be used here.

    Requires working ``multiprocessing.shared_memory`` (and honours the
    ``REPRO_DISABLE_SHARED_MEMORY`` kill-switch through
    :func:`~repro.uncertain.sharedmem.shared_memory_available`); the
    dedicated ``REPRO_DISABLE_SHARED_BOUNDS`` variable disables only the
    bounds store while keeping the dataset transport active.
    """
    if not shared_memory_available():
        return False
    if os.environ.get(DISABLE_BOUNDS_ENV):
        return False
    return True


# --------------------------------------------------------------------- #
# stable cross-process keys
# --------------------------------------------------------------------- #
def stable_object_key(database: "UncertainDatabase", obj: "UncertainObject") -> tuple:
    """Process-independent identity of ``obj`` relative to ``database``.

    Database members key by position *and generation*
    (``("db", index, generation)``) — positions and generations are
    identical in every process that received the same database snapshot,
    including workers that *mapped* it through shared memory or advanced it
    by replaying mutation deltas.  Folding the generation in is what makes
    the store survive mutations with per-column granularity: an untouched
    object keeps its key (and therefore its published columns) across
    epochs, while a mutated object gets a fresh generation and its stale
    columns simply become unreachable — generations are unique per object
    content within a snapshot lineage, so a ``(position, generation)`` pair
    can never alias two different contents even after deletes shift
    positions.  Ad-hoc objects (e.g. query objects shipped inside requests)
    key by a content digest of their pickle (``("pickle", hexdigest)``):
    the worker's unpickled copy digests to the same value as the parent's
    original, so both sides derive the same shared-store key.  The digest
    is memoised in a weak side table — never written onto the object, which
    would change its future pickles and therefore the digests other
    processes compute.  A digest mismatch can only ever cause a cache
    *miss*, never a wrong hit, because the full key is verified on every
    read.
    """
    position = database.position_of(obj)
    if position is not None:
        return ("db", position, database.generation_of(position))
    digest = _DIGESTS.get(obj)
    if digest is None:
        digest = hashlib.blake2b(
            pickle.dumps(obj, protocol=4), digest_size=16
        ).hexdigest()
        _DIGESTS[obj] = digest
    return ("pickle", digest)


#: Content digests of ad-hoc objects, keyed weakly by the object itself so
#: transient query objects do not accumulate.
_DIGESTS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def encode_stable_key(key: tuple) -> bytes:
    """Deterministic byte encoding of a stable memo key.

    The key is a nested tuple of strings, ints and floats; ``repr`` is
    deterministic for those across processes of the same interpreter, and
    the result is only ever compared for equality, so no parsing is needed.
    """
    return repr(key).encode()


def _fingerprint(key_bytes: bytes) -> int:
    """64-bit content fingerprint used for slot addressing and tagging."""
    return int.from_bytes(
        hashlib.blake2b(key_bytes, digest_size=8).digest(), "little"
    )


def _pad8(n: int) -> int:
    return -(-n // 8) * 8


# --------------------------------------------------------------------- #
# handle
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class BoundStoreHandle:
    """What crosses the process boundary instead of the store.

    Carries the block name, the store geometry and the writer lock.  The
    lock is a :mod:`multiprocessing` primitive created from the worker
    pool's own context, so it travels to workers through the pool's normal
    process-creation channel (inherited under ``fork``, pickled by the
    spawn machinery otherwise) — exactly like the pool's other initargs.

    Attributes
    ----------
    shm_name:
        Name of the shared-memory block holding header, index and segments.
    num_slots:
        Number of 8-byte hash-index slots.
    num_segments:
        Number of per-worker data segments.
    segment_bytes:
        Bytes per data segment (including its small header).
    lock:
        Writer lock serialising segment claims and index-slot publishes.
        Readers never touch it.
    """

    shm_name: str
    num_slots: int
    num_segments: int
    segment_bytes: int
    lock: object


# --------------------------------------------------------------------- #
# client (reader in any process, writer in workers that claimed a segment)
# --------------------------------------------------------------------- #
class BoundStoreClient:
    """Per-process accessor of a shared bounds store.

    Reads are lock-free and allowed from any process that can attach the
    block.  Writes require a claimed segment: :meth:`from_handle` claims the
    next free one under the handle's lock (workers that arrive after all
    segments are taken become read-only — a graceful degradation, not an
    error).  All counters are process-local.
    """

    def __init__(
        self,
        shm,
        handle: BoundStoreHandle,
        segment: Optional[int],
        owns_mapping: bool = True,
    ):
        self._shm = shm
        self._buf = shm.buf
        self._handle = handle
        self._segment = segment
        # reader() clients borrow the owner's mapping and must never close
        # it; from_handle() clients attached their own and should
        self._owns_mapping = owns_mapping
        self._index_offset = _HEADER_BYTES
        self._segments_offset = _HEADER_BYTES + handle.num_slots * _SLOT_BYTES
        self._append = _SEGMENT_HEADER_BYTES
        self._full = False
        self._index_full_streak = 0
        #: Successful shared lookups (validated records returned).
        self.hits = 0
        #: Lookups that found no valid record.
        self.misses = 0
        #: Columns this client published into the index.
        self.publishes = 0
        #: Publishes skipped because another worker already published the key.
        self.duplicates = 0
        #: Publishes rejected because the segment or the index was full.
        self.rejected = 0
        #: Records a validated read rejected as corrupt (bad magic, CRC
        #: mismatch, or an out-of-bounds geometry field).  Distinct from a
        #: fingerprint collision, which is benign and keeps probing.
        self.corruptions = 0
        #: Latched on the first detected corruption: the client demotes
        #: itself to read-nothing/write-nothing and the tiered cache falls
        #: back to process-local memoisation (see ``context.py``).
        self._demoted = False

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_handle(cls, handle: BoundStoreHandle) -> "BoundStoreClient":
        """Attach to the store named by ``handle`` and claim a segment.

        Called inside worker processes by the pool initializer.  The
        segment claim (a read-increment-write of the header counter) runs
        under the handle's writer lock; when every segment is already
        claimed the client attaches read-only.  Attaching never adopts
        unlink responsibility — the creating process owns the block.
        """
        shm = _attach_block(handle.shm_name)
        segment: Optional[int] = None
        with handle.lock:
            (next_segment,) = struct.unpack_from("<I", shm.buf, 24)
            if next_segment < handle.num_segments:
                struct.pack_into("<I", shm.buf, 24, next_segment + 1)
                segment = next_segment
        return cls(shm, handle, segment)

    @property
    def writable(self) -> bool:
        """Whether this client owns a segment and can still publish into it."""
        return self._segment is not None and not self._full and not self._demoted

    @property
    def demoted(self) -> bool:
        """Whether this client saw store corruption and dropped to local-only.

        The validated-read path (magic + key CRC + bounds-checked geometry)
        makes a corrupt record unreadable, never a wrong answer; but a store
        someone scribbled on cannot be trusted for *future* records either,
        so the first detected corruption latches the client off.  The worker
        keeps serving batches from its process-local caches — graceful
        degradation, surfaced as ``shared_degraded`` in :class:`ChunkStats`.
        """
        return self._demoted

    def _note_corruption(self) -> None:
        self.corruptions += 1
        self._demoted = True

    @property
    def segment(self) -> Optional[int]:
        """Index of the claimed data segment (``None`` for read-only clients)."""
        return self._segment

    # ------------------------------------------------------------------ #
    # geometry helpers
    # ------------------------------------------------------------------ #
    def _slot_offset(self, slot: int) -> int:
        return self._index_offset + _SLOT_BYTES * slot

    def _segment_base(self, segment: int) -> int:
        return self._segments_offset + segment * self._handle.segment_bytes

    def _read_record(self, word: int, key_bytes: bytes, with_payload: bool = True):
        """Resolve an index word to its validated record, or ``None``.

        Validation order matters: every field is bounds-checked before it is
        used to address memory, so even an (astronomically unlikely) torn
        slot word can only produce a rejected lookup, never a torn read.
        Returns ``None`` for invalid records and ``False`` for valid records
        of a *different* key (fingerprint collision — keep probing).  With
        ``with_payload=False`` a key match returns ``True`` without copying
        the column out — used by the publish path's duplicate check, which
        runs under the writer lock and must stay short.
        """
        handle = self._handle
        segment = (word >> 32) & 0xFF
        offset = word & 0xFFFFFFFF
        if segment >= handle.num_segments:
            return None
        if offset < _SEGMENT_HEADER_BYTES:
            return None
        if offset + _RECORD_HEADER_BYTES > handle.segment_bytes:
            return None
        base = self._segment_base(segment) + offset
        magic, key_len, num_pairs, key_crc = struct.unpack_from(
            "<IIII", self._buf, base
        )
        if magic != _RECORD_MAGIC:
            return None
        if key_len != len(key_bytes):
            return False
        payload_offset = _RECORD_HEADER_BYTES + _pad8(key_len)
        record_bytes = payload_offset + 16 * num_pairs
        if offset + record_bytes > handle.segment_bytes:
            return None
        stored_key = bytes(self._buf[base + _RECORD_HEADER_BYTES : base + _RECORD_HEADER_BYTES + key_len])
        if zlib.crc32(stored_key) != key_crc:
            return None
        if stored_key != key_bytes:
            return False
        if not with_payload:
            return True
        lower = np.frombuffer(
            self._buf, dtype="<f8", count=num_pairs, offset=base + payload_offset
        ).copy()
        upper = np.frombuffer(
            self._buf,
            dtype="<f8",
            count=num_pairs,
            offset=base + payload_offset + 8 * num_pairs,
        ).copy()
        return lower, upper

    # ------------------------------------------------------------------ #
    # read path (lock-free)
    # ------------------------------------------------------------------ #
    def get(self, key_bytes: bytes) -> Optional[tuple[np.ndarray, np.ndarray]]:
        """Look one bounds column up; returns ``(lower, upper)`` or ``None``.

        Lock-free: probes up to :data:`PROBE_LIMIT` index slots from the
        key's home slot, stopping at the first empty slot (entries are never
        deleted, so an empty slot terminates the probe sequence).  Returned
        arrays are private copies — they stay valid after the store unlinks.
        """
        fingerprint = _fingerprint(key_bytes)
        tag = (fingerprint >> 41) & 0x7FFFFF
        num_slots = self._handle.num_slots
        home = fingerprint % num_slots
        for i in range(PROBE_LIMIT):
            (word,) = struct.unpack_from(
                "<Q", self._buf, self._slot_offset((home + i) % num_slots)
            )
            if word == 0:
                break
            if not word & _PRESENT or ((word >> 40) & 0x7FFFFF) != tag:
                continue
            record = self._read_record(word, key_bytes)
            if record is False:
                continue  # benign fingerprint collision: keep probing
            if record is None:
                # validation failed — someone scribbled on the store.  The
                # lookup stays safe (nothing was returned), but the client
                # stops trusting the store from here on.
                self._note_corruption()
                continue
            self.hits += 1
            return record
        self.misses += 1
        return None

    # ------------------------------------------------------------------ #
    # write path (single writer per segment; slot publish under the lock)
    # ------------------------------------------------------------------ #
    def put(self, key_bytes: bytes, lower: np.ndarray, upper: np.ndarray) -> bool:
        """Publish one bounds column; returns True when it entered the index.

        The record is appended to this client's own segment *first* (no
        other process writes there), then its index slot is published under
        the writer lock — so a concurrent reader either finds the complete
        record or nothing.  Returns False without error when the client is
        read-only, the segment or the probe window is full, or another
        worker already published the same key (the append is then rolled
        back by simply not advancing the append cursor).
        """
        if self._segment is None or self._full:
            self.rejected += 1
            return False
        lower = np.ascontiguousarray(lower, dtype="<f8")
        upper = np.ascontiguousarray(upper, dtype="<f8")
        num_pairs = int(lower.shape[0])
        if upper.shape[0] != num_pairs:
            raise ValueError("lower and upper bounds must have the same length")
        handle = self._handle
        payload_offset = _RECORD_HEADER_BYTES + _pad8(len(key_bytes))
        record_bytes = payload_offset + 16 * num_pairs
        if self._append + record_bytes > handle.segment_bytes:
            # this record does not fit, but smaller columns still might —
            # only stop trying once the leftover space is below any
            # plausible record size
            if handle.segment_bytes - self._append < _MIN_RECORD_BYTES:
                self._full = True
            self.rejected += 1
            return False
        base = self._segment_base(self._segment) + self._append
        struct.pack_into(
            "<IIII",
            self._buf,
            base,
            _RECORD_MAGIC,
            len(key_bytes),
            num_pairs,
            zlib.crc32(key_bytes),
        )
        self._buf[base + _RECORD_HEADER_BYTES : base + _RECORD_HEADER_BYTES + len(key_bytes)] = key_bytes
        np.frombuffer(
            self._shm.buf, dtype="<f8", count=num_pairs, offset=base + payload_offset
        )[:] = lower
        np.frombuffer(
            self._shm.buf,
            dtype="<f8",
            count=num_pairs,
            offset=base + payload_offset + 8 * num_pairs,
        )[:] = upper

        fingerprint = _fingerprint(key_bytes)
        tag = (fingerprint >> 41) & 0x7FFFFF
        num_slots = handle.num_slots
        home = fingerprint % num_slots
        word = _PRESENT | (tag << 40) | (self._segment << 32) | self._append
        with handle.lock:
            for i in range(PROBE_LIMIT):
                slot_offset = self._slot_offset((home + i) % num_slots)
                (existing,) = struct.unpack_from("<Q", self._buf, slot_offset)
                if existing == 0:
                    struct.pack_into("<Q", self._buf, slot_offset, word)
                    self._append += record_bytes
                    struct.pack_into(
                        "<Q",
                        self._buf,
                        self._segment_base(self._segment),
                        self._append,
                    )
                    self.publishes += 1
                    self._index_full_streak = 0
                    return True
                if (existing >> 40) & 0x7FFFFF == tag:
                    if self._read_record(existing, key_bytes, with_payload=False) is True:
                        # someone else computed the same deterministic column
                        self.duplicates += 1
                        self._index_full_streak = 0
                        return False
        # probe window exhausted: the index region is (locally) saturated.
        # A latch after several consecutive exhaustions stops future
        # publishes from paying the payload copy plus a full probe scan
        # under the writer lock just to fail again.
        self.rejected += 1
        self._index_full_streak += 1
        if self._index_full_streak >= _INDEX_FULL_LATCH:
            self._full = True
        return False

    # ------------------------------------------------------------------ #
    # introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Process-local counters plus this client's segment occupancy."""
        used = None
        if self._segment is not None:
            used = self._append - _SEGMENT_HEADER_BYTES
        return {
            "hits": self.hits,
            "misses": self.misses,
            "publishes": self.publishes,
            "duplicates": self.duplicates,
            "rejected": self.rejected,
            "corruptions": self.corruptions,
            "demoted": self._demoted,
            "segment": self._segment,
            "segment_used_bytes": used,
        }

    def close(self) -> None:
        """Detach this client (never unlinks — the creator owns that).

        Only closes the underlying mapping when this client attached it
        itself; a client borrowed from :meth:`SharedBoundStore.reader`
        leaves the owner's mapping intact.
        """
        self._buf = None
        if self._owns_mapping:
            try:
                self._shm.close()
            except Exception:  # pragma: no cover - already detached
                pass


# --------------------------------------------------------------------- #
# parent-side owner
# --------------------------------------------------------------------- #
class SharedBoundStore:
    """Parent-side owner of one shared bounds block.

    Created by :class:`~repro.engine.service.QueryService` (one per service)
    before its worker pool starts; the :attr:`handle` travels to every
    worker through the pool initializer, where
    :meth:`BoundStoreClient.from_handle` attaches and claims a segment.  The
    creating process owns the block and unlinks it on :meth:`close` (with a
    :mod:`weakref` finalizer backing interpreter-exit and GC paths, like the
    dataset export).
    """

    def __init__(
        self,
        num_slots: int = DEFAULT_SLOTS,
        num_segments: int = 2,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        mp_context=None,
    ):
        if not bound_store_available():
            raise RuntimeError(
                "the shared bounds store is unavailable "
                f"(no shared memory, or disabled via {DISABLE_BOUNDS_ENV})"
            )
        if num_slots < 64:
            raise ValueError("num_slots must be at least 64")
        if not 1 <= num_segments <= 255:
            raise ValueError("num_segments must be between 1 and 255")
        if segment_bytes < 4096:
            raise ValueError("segment_bytes must be at least 4096")
        if segment_bytes > 0xFFFFFFFF:
            raise ValueError("segment_bytes must fit 32-bit record offsets")
        total = _HEADER_BYTES + num_slots * _SLOT_BYTES + num_segments * segment_bytes
        name = f"repro_bs_{os.getpid()}_{next(_block_counter)}"
        self._shm = _shared_memory.SharedMemory(create=True, size=total, name=name)
        # POSIX shared memory is zero-filled on creation, so the index and
        # the segment claim counter start empty; only the header identity
        # fields need writing.
        struct.pack_into(
            "<IIII", self._shm.buf, 0, _STORE_MAGIC, 1, num_slots, num_segments
        )
        struct.pack_into("<Q", self._shm.buf, 16, segment_bytes)
        context = mp_context if mp_context is not None else multiprocessing
        self.handle = BoundStoreHandle(
            shm_name=self._shm.name,
            num_slots=num_slots,
            num_segments=num_segments,
            segment_bytes=segment_bytes,
            lock=context.Lock(),
        )
        #: Total bytes of the shared block (header + index + segments).
        self.nbytes = total
        self._active = True
        _OWNED_NAMES.add(self._shm.name)
        self._finalizer = weakref.finalize(self, _cleanup_block, self._shm)

    @property
    def active(self) -> bool:
        """Whether the block is still linked (clients can attach)."""
        return self._active

    def reader(self) -> BoundStoreClient:
        """A read-only client over the owner's own mapping (for stats/tests).

        The client borrows this store's mapping: closing it does not unmap
        the owner's block.
        """
        return BoundStoreClient(
            self._shm, self.handle, segment=None, owns_mapping=False
        )

    def stats(self) -> dict:
        """Global occupancy: filled slots and per-segment used bytes."""
        handle = self.handle
        buf = self._shm.buf
        # one vectorised read instead of num_slots unpack calls; the
        # snapshot is racy against concurrent publishes but monotonic
        filled = int(
            np.count_nonzero(
                np.frombuffer(
                    buf, dtype="<u8", count=handle.num_slots, offset=_HEADER_BYTES
                )
            )
        )
        (claimed,) = struct.unpack_from("<I", buf, 24)
        segments_offset = _HEADER_BYTES + handle.num_slots * _SLOT_BYTES
        used = []
        for segment in range(min(claimed, handle.num_segments)):
            (cursor,) = struct.unpack_from(
                "<Q", buf, segments_offset + segment * handle.segment_bytes
            )
            used.append(max(0, cursor - _SEGMENT_HEADER_BYTES))
        return {
            "num_slots": handle.num_slots,
            "filled_slots": filled,
            "claimed_segments": int(claimed),
            "segment_used_bytes": used,
            "nbytes": self.nbytes,
        }

    def close(self) -> None:
        """Unlink the block (idempotent).

        Existing attachments keep their mappings until they exit — POSIX
        keeps unlinked segments alive while mapped — but new processes can
        no longer attach.
        """
        if not self._active:
            return
        self._active = False
        self._finalizer.detach()
        _cleanup_block(self._shm)

    def __enter__(self) -> "SharedBoundStore":
        """Context-manager entry: the store itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Context-manager exit: unlink the block."""
        self.close()
