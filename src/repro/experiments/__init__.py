"""Experiment harness and per-figure reproductions of the paper's evaluation."""

from .harness import ExperimentTable, run_query_batch
from .figures import (
    ablation_ugf_truncation,
    ablation_ugf_vs_regular_gf,
    figure5_mc_runtime,
    figure6a_pruning_power,
    figure6b_uncertainty_per_iteration,
    figure7_uncertainty_vs_runtime,
    figure8_predicate_queries,
    figure9a_influence_objects,
    figure9b_database_size,
)
from .ablations import (
    ablation_adaptive_refinement,
    ablation_axis_policy,
    ablation_decomposition_depth,
    ablation_expected_distance_agreement,
)

__all__ = [
    "ExperimentTable",
    "run_query_batch",
    "ablation_ugf_truncation",
    "ablation_ugf_vs_regular_gf",
    "ablation_adaptive_refinement",
    "ablation_axis_policy",
    "ablation_decomposition_depth",
    "ablation_expected_distance_agreement",
    "figure5_mc_runtime",
    "figure6a_pruning_power",
    "figure6b_uncertainty_per_iteration",
    "figure7_uncertainty_vs_runtime",
    "figure8_predicate_queries",
    "figure9a_influence_objects",
    "figure9b_database_size",
]
