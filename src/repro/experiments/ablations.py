"""Ablation experiments for the design choices called out in DESIGN.md.

These go beyond the paper's figures: they quantify the impact of the
decomposition depth caps, the split-axis policy, the adaptive candidate
refinement heuristic (the paper's "future work" item) and the semantic gap of
the expected-distance shortcut.  Each function returns an
:class:`~repro.experiments.harness.ExperimentTable` and is exercised both by a
benchmark and by the test suite.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..baselines import expected_distance_knn
from ..core import IDCA, MaxIterations
from ..datasets import generate_query_workload, uniform_rectangle_database
from ..queries import probabilistic_knn_threshold
from .harness import ExperimentTable

__all__ = [
    "ablation_decomposition_depth",
    "ablation_axis_policy",
    "ablation_adaptive_refinement",
    "ablation_expected_distance_agreement",
]


def ablation_decomposition_depth(
    depths: Sequence[int] = (1, 2, 3, 4),
    num_objects: int = 1_000,
    max_extent: float = 0.01,
    iterations: int = 5,
    num_queries: int = 3,
    target_rank: int = 10,
    seed: int = 0,
) -> ExperimentTable:
    """Quality/cost trade-off of the target/reference decomposition depth cap.

    The paper discusses the kd-tree height ``h`` as a trade-off between
    approximation quality and efficiency (Section V); this ablation varies the
    cap on the target and reference decomposition and reports the final
    accumulated uncertainty and the runtime.
    """
    table = ExperimentTable(
        name="ablation_decomposition_depth",
        description="uncertainty and runtime vs target/reference depth cap",
        columns=("depth_cap", "uncertainty", "runtime_seconds"),
    )
    database = uniform_rectangle_database(num_objects, max_extent=max_extent, seed=seed)
    workload = generate_query_workload(
        database, num_queries=num_queries, target_rank=target_rank, seed=seed
    )
    for depth in depths:
        idca = IDCA(database, max_target_depth=depth, max_reference_depth=depth)
        start = time.perf_counter()
        uncertainty = 0.0
        for pair in workload:
            run = idca.domination_count(
                pair.target_index,
                pair.reference,
                stop=MaxIterations(iterations),
                max_iterations=iterations,
            )
            uncertainty += run.bounds.uncertainty()
        table.add_row(
            depth_cap=depth,
            uncertainty=uncertainty / len(workload),
            runtime_seconds=(time.perf_counter() - start) / len(workload),
        )
    return table


def ablation_axis_policy(
    num_objects: int = 1_000,
    max_extent: float = 0.01,
    iterations: int = 5,
    num_queries: int = 3,
    target_rank: int = 10,
    seed: int = 0,
) -> ExperimentTable:
    """Round-robin vs widest-extent split-axis policy of the decomposition."""
    table = ExperimentTable(
        name="ablation_axis_policy",
        description="final uncertainty per split-axis policy",
        columns=("policy", "uncertainty", "runtime_seconds"),
    )
    database = uniform_rectangle_database(num_objects, max_extent=max_extent, seed=seed)
    workload = generate_query_workload(
        database, num_queries=num_queries, target_rank=target_rank, seed=seed
    )
    for policy in ("round_robin", "widest"):
        idca = IDCA(database, axis_policy=policy)
        start = time.perf_counter()
        uncertainty = 0.0
        for pair in workload:
            run = idca.domination_count(
                pair.target_index,
                pair.reference,
                stop=MaxIterations(iterations),
                max_iterations=iterations,
            )
            uncertainty += run.bounds.uncertainty()
        table.add_row(
            policy=policy,
            uncertainty=uncertainty / len(workload),
            runtime_seconds=(time.perf_counter() - start) / len(workload),
        )
    return table


def ablation_adaptive_refinement(
    thresholds: Sequence[float] = (0.0, 0.1, 0.25),
    num_objects: int = 1_000,
    max_extent: float = 0.02,
    iterations: int = 6,
    num_queries: int = 3,
    target_rank: int = 10,
    seed: int = 0,
) -> ExperimentTable:
    """Adaptive candidate refinement vs the uniform schedule.

    The row with ``threshold = uniform`` is the paper's Algorithm 1 (split
    every influence object every iteration); the other rows refine an object
    only while its aggregated bound width exceeds the threshold.
    """
    table = ExperimentTable(
        name="ablation_adaptive_refinement",
        description="uncertainty, partitions and runtime of adaptive refinement",
        columns=("threshold", "uncertainty", "max_partitions", "runtime_seconds"),
    )
    database = uniform_rectangle_database(num_objects, max_extent=max_extent, seed=seed)
    workload = generate_query_workload(
        database, num_queries=num_queries, target_rank=target_rank, seed=seed
    )

    def run_config(idca: IDCA) -> tuple[float, float, float]:
        start = time.perf_counter()
        uncertainty = 0.0
        partitions = 0
        for pair in workload:
            run = idca.domination_count(
                pair.target_index,
                pair.reference,
                stop=MaxIterations(iterations),
                max_iterations=iterations,
            )
            uncertainty += run.bounds.uncertainty()
            partitions = max(partitions, run.iterations[-1].candidate_partitions)
        elapsed = (time.perf_counter() - start) / len(workload)
        return uncertainty / len(workload), partitions, elapsed

    uncertainty, partitions, runtime = run_config(IDCA(database))
    table.add_row(
        threshold="uniform",
        uncertainty=uncertainty,
        max_partitions=partitions,
        runtime_seconds=runtime,
    )
    for threshold in thresholds:
        uncertainty, partitions, runtime = run_config(
            IDCA(
                database,
                adaptive_candidate_refinement=True,
                adaptive_width_threshold=threshold,
            )
        )
        table.add_row(
            threshold=threshold,
            uncertainty=uncertainty,
            max_partitions=partitions,
            runtime_seconds=runtime,
        )
    return table


def ablation_expected_distance_agreement(
    num_objects: int = 300,
    max_extent: float = 0.05,
    k: int = 5,
    tau: float = 0.5,
    num_queries: int = 5,
    max_iterations: int = 6,
    seed: int = 0,
) -> ExperimentTable:
    """How often the expected-distance shortcut disagrees with the semantics.

    For every query the probabilistic threshold kNN answer (possible-world
    semantics) is compared against the top-k by expected distance; the table
    reports the per-query sizes of the two answers and of their symmetric
    difference.  Non-zero differences are the motivation for the paper's
    approach.
    """
    table = ExperimentTable(
        name="ablation_expected_distance_agreement",
        description="probabilistic kNN answer vs expected-distance top-k",
        columns=("query", "probabilistic_size", "heuristic_size", "symmetric_difference"),
    )
    database = uniform_rectangle_database(num_objects, max_extent=max_extent, seed=seed)
    rng = np.random.default_rng(seed)
    for q in range(num_queries):
        query_index = int(rng.integers(0, num_objects))
        probabilistic = probabilistic_knn_threshold(
            database, query_index, k=k, tau=tau, max_iterations=max_iterations
        )
        heuristic = expected_distance_knn(database, query_index, k=k)
        prob_set = set(probabilistic.result_indices()) | {
            m.index for m in probabilistic.undecided
        }
        heur_set = set(heuristic.result_indices())
        table.add_row(
            query=q,
            probabilistic_size=len(prob_set),
            heuristic_size=len(heur_set),
            symmetric_difference=len(prob_set ^ heur_set),
        )
    return table
