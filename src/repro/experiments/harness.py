"""Light-weight experiment harness: parameterised runs, result tables, reports.

Every figure of the paper's evaluation section has a corresponding experiment
function in :mod:`repro.experiments.figures`.  Those functions return
:class:`ExperimentTable` instances — plain tabular data (one row per plotted
point) that the benchmark suite executes, that ``EXPERIMENTS.md`` documents
and that users can export to CSV for plotting.

:func:`run_query_batch` is the harness-level entry point into the engine's
batch API: it evaluates a request workload against one shared refinement
context and summarises the per-query outcomes as an :class:`ExperimentTable`.
"""

from __future__ import annotations

import csv
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = ["ExperimentTable", "run_query_batch"]


@dataclass
class ExperimentTable:
    """A named table of experiment results.

    Attributes
    ----------
    name:
        Identifier of the experiment (e.g. ``"figure_6a"``).
    description:
        One-line description of what the experiment measures.
    columns:
        Ordered column names.
    rows:
        One dict per measured point; keys must be a subset of ``columns``.
    """

    name: str
    description: str
    columns: Sequence[str]
    rows: list[dict[str, Any]] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append a row; unknown keys raise to catch typos early."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)} for table {self.name}")
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(f"unknown column {name!r}")
        return [row.get(name) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterable[dict[str, Any]]:
        return iter(self.rows)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def to_text(self, float_format: str = "{:.4g}") -> str:
        """Render the table as aligned plain text (used by the examples)."""
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return float_format.format(value)
            return str(value)

        header = list(self.columns)
        body = [[fmt(row.get(col, "")) for col in header] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            f"# {self.name}: {self.description}",
            "  ".join(h.ljust(w) for h, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        lines.extend("  ".join(v.ljust(w) for v, w in zip(r, widths)) for r in body)
        return "\n".join(lines)

    def save_csv(self, path: str) -> None:
        """Write the table to a CSV file."""
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(self.columns))
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)


def run_query_batch(
    engine,
    requests: Sequence,
    name: str = "query_batch",
    description: str = "per-query outcomes of one engine batch",
) -> tuple[ExperimentTable, list]:
    """Evaluate ``requests`` through ``engine.evaluate_many`` and tabulate.

    Returns the summary table together with the raw results (in request
    order).  Threshold-style results contribute their match statistics; other
    result types only report their runtime.  The engine's shared refinement
    context makes the batch cheaper than issuing the queries independently —
    the table's ``seconds`` column is per-query wall-clock inside the batch.
    """
    table = ExperimentTable(
        name=name,
        description=description,
        columns=(
            "query",
            "kind",
            "matches",
            "undecided",
            "rejected",
            "pruned",
            "seconds",
        ),
    )
    results = []
    for position, request in enumerate(requests):
        start = time.perf_counter()
        result = request.run(engine)
        elapsed = time.perf_counter() - start
        results.append(result)
        matches = undecided = rejected = pruned = None
        if hasattr(result, "matches"):
            matches = len(result.matches)
            undecided = len(result.undecided)
            rejected = len(result.rejected)
            pruned = result.pruned
        table.add_row(
            query=position,
            kind=type(request).__name__,
            matches=matches,
            undecided=undecided,
            rejected=rejected,
            pruned=pruned,
            seconds=elapsed,
        )
    return table, results
