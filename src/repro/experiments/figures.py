"""Per-figure experiment implementations (Section VII of the paper).

Every public function reproduces one figure of the paper's evaluation and
returns an :class:`~repro.experiments.harness.ExperimentTable` whose rows are
the plotted points.  The default parameters are scaled down so the whole
suite runs on a laptop within seconds; the docstring of every function states
the parameters the paper used.  Absolute runtimes differ from the paper's
testbed — the benchmarks compare *shapes* (who wins, how trends evolve), which
is what ``EXPERIMENTS.md`` records.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from ..baselines import MonteCarloDominationCount, compare_pruning_power
from ..core import IDCA, MaxIterations, ThresholdDecision
from ..core.generating_functions import (
    UncertainGeneratingFunction,
    regular_gf_bounds,
)
from ..datasets import (
    IIPSimulationConfig,
    generate_query_workload,
    iip_iceberg_database,
    uniform_rectangle_database,
)
from ..engine import DominationCountQuery, QueryEngine
from ..uncertain import UncertainDatabase, discretise_database
from .harness import ExperimentTable

__all__ = [
    "figure5_mc_runtime",
    "figure6a_pruning_power",
    "figure6b_uncertainty_per_iteration",
    "figure7_uncertainty_vs_runtime",
    "figure8_predicate_queries",
    "figure9a_influence_objects",
    "figure9b_database_size",
    "ablation_ugf_vs_regular_gf",
    "ablation_ugf_truncation",
]


def _average_uncertainty(idca_result) -> float:
    """Average bound width per influence object (the Figure 7 quality metric)."""
    influence = max(1, idca_result.num_influence)
    return idca_result.bounds.uncertainty() / influence


# ---------------------------------------------------------------------- #
# Figure 5 — runtime of the Monte-Carlo partner vs sample size
# ---------------------------------------------------------------------- #
def figure5_mc_runtime(
    num_objects: int = 60,
    sample_sizes: Sequence[int] = (25, 50, 100, 200),
    num_queries: int = 2,
    max_extent: float = 0.004,
    target_rank: int = 10,
    seed: int = 0,
) -> ExperimentTable:
    """Runtime of the MC comparison partner for increasing sample size.

    Paper setting: 10,000 synthetic objects, 100 queries, sample sizes up to
    1,500 — producing runtimes of several hundred seconds per query.  The
    scaled-down defaults keep the same growth behaviour observable within
    seconds.
    """
    table = ExperimentTable(
        name="figure_5",
        description="MC runtime per query vs number of samples per object",
        columns=("samples", "runtime_per_query_seconds"),
    )
    database = uniform_rectangle_database(num_objects, max_extent=max_extent, seed=seed)
    workload = generate_query_workload(
        database, num_queries=num_queries, target_rank=target_rank, seed=seed
    )
    for samples in sample_sizes:
        mc = MonteCarloDominationCount(database, samples_per_object=samples, seed=seed)
        elapsed = 0.0
        for pair in workload:
            result = mc.domination_count_pmf(pair.target_index, pair.reference)
            elapsed += result.elapsed_seconds
        table.add_row(samples=samples, runtime_per_query_seconds=elapsed / len(workload))
    return table


# ---------------------------------------------------------------------- #
# Figure 6(a) — pruning power: optimal vs MinMax criterion
# ---------------------------------------------------------------------- #
def figure6a_pruning_power(
    max_extents: Sequence[float] = (0.0005, 0.002, 0.004, 0.006, 0.008, 0.01),
    num_objects: int = 2_000,
    num_queries: int = 5,
    target_rank: int = 10,
    seed: int = 0,
) -> ExperimentTable:
    """Candidates remaining after spatial pruning, optimal vs MinMax.

    Paper setting: 10,000 objects, 100 queries, extents from 0 to 0.01; the
    optimal criterion prunes roughly 20% more candidates than MinMax.
    """
    table = ExperimentTable(
        name="figure_6a",
        description="influence objects after the filter step vs max object extent",
        columns=("max_extent", "optimal_candidates", "minmax_candidates"),
    )
    for extent in max_extents:
        database = uniform_rectangle_database(num_objects, max_extent=extent, seed=seed)
        workload = generate_query_workload(
            database, num_queries=num_queries, target_rank=target_rank, seed=seed
        )
        optimal_counts = []
        minmax_counts = []
        for pair in workload:
            comparison = compare_pruning_power(
                database,
                database[pair.target_index],
                pair.reference,
                exclude_indices=[pair.target_index],
            )
            optimal_counts.append(comparison.optimal_candidates)
            minmax_counts.append(comparison.minmax_candidates)
        table.add_row(
            max_extent=extent,
            optimal_candidates=float(np.mean(optimal_counts)),
            minmax_candidates=float(np.mean(minmax_counts)),
        )
    return table


# ---------------------------------------------------------------------- #
# Figure 6(b) — accumulated uncertainty per iteration, optimal vs MinMax
# ---------------------------------------------------------------------- #
def figure6b_uncertainty_per_iteration(
    num_objects: int = 2_000,
    max_extent: float = 0.004,
    num_queries: int = 3,
    iterations: int = 6,
    target_rank: int = 10,
    seed: int = 0,
) -> ExperimentTable:
    """Accumulated uncertainty of the result after each refinement iteration.

    Paper setting: 10,000 objects; iteration 0 corresponds to the filter step
    only.  Both criteria converge to zero uncertainty; the optimal criterion
    starts lower and stays lower.
    """
    table = ExperimentTable(
        name="figure_6b",
        description="accumulated domination-count uncertainty per iteration",
        columns=("iteration", "optimal_uncertainty", "minmax_uncertainty"),
    )
    database = uniform_rectangle_database(num_objects, max_extent=max_extent, seed=seed)
    workload = generate_query_workload(
        database, num_queries=num_queries, target_rank=target_rank, seed=seed
    )
    per_iteration: dict[str, np.ndarray] = {}
    for criterion in ("optimal", "minmax"):
        engine = QueryEngine(database, criterion=criterion)
        runs = engine.evaluate_many(
            [
                DominationCountQuery(
                    pair.target_index,
                    pair.reference,
                    stop=MaxIterations(iterations),
                    max_iterations=iterations,
                )
                for pair in workload
            ]
        )
        totals = np.zeros(iterations + 1)
        for run in runs:
            history = [stat.uncertainty for stat in run.iterations]
            # pad with the final value when IDCA converged early
            while len(history) < iterations + 1:
                history.append(history[-1])
            totals += np.asarray(history[: iterations + 1])
        per_iteration[criterion] = totals / len(workload)
    for iteration in range(iterations + 1):
        table.add_row(
            iteration=iteration,
            optimal_uncertainty=float(per_iteration["optimal"][iteration]),
            minmax_uncertainty=float(per_iteration["minmax"][iteration]),
        )
    return table


# ---------------------------------------------------------------------- #
# Figure 7 — IDCA uncertainty vs fraction of the MC runtime
# ---------------------------------------------------------------------- #
def figure7_uncertainty_vs_runtime(
    dataset: str = "synthetic",
    sample_sizes: Sequence[int] = (25, 50, 100),
    num_objects: int = 60,
    max_extent: float = 0.004,
    iterations: int = 6,
    target_rank: int = 10,
    num_queries: int = 2,
    seed: int = 0,
) -> ExperimentTable:
    """Average uncertainty of IDCA as a function of the relative runtime to MC.

    Paper setting: synthetic data with 10,000 objects (Figure 7(a)) and the
    IIP iceberg data with 6,216 objects (Figure 7(b)), sample sizes 100, 500
    and 1000.  Both IDCA and MC operate on the identical discretised objects,
    exactly as described in Section VII-A, so the comparison is fair.
    """
    if dataset == "synthetic":
        base = uniform_rectangle_database(num_objects, max_extent=max_extent, seed=seed)
    elif dataset == "iip":
        # the IIP simulation normalises extents to its own maximum; scale it with
        # the requested max_extent so scaled-down runs keep a comparable density
        config = IIPSimulationConfig(
            num_objects=num_objects, max_extent=max_extent / 10.0, seed=seed
        )
        base = iip_iceberg_database(config)
    else:
        raise ValueError("dataset must be 'synthetic' or 'iip'")

    table = ExperimentTable(
        name=f"figure_7_{dataset}",
        description="avg. influence-object uncertainty vs fraction of MC runtime",
        columns=("samples", "iteration", "fraction_of_mc_runtime", "avg_uncertainty"),
    )
    workload = generate_query_workload(
        base, num_queries=num_queries, target_rank=target_rank, seed=seed
    )
    for samples in sample_sizes:
        rng = np.random.default_rng(seed)
        discrete = discretise_database(base, samples, rng)
        mc = MonteCarloDominationCount(discrete, samples_per_object=samples, seed=seed)
        engine = QueryEngine(discrete)
        mc_time = 0.0
        idca_time = np.zeros(iterations + 1)
        uncertainty = np.zeros(iterations + 1)
        runs = engine.evaluate_many(
            [
                DominationCountQuery(
                    pair.target_index,
                    pair.reference,
                    stop=MaxIterations(iterations),
                    max_iterations=iterations,
                )
                for pair in workload
            ]
        )
        for pair, run in zip(workload, runs):
            mc_result = mc.domination_count_pmf(pair.target_index, pair.reference)
            mc_time += mc_result.elapsed_seconds
            history_unc = [stat.uncertainty for stat in run.iterations]
            history_time = np.cumsum([stat.elapsed_seconds for stat in run.iterations])
            influence = max(1, run.num_influence)
            while len(history_unc) < iterations + 1:
                history_unc.append(history_unc[-1])
                history_time = np.append(history_time, history_time[-1])
            uncertainty += np.asarray(history_unc[: iterations + 1]) / influence
            idca_time += history_time[: iterations + 1]
        mc_time = max(mc_time, 1e-12)
        for iteration in range(iterations + 1):
            table.add_row(
                samples=samples,
                iteration=iteration,
                fraction_of_mc_runtime=float(idca_time[iteration] / mc_time),
                avg_uncertainty=float(uncertainty[iteration] / len(workload)),
            )
    return table


# ---------------------------------------------------------------------- #
# Figure 8 — threshold predicate queries: IDCA vs MC runtime
# ---------------------------------------------------------------------- #
def figure8_predicate_queries(
    k_values: Sequence[int] = (1, 5, 10),
    taus: Sequence[float] = (0.25, 0.5, 0.75),
    num_objects: int = 60,
    samples_per_object: int = 50,
    max_extent: float = 0.004,
    num_queries: int = 2,
    target_rank: int = 10,
    max_iterations: int = 10,
    seed: int = 0,
) -> ExperimentTable:
    """Runtime of predicate queries "is B a kNN of Q with probability tau?".

    Paper setting: k from 1 to 25, tau in {0.25, 0.5, 0.75}, 10,000 objects
    with 1,000 samples each; IDCA terminates the refinement early once the
    predicate is decidable and is orders of magnitude faster than MC.
    """
    base = uniform_rectangle_database(num_objects, max_extent=max_extent, seed=seed)
    rng = np.random.default_rng(seed)
    discrete = discretise_database(base, samples_per_object, rng)
    workload = generate_query_workload(
        discrete, num_queries=num_queries, target_rank=target_rank, seed=seed
    )
    mc = MonteCarloDominationCount(discrete, samples_per_object=samples_per_object, seed=seed)

    table = ExperimentTable(
        name="figure_8",
        description="runtime of threshold kNN predicate evaluation: IDCA vs MC",
        columns=("k", "tau", "idca_seconds", "mc_seconds"),
    )
    mc_times: dict[int, float] = {}
    for k in k_values:
        # MC always computes the full PMF; its cost is independent of tau
        elapsed = 0.0
        for pair in workload:
            result = mc.domination_count_pmf(pair.target_index, pair.reference, k_cap=k)
            elapsed += result.elapsed_seconds
        mc_times[k] = elapsed / len(workload)
    for k in k_values:
        for tau in taus:
            # fresh engine per (k, tau) configuration: each config's runtime
            # must be measured against cold caches (as the seed measured a
            # fresh IDCA) or the k/tau trend would reflect cache warmth, not
            # the algorithm.  Within a config the workload still runs as one
            # shared-context batch.
            engine = QueryEngine(discrete)
            start = time.perf_counter()
            engine.evaluate_many(
                [
                    DominationCountQuery(
                        pair.target_index,
                        pair.reference,
                        stop=ThresholdDecision(k=k, tau=tau),
                        max_iterations=max_iterations,
                        k_cap=k,
                    )
                    for pair in workload
                ]
            )
            elapsed = (time.perf_counter() - start) / len(workload)
            table.add_row(k=k, tau=tau, idca_seconds=elapsed, mc_seconds=mc_times[k])
    return table


# ---------------------------------------------------------------------- #
# Figure 9(a) — runtime vs number of influence objects
# ---------------------------------------------------------------------- #
def figure9a_influence_objects(
    target_ranks: Sequence[int] = (1, 5, 10, 25, 50),
    num_objects: int = 5_000,
    max_extent: float = 0.002,
    iterations: int = 4,
    seed: int = 0,
) -> ExperimentTable:
    """Per-iteration runtime as the number of influence objects grows.

    The paper varies the distance between the query and the target object,
    which directly controls how many objects remain uncertain after the filter
    step; we vary the MinDist rank of the chosen target for the same effect.
    """
    database = uniform_rectangle_database(num_objects, max_extent=max_extent, seed=seed)
    table = ExperimentTable(
        name="figure_9a",
        description="cumulative runtime per iteration vs number of influence objects",
        columns=("target_rank", "num_influence", "iteration", "cumulative_seconds"),
    )
    workload = generate_query_workload(database, num_queries=1, target_rank=1, seed=seed)
    reference = workload[0].reference
    idca = IDCA(database)
    for rank in target_ranks:
        from ..datasets import target_by_mindist_rank

        target = target_by_mindist_rank(database, reference, rank=rank)
        run = idca.domination_count(
            target,
            reference,
            stop=MaxIterations(iterations),
            max_iterations=iterations,
        )
        cumulative = 0.0
        for stat in run.iterations:
            cumulative += stat.elapsed_seconds
            table.add_row(
                target_rank=rank,
                num_influence=run.num_influence,
                iteration=stat.iteration,
                cumulative_seconds=cumulative,
            )
    return table


# ---------------------------------------------------------------------- #
# Figure 9(b) — runtime vs database size
# ---------------------------------------------------------------------- #
def figure9b_database_size(
    database_sizes: Sequence[int] = (2_000, 4_000, 6_000, 8_000, 10_000),
    max_extent: float = 0.002,
    iterations: int = 4,
    target_rank: int = 10,
    seed: int = 0,
) -> ExperimentTable:
    """Per-iteration runtime for growing database sizes.

    Paper setting: 20,000 to 100,000 objects with maximum extent 0.002; the
    runtime is dominated by the number of influence objects, not the raw
    database size, so IDCA scales gracefully.
    """
    table = ExperimentTable(
        name="figure_9b",
        description="cumulative runtime per iteration vs database size",
        columns=("database_size", "num_influence", "iteration", "cumulative_seconds"),
    )
    for size in database_sizes:
        database = uniform_rectangle_database(size, max_extent=max_extent, seed=seed)
        workload = generate_query_workload(
            database, num_queries=1, target_rank=target_rank, seed=seed
        )
        idca = IDCA(database)
        run = idca.domination_count(
            workload[0].target_index,
            workload[0].reference,
            stop=MaxIterations(iterations),
            max_iterations=iterations,
        )
        cumulative = 0.0
        for stat in run.iterations:
            cumulative += stat.elapsed_seconds
            table.add_row(
                database_size=size,
                num_influence=run.num_influence,
                iteration=stat.iteration,
                cumulative_seconds=cumulative,
            )
    return table


# ---------------------------------------------------------------------- #
# Ablations
# ---------------------------------------------------------------------- #
def ablation_ugf_vs_regular_gf(
    num_variables: Sequence[int] = (5, 10, 20, 40),
    trials: int = 20,
    seed: int = 0,
) -> ExperimentTable:
    """Bound tightness and runtime: uncertain GF vs two regular GFs.

    Verifies the claim of Section IV-D's discussion (proved in the paper's
    technical report): the UGF never yields looser PMF bounds than the
    two-regular-GF construction.
    """
    rng = np.random.default_rng(seed)
    table = ExperimentTable(
        name="ablation_ugf_vs_gf",
        description="total PMF bound width and runtime of UGF vs regular GFs",
        columns=("n", "ugf_width", "regular_width", "ugf_seconds", "regular_seconds"),
    )
    for n in num_variables:
        ugf_width = regular_width = ugf_time = regular_time = 0.0
        for _ in range(trials):
            lower = rng.uniform(0.0, 1.0, size=n)
            upper = np.minimum(1.0, lower + rng.uniform(0.0, 0.5, size=n))
            start = time.perf_counter()
            ugf = UncertainGeneratingFunction(lower, upper)
            ugf_lower, ugf_upper = ugf.pmf_bounds()
            ugf_time += time.perf_counter() - start
            start = time.perf_counter()
            reg_lower, reg_upper = regular_gf_bounds(lower, upper)
            regular_time += time.perf_counter() - start
            ugf_width += float(np.sum(ugf_upper - ugf_lower))
            regular_width += float(np.sum(reg_upper - reg_lower))
        table.add_row(
            n=n,
            ugf_width=ugf_width / trials,
            regular_width=regular_width / trials,
            ugf_seconds=ugf_time / trials,
            regular_seconds=regular_time / trials,
        )
    return table


def ablation_ugf_truncation(
    num_variables: Sequence[int] = (50, 100, 200),
    k: int = 5,
    trials: int = 5,
    seed: int = 0,
) -> ExperimentTable:
    """Runtime of the k-truncated UGF vs the full expansion (Section VI).

    Also records whether the ``P(count < k)`` bounds of the two variants agree
    (they must — the truncation merges only coefficients that cannot influence
    counts below ``k``).
    """
    rng = np.random.default_rng(seed)
    table = ExperimentTable(
        name="ablation_ugf_truncation",
        description="full vs k-truncated UGF: runtime and bound agreement",
        columns=("n", "k", "full_seconds", "truncated_seconds", "bounds_agree"),
    )
    for n in num_variables:
        full_time = truncated_time = 0.0
        agree = True
        for _ in range(trials):
            lower = rng.uniform(0.0, 0.6, size=n)
            upper = np.minimum(1.0, lower + rng.uniform(0.0, 0.4, size=n))
            start = time.perf_counter()
            full = UncertainGeneratingFunction(lower, upper)
            full_time += time.perf_counter() - start
            start = time.perf_counter()
            truncated = UncertainGeneratingFunction(lower, upper, k_cap=k)
            truncated_time += time.perf_counter() - start
            for count in range(k + 1):
                if not np.isclose(
                    full.count_lower_bound(count), truncated.count_lower_bound(count)
                ) or not np.isclose(
                    full.count_upper_bound(count), truncated.count_upper_bound(count)
                ):
                    agree = False
        table.add_row(
            n=n,
            k=k,
            full_seconds=full_time / trials,
            truncated_seconds=truncated_time / trials,
            bounds_agree=agree,
        )
    return table
