"""Expected-distance kNN baseline.

A common shortcut in the pre-possible-world literature (discussed in the
paper's related-work section) is to reduce every uncertain object to its
*expected* location (or expected distance) and run a classical kNN query on
those points.  The paper argues — citing Soliman/Ilyas and Li et al. — that
this "does not adhere to the possible world semantics and may thus produce
very inaccurate results, that may have a very small probability of being an
actual result".

This baseline exists to make that argument measurable: the test suite
constructs databases where the expected-distance ranking disagrees with the
probabilistic threshold kNN semantics, and the ablation benchmark quantifies
how often the two answers differ on random workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..uncertain import UncertainDatabase, UncertainObject
from ..uncertain.sampling import pairwise_distances

__all__ = ["ExpectedDistanceKNNResult", "expected_distance_knn"]


@dataclass
class ExpectedDistanceKNNResult:
    """Result of the expected-distance kNN heuristic."""

    k: int
    indices: list[int] = field(default_factory=list)
    expected_distances: list[float] = field(default_factory=list)

    def result_indices(self) -> list[int]:
        """Database positions of the reported k nearest neighbours."""
        return list(self.indices)


def expected_distance_knn(
    database: UncertainDatabase,
    query: UncertainObject | int,
    k: int,
    p: float = 2.0,
    exclude_indices: Optional[set[int]] = None,
) -> ExpectedDistanceKNNResult:
    """Classical kNN over the expected object locations.

    The distance between two uncertain objects is approximated by the distance
    between their means — the cheapest possible heuristic, and the one whose
    semantic shortcomings motivate the paper's probabilistic approach.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    exclude = set(exclude_indices) if exclude_indices else set()
    if isinstance(query, (int, np.integer)):
        exclude.add(int(query))
        query_obj = database[int(query)]
    else:
        query_obj = query

    means = np.stack([obj.mean() for obj in database])
    dists = pairwise_distances(means, query_obj.mean().reshape(1, -1), p)[:, 0]
    for idx in exclude:
        dists[idx] = np.inf
    order = np.argsort(dists, kind="stable")[: min(k, len(database) - len(exclude))]
    return ExpectedDistanceKNNResult(
        k=k,
        indices=[int(i) for i in order],
        expected_distances=[float(dists[i]) for i in order],
    )
