"""MinDist/MaxDist pruning baseline (the comparison partner of Figure 6).

The state-of-the-art spatial pruning criterion before the optimal criterion
of Emrich et al. is the MinDist/MaxDist test.  This module exposes helpers to
compare the pruning power of the two criteria on a whole database — the
quantity plotted in Figure 6(a) — and a convenience constructor for an IDCA
instance that uses the MinMax criterion throughout (Figure 6(b)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.domination import complete_domination_filter
from ..core.idca import IDCA
from ..uncertain import UncertainDatabase, UncertainObject

__all__ = ["PruningComparison", "compare_pruning_power", "minmax_idca"]


@dataclass(frozen=True)
class PruningComparison:
    """Candidate counts remaining after spatial pruning under both criteria."""

    optimal_candidates: int
    minmax_candidates: int

    @property
    def improvement(self) -> float:
        """Relative reduction of candidates achieved by the optimal criterion."""
        if self.minmax_candidates == 0:
            return 0.0
        return 1.0 - self.optimal_candidates / self.minmax_candidates


def compare_pruning_power(
    database: UncertainDatabase,
    target: UncertainObject,
    reference: UncertainObject,
    exclude_indices: Optional[Sequence[int]] = None,
    p: float = 2.0,
) -> PruningComparison:
    """Number of influence objects left by each complete-domination criterion.

    The influence objects are exactly the candidates that the refinement step
    still has to process, so fewer candidates directly translate into less
    refinement work (Figure 6(a)).
    """
    exclude = set(int(i) for i in exclude_indices) if exclude_indices else set()
    optimal = complete_domination_filter(
        database, target, reference, exclude_indices=exclude, p=p, criterion="optimal"
    )
    minmax = complete_domination_filter(
        database, target, reference, exclude_indices=exclude, p=p, criterion="minmax"
    )
    return PruningComparison(
        optimal_candidates=optimal.num_influence,
        minmax_candidates=minmax.num_influence,
    )


def minmax_idca(database: UncertainDatabase, **kwargs) -> IDCA:
    """IDCA variant that uses the MinMax criterion for every domination test."""
    kwargs.setdefault("criterion", "minmax")
    return IDCA(database, **kwargs)
