"""Baselines and oracles: Monte-Carlo partner, MinMax pruning, exact discrete oracle."""

from .exact import exact_domination_count_pmf, exact_pdom
from .expected_distance import ExpectedDistanceKNNResult, expected_distance_knn
from .minmax import PruningComparison, compare_pruning_power, minmax_idca
from .monte_carlo import MonteCarloDominationCount, MonteCarloResult, monte_carlo_pdom

__all__ = [
    "exact_domination_count_pmf",
    "exact_pdom",
    "ExpectedDistanceKNNResult",
    "expected_distance_knn",
    "PruningComparison",
    "compare_pruning_power",
    "minmax_idca",
    "MonteCarloDominationCount",
    "MonteCarloResult",
    "monte_carlo_pdom",
]
