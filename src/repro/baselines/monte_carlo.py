"""Monte-Carlo comparison partner (Section VII-A of the paper).

No prior approach handles uncertain similarity queries with continuous PDFs
and an uncertain reference object, so the paper adapts the exact
domination-count algorithm for certain queries over discrete distributions
(Lian & Chen, DASFAA 2009) to a sampling scheme:

1. draw ``S`` samples from every object (Monte-Carlo sampling);
2. for every sample ``r`` of the reference object, compute the exact
   domination-count PMF of the sampled target w.r.t. the sampled database via
   generating functions;
3. average the per-sample PMFs.

The resulting estimator ("MC") converges to the true distribution as
``S`` grows but its runtime grows steeply (Figure 5), which is exactly the
behaviour the benchmarks reproduce.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..uncertain import (
    DiscreteObject,
    UncertainDatabase,
    UncertainObject,
    discretise_database,
    discretise_object,
)
from ..uncertain.sampling import pairwise_distances
from .exact import exact_domination_count_pmf

__all__ = ["monte_carlo_pdom", "MonteCarloResult", "MonteCarloDominationCount"]


def monte_carlo_pdom(
    candidate: UncertainObject,
    target: UncertainObject,
    reference: UncertainObject,
    samples: int = 1000,
    rng: Optional[np.random.Generator] = None,
    p: float = 2.0,
    seed: Optional[int] = None,
) -> float:
    """Monte-Carlo estimate of ``PDom(candidate, target, reference)``.

    Draws ``samples`` joint samples of the three objects and returns the
    fraction in which the candidate is strictly closer to the reference than
    the target.  Used by tests to validate the analytic bounds.

    By default every call draws fresh OS entropy, so repeated estimates are
    independent — an estimator whose nominally independent runs share a
    fixed seed is perfectly correlated and its spread says nothing about
    its variance.  Pass ``seed=`` for a reproducible estimate, or ``rng=``
    to control the stream explicitly (not both).
    """
    if samples <= 0:
        raise ValueError("samples must be positive")
    if rng is not None and seed is not None:
        raise ValueError("pass either rng= or seed=, not both")
    if rng is None:
        rng = np.random.default_rng(seed)
    a = candidate.sample(samples, rng)
    b = target.sample(samples, rng)
    r = reference.sample(samples, rng)
    diff_a = np.abs(a - r)
    diff_b = np.abs(b - r)
    if np.isinf(p):
        dist_a = diff_a.max(axis=1)
        dist_b = diff_b.max(axis=1)
    else:
        dist_a = np.sum(diff_a ** p, axis=1)
        dist_b = np.sum(diff_b ** p, axis=1)
    return float(np.mean(dist_a < dist_b))


@dataclass(frozen=True)
class MonteCarloResult:
    """PMF estimate of the MC comparison partner together with its cost."""

    pmf: np.ndarray
    samples_per_object: int
    elapsed_seconds: float

    def probability_less_than(self, k: int) -> float:
        """``P(DomCount < k)`` under the estimated PMF."""
        if k <= 0:
            return 0.0
        return float(self.pmf[: min(k, self.pmf.shape[0])].sum())

    def expected_count(self) -> float:
        """Expected domination count under the estimated PMF."""
        return float(np.arange(self.pmf.shape[0]) @ self.pmf)


class MonteCarloDominationCount:
    """The "MC" comparison partner: sampling plus exact discrete computation.

    Parameters
    ----------
    database:
        The uncertain database (continuous or discrete objects).
    samples_per_object:
        Number of Monte-Carlo samples drawn per object (the paper's default
        experimental setting is 1000).
    seed:
        Seed of the sampling RNG, for reproducible experiments.
    p:
        ``Lp`` norm parameter.
    """

    def __init__(
        self,
        database: UncertainDatabase,
        samples_per_object: int = 1000,
        seed: int = 0,
        p: float = 2.0,
    ):
        if samples_per_object <= 0:
            raise ValueError("samples_per_object must be positive")
        self.database = database
        self.samples_per_object = samples_per_object
        self.p = p
        self._rng = np.random.default_rng(seed)
        self._discretised: Optional[UncertainDatabase] = None

    @property
    def discretised_database(self) -> UncertainDatabase:
        """The sample-based discrete version of the database (cached)."""
        if self._discretised is None:
            self._discretised = discretise_database(
                self.database, self.samples_per_object, self._rng
            )
        return self._discretised

    def _discretise(self, obj: UncertainObject) -> DiscreteObject:
        return discretise_object(obj, self.samples_per_object, self._rng)

    def domination_count_pmf(
        self,
        target: UncertainObject | int,
        reference: UncertainObject | int,
        exclude_indices: Optional[Sequence[int]] = None,
        k_cap: Optional[int] = None,
    ) -> MonteCarloResult:
        """Estimate the PMF of ``DomCount(target, reference)``.

        ``target`` and ``reference`` may be objects or database positions;
        positions are automatically excluded from the count.
        """
        exclude = set(int(i) for i in exclude_indices) if exclude_indices else set()
        discretised = self.discretised_database

        def resolve(spec: UncertainObject | int) -> DiscreteObject:
            if isinstance(spec, (int, np.integer)):
                exclude.add(int(spec))
                return discretised[int(spec)]  # type: ignore[return-value]
            return self._discretise(spec)

        target_obj = resolve(target)
        reference_obj = resolve(reference)

        start = time.perf_counter()
        pmf = exact_domination_count_pmf(
            discretised,
            target_obj,
            reference_obj,
            exclude_indices=sorted(exclude),
            p=self.p,
            k_cap=k_cap,
        )
        elapsed = time.perf_counter() - start
        return MonteCarloResult(
            pmf=pmf,
            samples_per_object=self.samples_per_object,
            elapsed_seconds=elapsed,
        )
