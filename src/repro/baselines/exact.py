"""Exact domination-count computation for the discrete uncertainty model.

For objects given by finite sets of weighted alternatives the domination-count
PMF can be computed *exactly* in polynomial time: conditioned on a fixed
location ``r`` of the reference object and a fixed location ``b`` of the
target, the domination indicators of the database objects become mutually
independent Bernoulli variables whose success probabilities are simple
weighted fractions, so a regular generating function yields the conditional
PMF; averaging over all ``(b, r)`` alternative pairs weighted by their
probabilities gives the unconditional PMF.

This is the computational core of both

* the Monte-Carlo comparison partner of Section VII-A (which applies it to
  sampled alternatives), and
* the possible-world oracle the test-suite uses to validate that the IDCA
  bounds always bracket the exact distribution.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.generating_functions import poisson_binomial_pmf
from ..uncertain import DiscreteObject, UncertainDatabase, UncertainObject
from ..uncertain.sampling import pairwise_distances

__all__ = ["exact_pdom", "exact_domination_count_pmf"]


def _require_discrete(obj: UncertainObject, role: str) -> DiscreteObject:
    if not isinstance(obj, DiscreteObject):
        raise TypeError(
            f"the exact computation requires discrete objects; {role} is {type(obj).__name__}"
        )
    return obj


def exact_pdom(
    candidate: UncertainObject,
    target: UncertainObject,
    reference: UncertainObject,
    p: float = 2.0,
) -> float:
    """Exact ``PDom(candidate, target, reference)`` for discrete objects.

    Sums the joint probability of every alternative triple ``(a, b, r)`` with
    ``dist(a, r) < dist(b, r)``, exploiting inter-object independence.
    """
    cand = _require_discrete(candidate, "candidate")
    targ = _require_discrete(target, "target")
    ref = _require_discrete(reference, "reference")

    dist_a = pairwise_distances(cand.points, ref.points, p)  # (m_a, m_r)
    dist_b = pairwise_distances(targ.points, ref.points, p)  # (m_b, m_r)
    total = 0.0
    for r_idx, r_weight in enumerate(ref.weights):
        if r_weight <= 0.0:
            continue
        # P(dist(a, r) < dist(b, r)) for the fixed r alternative
        closer = dist_a[:, r_idx][:, None] < dist_b[:, r_idx][None, :]
        prob = float(cand.weights @ closer @ targ.weights)
        total += r_weight * prob
    return min(max(total, 0.0), 1.0)


def exact_domination_count_pmf(
    database: UncertainDatabase,
    target: UncertainObject,
    reference: UncertainObject,
    exclude_indices: Optional[Sequence[int]] = None,
    p: float = 2.0,
    k_cap: Optional[int] = None,
) -> np.ndarray:
    """Exact PMF of ``DomCount(target, reference)`` for discrete objects.

    Parameters
    ----------
    database:
        Database of :class:`DiscreteObject` instances.
    target, reference:
        Discrete target and reference objects (database members must be
        excluded explicitly via ``exclude_indices``).
    exclude_indices:
        Database positions that must not contribute to the count.
    p:
        ``Lp`` norm parameter.
    k_cap:
        Optional truncation: the returned array then has length
        ``k_cap + 2`` with the final entry holding ``P(DomCount > k_cap)``.

    Returns
    -------
    numpy.ndarray
        ``pmf[k] = P(DomCount(target, reference) = k)``; length is the number
        of contributing objects plus one when no truncation is requested.
    """
    targ = _require_discrete(target, "target")
    ref = _require_discrete(reference, "reference")
    exclude = set(int(i) for i in exclude_indices) if exclude_indices else set()
    candidates = [
        _require_discrete(obj, f"database object {i}")
        for i, obj in enumerate(database)
        if i not in exclude
    ]

    num_candidates = len(candidates)
    out_len = num_candidates + 1 if k_cap is None else min(num_candidates, k_cap + 1) + 1
    pmf = np.zeros(out_len)
    if num_candidates == 0:
        pmf[0] = 1.0
        return pmf

    dist_b = pairwise_distances(targ.points, ref.points, p)  # (m_b, m_r)
    # per-candidate sorted distances to every reference alternative and the
    # matching cumulative weights, so the conditional success probability is a
    # binary search instead of a full comparison
    sorted_dists: list[np.ndarray] = []
    cumulative_weights: list[np.ndarray] = []
    for cand in candidates:
        dist_a = pairwise_distances(cand.points, ref.points, p)  # (m_a, m_r)
        order = np.argsort(dist_a, axis=0)
        sorted_d = np.take_along_axis(dist_a, order, axis=0)
        sorted_w = np.take_along_axis(
            np.broadcast_to(cand.weights[:, None], dist_a.shape), order, axis=0
        )
        sorted_dists.append(sorted_d)
        cumulative_weights.append(np.cumsum(sorted_w, axis=0))

    for r_idx, r_weight in enumerate(ref.weights):
        if r_weight <= 0.0:
            continue
        b_dists = dist_b[:, r_idx]
        # success probabilities per (candidate, target alternative)
        probs = np.empty((num_candidates, b_dists.shape[0]))
        for c_idx in range(num_candidates):
            col = sorted_dists[c_idx][:, r_idx]
            cum = cumulative_weights[c_idx][:, r_idx]
            position = np.searchsorted(col, b_dists, side="left")
            probs[c_idx] = np.where(position > 0, cum[np.maximum(position - 1, 0)], 0.0)
        for b_idx, b_weight in enumerate(targ.weights):
            if b_weight <= 0.0:
                continue
            conditional = poisson_binomial_pmf(probs[:, b_idx], k_cap=k_cap)
            pmf[: conditional.shape[0]] += r_weight * b_weight * conditional
    total = pmf.sum()
    if total > 0:
        pmf /= total
    return pmf
