"""kd-tree style decomposition of uncertainty regions.

Section V of the paper refines the probabilistic domination bounds by
progressively splitting uncertainty regions with a *median-split-based
bisection* organised in a kd-tree: every node represents a sub-region of the
object's uncertainty region together with the exact probability that the
object falls into that sub-region.  With median splits, a node at level ``l``
carries mass ``2^-l`` for continuous objects; for discrete objects the exact
(possibly uneven) masses are used.

The tree is built lazily and cached per object, so repeated IDCA iterations,
queries and benchmark runs reuse previously computed partitions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Literal, Optional

import numpy as np

from ..geometry import Rectangle
from .base import UncertainObject

__all__ = [
    "Partition",
    "DecompositionNode",
    "DecompositionTree",
    "CSRPartitionBatch",
    "csr_partitions_batch",
    "clear_csr_cache",
    "decompose_object",
]

AxisPolicy = Literal["round_robin", "widest"]

_MASS_EPS = 1e-15

# process-unique tree tokens; unlike id(), tokens are never reused after a
# tree is garbage collected, so caches may key partition sets by
# (tree token, depth) and still evict trees safely
_TREE_TOKENS = itertools.count()


@dataclass(frozen=True)
class Partition:
    """A sub-region of an uncertainty region with its exact probability mass."""

    region: Rectangle
    probability: float


@dataclass
class DecompositionNode:
    """A node of the decomposition kd-tree."""

    region: Rectangle
    probability: float
    depth: int
    children: Optional[tuple["DecompositionNode", "DecompositionNode"]] = None
    splittable: bool = True

    def as_partition(self) -> Partition:
        """View of the node as a :class:`Partition`."""
        return Partition(self.region, self.probability)


@dataclass
class DecompositionTree:
    """Lazily-grown decomposition kd-tree of one uncertain object.

    Parameters
    ----------
    obj:
        The uncertain object to decompose.
    axis_policy:
        ``"round_robin"`` cycles through dimensions by depth (the classical
        kd-tree policy described in the paper); ``"widest"`` always splits the
        dimension with the largest extent, which tends to produce squarer
        partitions and tighter domination bounds for elongated regions.
    max_depth:
        Hard cap ``h`` on the tree height (Section V discusses the
        quality/efficiency trade-off of ``h``).  ``None`` means unbounded.
    """

    obj: UncertainObject
    axis_policy: AxisPolicy = "round_robin"
    max_depth: Optional[int] = None
    _root: DecompositionNode = field(init=False)
    _materialised_depth: int = field(init=False, default=0)
    _arrays_cache: dict[int, tuple[np.ndarray, np.ndarray]] = field(init=False)
    token: int = field(init=False)

    def __post_init__(self) -> None:
        self._root = DecompositionNode(
            region=self.obj.mbr,
            probability=self.obj.existence_probability,
            depth=0,
        )
        self._arrays_cache = {}
        self.token = next(_TREE_TOKENS)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _split_axes(self, node: DecompositionNode) -> list[int]:
        """Candidate split axes for a node, most preferred first."""
        d = node.region.dimensions
        if self.axis_policy == "widest":
            order = list(np.argsort(-node.region.extents))
        else:
            start = node.depth % d
            order = [(start + i) % d for i in range(d)]
        return [int(axis) for axis in order]

    def _expand(self, node: DecompositionNode) -> None:
        """Create the children of ``node`` if possible."""
        if node.children is not None or not node.splittable:
            return
        if self.max_depth is not None and node.depth >= self.max_depth:
            node.splittable = False
            return
        if node.probability <= _MASS_EPS:
            node.splittable = False
            return
        for axis in self._split_axes(node):
            result = self.obj.decompose(node.region, axis)
            if result is None:
                continue
            left_region, right_region, left_mass, right_mass = result
            if left_mass <= _MASS_EPS and right_mass <= _MASS_EPS:
                continue
            node.children = (
                DecompositionNode(left_region, left_mass, node.depth + 1),
                DecompositionNode(right_region, right_mass, node.depth + 1),
            )
            return
        node.splittable = False

    def materialise(self, depth: int) -> None:
        """Ensure all nodes up to ``depth`` exist."""
        if depth <= self._materialised_depth:
            return
        frontier = list(self._iter_frontier(self._materialised_depth))
        for level in range(self._materialised_depth, depth):
            next_frontier: list[DecompositionNode] = []
            for node in frontier:
                if node.depth != level:
                    next_frontier.append(node)
                    continue
                self._expand(node)
                if node.children is not None:
                    next_frontier.extend(node.children)
                else:
                    next_frontier.append(node)
            frontier = next_frontier
        self._materialised_depth = depth

    def _iter_frontier(self, depth: int) -> Iterator[DecompositionNode]:
        """Nodes that make up the partitioning at ``depth``.

        These are the nodes at exactly ``depth`` plus unsplittable leaves above
        it; together they form a disjoint cover of the uncertainty region.
        """
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.depth == depth or node.children is None:
                yield node
            else:
                stack.extend(node.children)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def root(self) -> DecompositionNode:
        """Root node covering the whole uncertainty region."""
        return self._root

    def partitions(self, depth: int) -> list[Partition]:
        """Disjoint partitions of the uncertainty region at ``depth``.

        Partitions with zero probability mass are dropped — they correspond to
        empty sets of possible worlds and cannot influence any bound.
        """
        if depth < 0:
            raise ValueError("depth must be non-negative")
        if self.max_depth is not None:
            depth = min(depth, self.max_depth)
        self.materialise(depth)
        return [
            node.as_partition()
            for node in self._iter_frontier(depth)
            if node.probability > _MASS_EPS
        ]

    def partitions_arrays(
        self, depth: int, pad_to: Optional[int] = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Partitions at ``depth`` as ``(regions, masses)`` numpy arrays.

        ``regions`` has shape ``(k, d, 2)``, ``masses`` shape ``(k,)``; this is
        the representation consumed by the vectorised bound computations.
        The arrays are cached per depth (the frontier at a depth never changes
        once built) and must be treated as read-only — IDCA iterations, the
        shared refinement context and repeated queries all reuse them.

        With ``pad_to`` the arrays are padded to ``pad_to`` rows so several
        trees at different adaptive depths can be stacked into the dense
        ``(num_candidates, max_partitions, d, 2)`` tensor consumed by the
        legacy padded pair-bounds kernel.  Padding rows carry **zero
        probability mass** and a degenerate point rectangle at the origin;
        any domination verdict computed for them is weighted by zero mass and
        therefore can never influence a bound.  Padded variants are built
        fresh from the cached base arrays on every call.

        .. deprecated::
            ``pad_to`` is retained only as a compatibility shim for external
            callers of the padded-dense layout.  The hot path batches
            candidates with :func:`csr_partitions_batch`, whose ragged CSR
            layout carries no pad rows at all and is cached per depth-set.
        """
        if depth < 0:
            raise ValueError("depth must be non-negative")
        if self.max_depth is not None:
            depth = min(depth, self.max_depth)
        if pad_to is not None:
            base_regions, base_masses = self.partitions_arrays(depth)
            k = base_masses.shape[0]
            if pad_to < k:
                raise ValueError(
                    f"pad_to={pad_to} is smaller than the {k} partitions at depth {depth}"
                )
            regions = np.zeros((pad_to, base_regions.shape[1], 2), dtype=float)
            masses = np.zeros(pad_to, dtype=float)
            regions[:k] = base_regions
            masses[:k] = base_masses
            return regions, masses
        cached = self._arrays_cache.get(depth)
        if cached is not None:
            return cached
        parts = self.partitions(depth)
        d = self.obj.dimensions
        regions = np.empty((len(parts), d, 2), dtype=float)
        masses = np.empty(len(parts), dtype=float)
        for i, part in enumerate(parts):
            regions[i, :, 0] = part.region.lows
            regions[i, :, 1] = part.region.highs
            masses[i] = part.probability
        self._arrays_cache[depth] = (regions, masses)
        return regions, masses

    def num_partitions(self, depth: int) -> int:
        """Number of non-empty partitions at ``depth``."""
        return len(self.partitions(depth))


# ---------------------------------------------------------------------- #
# ragged CSR candidate batches
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class CSRPartitionBatch:
    """Ragged CSR view of several trees' partition sets, batched together.

    ``regions`` is the row-wise concatenation of every candidate's cached
    ``(k_i, d, 2)`` partition rectangles, ``masses`` the matching probability
    masses, and ``offsets`` the ``(num_candidates + 1,)`` monotone row
    offsets: candidate ``i`` owns rows ``offsets[i]:offsets[i + 1]`` and
    nothing else.  Unlike the padded-dense ``(c, m, d, 2)`` tensor this
    layout carries **no pad rows** — candidates at mixed adaptive depths
    batch together at exactly their own partition counts.

    The arrays are marked read-only: batches are cached per depth-set and
    shared between IDCA iterations, refinement contexts and tests.
    """

    regions: np.ndarray
    masses: np.ndarray
    offsets: np.ndarray

    @property
    def num_candidates(self) -> int:
        """Number of candidates batched together."""
        return self.offsets.shape[0] - 1

    @property
    def total_partitions(self) -> int:
        """Total partition rows across all candidates (no pad rows)."""
        return self.masses.shape[0]

    @property
    def counts(self) -> np.ndarray:
        """Per-candidate partition counts, ``(num_candidates,)``."""
        return self.offsets[1:] - self.offsets[:-1]


# CSR batches keyed by the exact (tree token, effective depth) sequence: when
# an IDCA iteration leaves the frontier set unchanged, the next iteration's
# batch is the same key and the concatenation is reused without copying.
# Tree tokens are process-unique and never reused, so stale entries can only
# waste space, never alias a different tree; the FIFO eviction below bounds
# the waste.
_CSR_BATCH_CACHE: dict[tuple, CSRPartitionBatch] = {}
_CSR_BATCH_CACHE_MAX = 4096


def _evict_csr_tenth() -> None:
    """Drop the oldest tenth of the CSR batch cache (insertion order)."""
    drop = max(1, len(_CSR_BATCH_CACHE) // 10)
    for key in list(itertools.islice(_CSR_BATCH_CACHE, drop)):
        del _CSR_BATCH_CACHE[key]


def clear_csr_cache() -> None:
    """Empty the module-level CSR batch cache (tests and memory pressure)."""
    _CSR_BATCH_CACHE.clear()


def csr_partitions_batch(
    trees: list["DecompositionTree"], depths: list[int]
) -> CSRPartitionBatch:
    """Batch several trees' partition sets into one ragged CSR layout.

    ``depths[i]`` is the requested decomposition depth for ``trees[i]``
    (clamped by each tree's ``max_depth``, exactly like
    :meth:`DecompositionTree.partitions_arrays`).  The concatenation is built
    from the per-depth cached base arrays — no pad copies — and is itself
    cached per depth-set, so an iteration whose frontier set is unchanged
    reuses the previous iteration's batch outright.

    Returns a :class:`CSRPartitionBatch` whose arrays are read-only; an empty
    ``trees`` list yields a zero-candidate batch with ``offsets == [0]``.
    """
    if len(trees) != len(depths):
        raise ValueError("trees and depths must have the same length")
    key = tuple(
        (
            tree.token,
            int(depth) if tree.max_depth is None else min(int(depth), tree.max_depth),
        )
        for tree, depth in zip(trees, depths)
    )
    cached = _CSR_BATCH_CACHE.get(key)
    if cached is not None:
        return cached

    parts = [tree.partitions_arrays(int(depth)) for tree, depth in zip(trees, depths)]
    offsets = np.zeros(len(trees) + 1, dtype=np.int64)
    for i, (_, masses) in enumerate(parts):
        offsets[i + 1] = offsets[i] + masses.shape[0]
    if parts:
        d = parts[0][0].shape[1]
        regions = np.concatenate([regions for regions, _ in parts], axis=0)
        masses = np.concatenate([masses for _, masses in parts], axis=0)
        regions = regions.reshape(int(offsets[-1]), d, 2)
    else:
        regions = np.empty((0, 0, 2), dtype=float)
        masses = np.empty(0, dtype=float)
    regions.setflags(write=False)
    masses.setflags(write=False)
    offsets.setflags(write=False)
    batch = CSRPartitionBatch(regions=regions, masses=masses, offsets=offsets)
    if len(_CSR_BATCH_CACHE) >= _CSR_BATCH_CACHE_MAX:
        _evict_csr_tenth()
    _CSR_BATCH_CACHE[key] = batch
    return batch


def decompose_object(
    obj: UncertainObject,
    depth: int,
    axis_policy: AxisPolicy = "round_robin",
    max_depth: Optional[int] = None,
) -> list[Partition]:
    """Convenience helper: partitions of ``obj`` at ``depth`` (fresh tree)."""
    tree = DecompositionTree(obj, axis_policy=axis_policy, max_depth=max_depth)
    return tree.partitions(depth)
