"""Continuous uncertain-object distributions.

Three concrete continuous models are provided:

* :class:`BoxUniformObject` — uniform density over the rectangular
  uncertainty region.  This is the model used for the paper's synthetic
  datasets (objects are "modeled as 2D rectangles").
* :class:`TruncatedGaussianObject` — axis-independent Gaussian density
  truncated to a bounded region, the model used for the simulated IIP iceberg
  data (Gaussian positional noise, truncated per the paper's convention of
  cutting PDF tails with negligible probability and renormalising).
* :class:`MixtureObject` — finite mixture of arbitrary uncertain objects,
  exercising the "arbitrarily correlated attributes" part of the model.

All classes implement the :class:`~repro.uncertain.base.UncertainObject`
protocol exactly (``mass_in`` is an exact integral, not an approximation), so
the decomposition-based bounds computed on top of them are guaranteed
conservative/progressive as in the paper.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from scipy.special import ndtr, ndtri

from ..geometry import Interval, Rectangle
from .base import UncertainObject

__all__ = ["BoxUniformObject", "TruncatedGaussianObject", "MixtureObject"]

_EPS = 1e-12


class BoxUniformObject(UncertainObject):
    """Uniform distribution over an axis-aligned rectangle."""

    def __init__(
        self,
        region: Rectangle,
        label: Optional[str] = None,
        existence_probability: float = 1.0,
    ):
        super().__init__(label=label, existence_probability=existence_probability)
        self._region = region

    @property
    def mbr(self) -> Rectangle:
        return self._region

    def mass_in(self, region: Rectangle) -> float:
        overlap = self._region.intersection(region)
        if overlap is None:
            return 0.0
        fraction = 1.0
        for own, joint in zip(self._region.intervals, overlap.intervals):
            if own.length <= _EPS:
                # degenerate dimension: the coordinate is certain
                continue
            fraction *= joint.length / own.length
        return self.existence_probability * fraction

    def conditional_median(self, region: Rectangle, axis: int) -> float:
        overlap = self._region.intervals[axis].intersection(region.intervals[axis])
        if overlap is None:
            raise ValueError("region does not intersect the uncertainty region")
        return overlap.center

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        lows, highs = self._region.lows, self._region.highs
        return rng.uniform(lows, highs, size=(n, self.dimensions))

    def mean(self) -> np.ndarray:
        return self._region.center


class TruncatedGaussianObject(UncertainObject):
    """Axis-independent Gaussian distribution truncated to a bounded region.

    Parameters
    ----------
    mean, std:
        Per-dimension mean and standard deviation of the underlying (not yet
        truncated) Gaussian.  ``std`` entries may be 0 to model certain
        attributes.
    bounds:
        Optional explicit truncation rectangle.  When omitted, the region
        ``mean +/- truncation_sigmas * std`` is used, following the paper's
        recommendation to cut negligible tails and renormalise.
    truncation_sigmas:
        Width of the default truncation region in standard deviations.
    """

    def __init__(
        self,
        mean: Sequence[float],
        std: Sequence[float] | float,
        bounds: Optional[Rectangle] = None,
        truncation_sigmas: float = 3.0,
        label: Optional[str] = None,
        existence_probability: float = 1.0,
    ):
        super().__init__(label=label, existence_probability=existence_probability)
        self._mean = np.asarray(mean, dtype=float)
        self._std = np.broadcast_to(np.asarray(std, dtype=float), self._mean.shape).copy()
        if np.any(self._std < 0):
            raise ValueError("standard deviations must be non-negative")
        if truncation_sigmas <= 0:
            raise ValueError("truncation_sigmas must be positive")
        if bounds is None:
            half = truncation_sigmas * self._std
            bounds = Rectangle.from_bounds(self._mean - half, self._mean + half)
        if bounds.dimensions != self._mean.shape[0]:
            raise ValueError("bounds dimensionality does not match the mean vector")
        self._bounds = bounds
        # per-dimension normalisation mass of the truncated Gaussian
        self._dim_mass = np.array(
            [
                self._gaussian_mass(axis, iv.lo, iv.hi)
                for axis, iv in enumerate(bounds.intervals)
            ]
        )
        if np.any(self._dim_mass <= 0):
            raise ValueError("truncation bounds carry no probability mass in some dimension")

    # -- internal Gaussian helpers ------------------------------------- #
    def _gaussian_mass(self, axis: int, lo: float, hi: float) -> float:
        """Un-normalised Gaussian mass of ``[lo, hi]`` along ``axis``."""
        mu, sigma = self._mean[axis], self._std[axis]
        if sigma <= _EPS:
            return 1.0 if lo - _EPS <= mu <= hi + _EPS else 0.0
        return float(ndtr((hi - mu) / sigma) - ndtr((lo - mu) / sigma))

    @property
    def mbr(self) -> Rectangle:
        return self._bounds

    def mass_in(self, region: Rectangle) -> float:
        fraction = 1.0
        for axis, (own, other) in enumerate(zip(self._bounds.intervals, region.intervals)):
            overlap = own.intersection(other)
            if overlap is None:
                return 0.0
            fraction *= self._gaussian_mass(axis, overlap.lo, overlap.hi) / self._dim_mass[axis]
        return self.existence_probability * fraction

    def conditional_median(self, region: Rectangle, axis: int) -> float:
        overlap = self._bounds.intervals[axis].intersection(region.intervals[axis])
        if overlap is None:
            raise ValueError("region does not intersect the uncertainty region")
        mu, sigma = self._mean[axis], self._std[axis]
        if sigma <= _EPS or overlap.is_degenerate:
            return overlap.center
        cdf_lo = float(ndtr((overlap.lo - mu) / sigma))
        cdf_hi = float(ndtr((overlap.hi - mu) / sigma))
        if cdf_hi - cdf_lo <= _EPS:
            return overlap.center
        median = mu + sigma * float(ndtri(0.5 * (cdf_lo + cdf_hi)))
        return overlap.clamp(median)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        out = np.empty((n, self.dimensions), dtype=float)
        for axis, iv in enumerate(self._bounds.intervals):
            mu, sigma = self._mean[axis], self._std[axis]
            if sigma <= _EPS:
                out[:, axis] = mu
                continue
            cdf_lo = float(ndtr((iv.lo - mu) / sigma))
            cdf_hi = float(ndtr((iv.hi - mu) / sigma))
            u = rng.uniform(cdf_lo, cdf_hi, size=n)
            out[:, axis] = mu + sigma * ndtri(u)
            np.clip(out[:, axis], iv.lo, iv.hi, out=out[:, axis])
        return out

    def mean(self) -> np.ndarray:
        out = np.empty(self.dimensions, dtype=float)
        for axis, iv in enumerate(self._bounds.intervals):
            mu, sigma = self._mean[axis], self._std[axis]
            if sigma <= _EPS:
                out[axis] = mu
                continue
            alpha = (iv.lo - mu) / sigma
            beta = (iv.hi - mu) / sigma
            phi = lambda z: np.exp(-0.5 * z * z) / np.sqrt(2.0 * np.pi)
            mass = ndtr(beta) - ndtr(alpha)
            out[axis] = mu + sigma * (phi(alpha) - phi(beta)) / mass
        return out


class MixtureObject(UncertainObject):
    """Finite mixture of uncertain objects.

    Mixtures model multi-modal and correlated attribute distributions (for
    instance "the vehicle is either near junction X or near junction Y").
    The conditional median has no closed form; it is obtained by bisecting
    the exact mixture CDF, so decomposition masses remain exact.
    """

    def __init__(
        self,
        components: Sequence[UncertainObject],
        weights: Sequence[float],
        label: Optional[str] = None,
        existence_probability: float = 1.0,
    ):
        super().__init__(label=label, existence_probability=existence_probability)
        if len(components) == 0:
            raise ValueError("a mixture requires at least one component")
        if len(components) != len(weights):
            raise ValueError("components and weights must have the same length")
        weights_arr = np.asarray(weights, dtype=float)
        if np.any(weights_arr < 0):
            raise ValueError("mixture weights must be non-negative")
        total = weights_arr.sum()
        if total <= 0:
            raise ValueError("mixture weights must not all be zero")
        self._components = list(components)
        self._weights = weights_arr / total
        mbr = self._components[0].mbr
        for comp in self._components[1:]:
            if comp.dimensions != mbr.dimensions:
                raise ValueError("all mixture components must share the dimensionality")
            mbr = mbr.union(comp.mbr)
        self._mbr = mbr

    @property
    def components(self) -> list[UncertainObject]:
        """The mixture components (do not mutate)."""
        return self._components

    @property
    def weights(self) -> np.ndarray:
        """Normalised mixture weights."""
        return self._weights

    @property
    def mbr(self) -> Rectangle:
        return self._mbr

    def mass_in(self, region: Rectangle) -> float:
        mass = sum(
            w * comp.mass_in(region) / comp.existence_probability
            for w, comp in zip(self._weights, self._components)
        )
        return self.existence_probability * float(mass)

    def conditional_median(self, region: Rectangle, axis: int) -> float:
        overlap = self._mbr.intersection(region)
        if overlap is None:
            raise ValueError("region does not intersect the uncertainty region")
        total = self.mass_in(overlap)
        if total <= _EPS:
            return overlap.intervals[axis].center
        target = 0.5 * total
        interval = overlap.intervals[axis]
        base_lo = interval.lo
        lo, hi = interval.lo, interval.hi

        def mass_below(t: float) -> float:
            capped = list(overlap.intervals)
            capped[axis] = Interval(base_lo, t)
            return self.mass_in(Rectangle(tuple(capped)))

        for _ in range(64):
            mid = 0.5 * (lo + hi)
            if mass_below(mid) < target:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        choices = rng.choice(len(self._components), size=n, p=self._weights)
        out = np.empty((n, self.dimensions), dtype=float)
        for idx in range(len(self._components)):
            mask = choices == idx
            count = int(mask.sum())
            if count:
                out[mask] = self._components[idx].sample(count, rng)
        return out

    def mean(self) -> np.ndarray:
        return np.sum(
            [w * comp.mean() for w, comp in zip(self._weights, self._components)], axis=0
        )
