"""Base classes of the uncertainty model.

The paper's model (Definition 1) represents every database object ``o_i`` by a
multi-dimensional probability density function ``f_i`` that is minimally
bounded by a rectangular *uncertainty region* ``R_i``:

* ``f_i(x) = 0`` for every ``x`` outside ``R_i``;
* ``\\int_{R_i} f_i(x) dx = 1`` (existential certainty; the hooks for
  existentially uncertain objects with total mass below 1 are kept in the
  ``existence_probability`` attribute).

Attributes may be arbitrarily correlated, so subclasses describe the joint
distribution directly rather than via per-attribute marginals.  The discrete
uncertainty model (a finite set of weighted alternatives) is the special case
implemented by :class:`~repro.uncertain.discrete.DiscreteObject`.

Every concrete distribution must expose the three primitives the pruning
machinery relies on:

``mass_in(region)``
    exact probability that the object falls inside an axis-aligned region —
    used to weight decomposition partitions (Lemma 1);
``conditional_median(region, axis)``
    the median of the distribution restricted to ``region`` along ``axis`` —
    used by the kd-tree median-split decomposition (Section V), which
    guarantees that each split halves the remaining probability mass;
``sample(n, rng)``
    Monte-Carlo samples — used by the MC comparison partner and by the
    statistical tests.
"""

from __future__ import annotations

import abc
import threading
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from ..geometry import Rectangle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .sharedmem import SharedDatabaseExport


class UncertainObject(abc.ABC):
    """Abstract base class for uncertain (probabilistic) database objects."""

    def __init__(self, label: Optional[str] = None, existence_probability: float = 1.0):
        if not 0.0 < existence_probability <= 1.0:
            raise ValueError(
                f"existence probability must be in (0, 1], got {existence_probability}"
            )
        self.label = label
        self.existence_probability = float(existence_probability)

    # ------------------------------------------------------------------ #
    # abstract protocol
    # ------------------------------------------------------------------ #
    @property
    @abc.abstractmethod
    def mbr(self) -> Rectangle:
        """Minimum bounding rectangle of the uncertainty region."""

    @abc.abstractmethod
    def mass_in(self, region: Rectangle) -> float:
        """Probability that the object lies inside ``region``.

        The returned value is an *absolute* probability, i.e. it already
        accounts for ``existence_probability``.
        """

    @abc.abstractmethod
    def conditional_median(self, region: Rectangle, axis: int) -> float:
        """Median along ``axis`` of the distribution restricted to ``region``.

        Callers guarantee ``mass_in(region) > 0``.
        """

    @abc.abstractmethod
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` i.i.d. samples, returned as an array of shape ``(n, d)``."""

    @abc.abstractmethod
    def mean(self) -> np.ndarray:
        """Expected location of the object (used by expected-distance baselines)."""

    # ------------------------------------------------------------------ #
    # derived helpers
    # ------------------------------------------------------------------ #
    @property
    def dimensions(self) -> int:
        """Number of spatial dimensions."""
        return self.mbr.dimensions

    def decompose(
        self, region: Rectangle, axis: int
    ) -> Optional[tuple[Rectangle, Rectangle, float, float]]:
        """Split the distribution restricted to ``region`` along ``axis``.

        Returns ``(left_region, right_region, left_mass, right_mass)`` or
        ``None`` when the region cannot be split along this axis (zero extent
        or all mass concentrated at a single coordinate).  Subclasses with a
        discrete support override this to split the alternative set exactly
        and to tighten the child regions to the contained alternatives.
        """
        interval = region.intervals[axis]
        if interval.is_degenerate:
            return None
        split_at = self.conditional_median(region, axis)
        if not (interval.lo < split_at < interval.hi):
            return None
        left, right = region.split(axis, split_at)
        left_mass = self.mass_in(left)
        right_mass = self.mass_in(right)
        return left, right, left_mass, right_mass

    def is_certain(self) -> bool:
        """True when the object degenerates to a single certain point."""
        return self.mbr.is_degenerate and self.existence_probability == 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        name = self.label if self.label is not None else "?"
        return f"{type(self).__name__}(label={name!r}, mbr={self.mbr.to_array().tolist()})"


class UncertainDatabase:
    """An ordered collection of uncertain objects.

    The database is the unit that queries and the IDCA algorithm operate on.
    Objects are addressed by their integer position; an optional string label
    per object is kept for reporting.
    """

    def __init__(self, objects: Sequence[UncertainObject]):
        self._objects = list(objects)
        if not self._objects:
            raise ValueError("an uncertain database must contain at least one object")
        d = self._objects[0].dimensions
        for obj in self._objects:
            if obj.dimensions != d:
                raise ValueError("all objects must share the same dimensionality")
        self._mbr_cache: Optional[np.ndarray] = None
        self._shared_export: Optional["SharedDatabaseExport"] = None
        self._share_lock = threading.Lock()
        self._position_by_id: Optional[dict[int, int]] = None

    # ------------------------------------------------------------------ #
    # process transport
    # ------------------------------------------------------------------ #
    def __reduce__(self):
        """Pickle as a lightweight handle while a shared-memory export is
        active; as constructor arguments otherwise.

        With an active export (see :meth:`share_memory`), the pickle stream
        carries only the block name, the object shells and the array
        descriptors — unpickling in another process *maps* the array payload
        instead of copying it.  Without one, the database reduces to its
        objects plus the MBR cache (so workers on the fallback path do not
        re-stack MBRs); the export itself never crosses the boundary.
        """
        export = self._shared_export
        if export is not None and export.active:
            from .sharedmem import attach_shared_database

            return (attach_shared_database, (export.handle,))
        return (_rebuild_database, (type(self), tuple(self._objects), self._mbr_cache))

    def share_memory(self) -> "SharedDatabaseExport":
        """Move the database's array payload into a shared-memory block.

        Returns the active :class:`~repro.uncertain.sharedmem.SharedDatabaseExport`
        (creating it on first call; repeated calls return the same export
        while it is active).  While active, pickling this database — e.g.
        shipping an engine to worker processes — produces a small handle that
        workers attach instead of unpickling a full copy.  Consumers bracket
        their use with ``export.acquire()`` / ``export.release()``; the last
        release unlinks the block.  Raises ``RuntimeError`` when shared
        memory is unavailable on this platform (see
        :func:`~repro.uncertain.sharedmem.shared_memory_available`).
        """
        from .sharedmem import SharedDatabaseExport

        with self._share_lock:
            if self._shared_export is not None and self._shared_export.active:
                return self._shared_export
            export = SharedDatabaseExport(self)
            self._shared_export = export
            return export

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._objects)

    def __getitem__(self, index: int) -> UncertainObject:
        return self._objects[index]

    def __iter__(self):
        return iter(self._objects)

    @property
    def objects(self) -> list[UncertainObject]:
        """The underlying list of objects (do not mutate)."""
        return self._objects

    def position_of(self, obj: UncertainObject) -> Optional[int]:
        """Database position of ``obj``, or ``None`` for non-members.

        Membership is by identity (the same semantics the engine's caches
        use); the identity map is built once and stays valid because
        databases are immutable after construction.  The shared bounds
        store uses positions as the process-independent part of its keys —
        positions are identical in every process that received this
        database, whether it was pickled or mapped through shared memory.
        """
        if self._position_by_id is None:
            self._position_by_id = {
                id(member): index for index, member in enumerate(self._objects)
            }
        return self._position_by_id.get(id(obj))

    @property
    def dimensions(self) -> int:
        """Dimensionality shared by all objects."""
        return self._objects[0].dimensions

    # ------------------------------------------------------------------ #
    # bulk geometry
    # ------------------------------------------------------------------ #
    def mbrs(self) -> np.ndarray:
        """All object MBRs stacked into an array of shape ``(n, d, 2)``.

        The array is cached; databases are treated as immutable after
        construction.
        """
        if self._mbr_cache is None:
            n, d = len(self._objects), self.dimensions
            arr = np.empty((n, d, 2), dtype=float)
            for i, obj in enumerate(self._objects):
                mbr = obj.mbr
                arr[i, :, 0] = mbr.lows
                arr[i, :, 1] = mbr.highs
            self._mbr_cache = arr
        return self._mbr_cache

    def labels(self) -> list[str]:
        """Per-object labels, synthesising ``obj-<i>`` when missing."""
        return [
            obj.label if obj.label is not None else f"obj-{i}"
            for i, obj in enumerate(self._objects)
        ]


def _rebuild_database(cls, objects, mbr_cache):
    """Unpickle target of the plain (non-shared-memory) database reduce."""
    database = cls(list(objects))
    database._mbr_cache = mbr_cache
    return database
