"""Base classes of the uncertainty model.

The paper's model (Definition 1) represents every database object ``o_i`` by a
multi-dimensional probability density function ``f_i`` that is minimally
bounded by a rectangular *uncertainty region* ``R_i``:

* ``f_i(x) = 0`` for every ``x`` outside ``R_i``;
* ``\\int_{R_i} f_i(x) dx = 1`` (existential certainty; the hooks for
  existentially uncertain objects with total mass below 1 are kept in the
  ``existence_probability`` attribute).

Attributes may be arbitrarily correlated, so subclasses describe the joint
distribution directly rather than via per-attribute marginals.  The discrete
uncertainty model (a finite set of weighted alternatives) is the special case
implemented by :class:`~repro.uncertain.discrete.DiscreteObject`.

Every concrete distribution must expose the three primitives the pruning
machinery relies on:

``mass_in(region)``
    exact probability that the object falls inside an axis-aligned region —
    used to weight decomposition partitions (Lemma 1);
``conditional_median(region, axis)``
    the median of the distribution restricted to ``region`` along ``axis`` —
    used by the kd-tree median-split decomposition (Section V), which
    guarantees that each split halves the remaining probability mass;
``sample(n, rng)``
    Monte-Carlo samples — used by the MC comparison partner and by the
    statistical tests.
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Union

import numpy as np

from ..geometry import Rectangle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .sharedmem import SharedDatabaseExport


class UncertainObject(abc.ABC):
    """Abstract base class for uncertain (probabilistic) database objects."""

    def __init__(self, label: Optional[str] = None, existence_probability: float = 1.0):
        if not 0.0 < existence_probability <= 1.0:
            raise ValueError(
                f"existence probability must be in (0, 1], got {existence_probability}"
            )
        self.label = label
        self.existence_probability = float(existence_probability)

    # ------------------------------------------------------------------ #
    # abstract protocol
    # ------------------------------------------------------------------ #
    @property
    @abc.abstractmethod
    def mbr(self) -> Rectangle:
        """Minimum bounding rectangle of the uncertainty region."""

    @abc.abstractmethod
    def mass_in(self, region: Rectangle) -> float:
        """Probability that the object lies inside ``region``.

        The returned value is an *absolute* probability, i.e. it already
        accounts for ``existence_probability``.
        """

    @abc.abstractmethod
    def conditional_median(self, region: Rectangle, axis: int) -> float:
        """Median along ``axis`` of the distribution restricted to ``region``.

        Callers guarantee ``mass_in(region) > 0``.
        """

    @abc.abstractmethod
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` i.i.d. samples, returned as an array of shape ``(n, d)``."""

    @abc.abstractmethod
    def mean(self) -> np.ndarray:
        """Expected location of the object (used by expected-distance baselines)."""

    # ------------------------------------------------------------------ #
    # derived helpers
    # ------------------------------------------------------------------ #
    @property
    def dimensions(self) -> int:
        """Number of spatial dimensions."""
        return self.mbr.dimensions

    def decompose(
        self, region: Rectangle, axis: int
    ) -> Optional[tuple[Rectangle, Rectangle, float, float]]:
        """Split the distribution restricted to ``region`` along ``axis``.

        Returns ``(left_region, right_region, left_mass, right_mass)`` or
        ``None`` when the region cannot be split along this axis (zero extent
        or all mass concentrated at a single coordinate).  Subclasses with a
        discrete support override this to split the alternative set exactly
        and to tighten the child regions to the contained alternatives.
        """
        interval = region.intervals[axis]
        if interval.is_degenerate:
            return None
        split_at = self.conditional_median(region, axis)
        if not (interval.lo < split_at < interval.hi):
            return None
        left, right = region.split(axis, split_at)
        left_mass = self.mass_in(left)
        right_mass = self.mass_in(right)
        return left, right, left_mass, right_mass

    def is_certain(self) -> bool:
        """True when the object degenerates to a single certain point."""
        return self.mbr.is_degenerate and self.existence_probability == 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        name = self.label if self.label is not None else "?"
        return f"{type(self).__name__}(label={name!r}, mbr={self.mbr.to_array().tolist()})"


@dataclass(frozen=True)
class Insert:
    """Append ``obj`` at the end of the database.

    ``generation`` is normally left ``None`` and assigned by
    :meth:`UncertainDatabase.resolve_mutations`; a resolved mutation carries
    the explicit value so replaying it in another process yields bit-identical
    versioning state (worker caches key columns by ``(position, generation)``).
    """

    obj: UncertainObject
    generation: Optional[int] = None


@dataclass(frozen=True)
class Update:
    """Replace the object at ``position`` with ``obj`` (fresh generation)."""

    position: int
    obj: UncertainObject
    generation: Optional[int] = None


@dataclass(frozen=True)
class Delete:
    """Remove the object at ``position``; later objects shift down by one."""

    position: int


Mutation = Union[Insert, Update, Delete]


class UncertainDatabase:
    """An ordered collection of uncertain objects, versioned by snapshots.

    The database is the unit that queries and the IDCA algorithm operate on.
    Objects are addressed by their integer position; an optional string label
    per object is kept for reporting.

    Each database instance is an immutable *snapshot*: :meth:`insert`,
    :meth:`update`, :meth:`delete` and :meth:`apply` never modify ``self`` but
    return a new snapshot that shares the untouched :class:`UncertainObject`
    instances (and their array payloads) with its parent.  Snapshots carry two
    pieces of versioning state:

    * a database-level **epoch** — incremented once per :meth:`apply` call —
      which layers above use for snapshot visibility ("a query admitted at
      epoch E sees exactly snapshot E");
    * a per-object **generation counter**, globally unique within a snapshot
      lineage, which the shared bounds store folds into its
      process-independent keys so that only columns touching a mutated object
      change identity (see :func:`repro.engine.boundstore.stable_object_key`).
    """

    def __init__(self, objects: Sequence[UncertainObject]):
        self._objects = list(objects)
        if not self._objects:
            raise ValueError("an uncertain database must contain at least one object")
        d = self._objects[0].dimensions
        for obj in self._objects:
            if obj.dimensions != d:
                raise ValueError("all objects must share the same dimensionality")
        self._mbr_cache: Optional[np.ndarray] = None
        self._shared_export: Optional["SharedDatabaseExport"] = None
        self._share_lock = threading.Lock()
        self._position_by_id: Optional[dict[int, int]] = None
        # Versioning state.  A freshly constructed database is epoch 0 with
        # per-object generations 0..n-1: generations are unique per object
        # within a lineage, so a (position, generation) pair never aliases two
        # different object contents even after deletes shift positions.
        self._epoch: int = 0
        self._generations: list[int] = list(range(len(self._objects)))
        self._next_generation: int = len(self._objects)

    # ------------------------------------------------------------------ #
    # process transport
    # ------------------------------------------------------------------ #
    def __reduce__(self):
        """Pickle as a lightweight handle while a shared-memory export is
        active; as constructor arguments otherwise.

        With an active export (see :meth:`share_memory`), the pickle stream
        carries only the block name, the object shells and the array
        descriptors — unpickling in another process *maps* the array payload
        instead of copying it.  Without one, the database reduces to its
        objects plus the MBR cache (so workers on the fallback path do not
        re-stack MBRs); the export itself never crosses the boundary.
        """
        export = self._shared_export
        if export is not None and export.active:
            from .sharedmem import attach_shared_database

            return (attach_shared_database, (export.handle,))
        return (
            _rebuild_database,
            (
                type(self),
                tuple(self._objects),
                self._mbr_cache,
                self._epoch,
                tuple(self._generations),
                self._next_generation,
            ),
        )

    def share_memory(self) -> "SharedDatabaseExport":
        """Move the database's array payload into a shared-memory block.

        Returns the active :class:`~repro.uncertain.sharedmem.SharedDatabaseExport`
        (creating it on first call; repeated calls return the same export
        while it is active).  While active, pickling this database — e.g.
        shipping an engine to worker processes — produces a small handle that
        workers attach instead of unpickling a full copy.  Consumers bracket
        their use with ``export.acquire()`` / ``export.release()``; the last
        release unlinks the block.  Raises ``RuntimeError`` when shared
        memory is unavailable on this platform (see
        :func:`~repro.uncertain.sharedmem.shared_memory_available`).
        """
        from .sharedmem import SharedDatabaseExport

        with self._share_lock:
            if self._shared_export is not None and self._shared_export.active:
                return self._shared_export
            export = SharedDatabaseExport(self)
            self._shared_export = export
            return export

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._objects)

    def __getitem__(self, index: int) -> UncertainObject:
        return self._objects[index]

    def __iter__(self):
        return iter(self._objects)

    @property
    def objects(self) -> list[UncertainObject]:
        """The underlying list of objects (do not mutate)."""
        return self._objects

    def position_of(self, obj: UncertainObject) -> Optional[int]:
        """Database position of ``obj``, or ``None`` for non-members — O(1).

        Membership is by identity (the same semantics the engine's caches
        use); the identity map is built once per snapshot and stays valid
        because snapshots are immutable — :meth:`apply` hands the *new*
        snapshot a maintained copy instead of re-scanning.  The shared bounds
        store uses positions as the process-independent part of its keys —
        positions are identical in every process that received this
        database, whether it was pickled or mapped through shared memory.
        """
        if self._position_by_id is None:
            self._position_by_id = {
                id(member): index for index, member in enumerate(self._objects)
            }
        return self._position_by_id.get(id(obj))

    # ------------------------------------------------------------------ #
    # versioning
    # ------------------------------------------------------------------ #
    @property
    def epoch(self) -> int:
        """Snapshot epoch: 0 for a fresh database, +1 per :meth:`apply`."""
        return self._epoch

    def generations(self) -> tuple[int, ...]:
        """Per-object generation counters, aligned with positions."""
        return tuple(self._generations)

    def generation_of(self, position: int) -> int:
        """Generation counter of the object at ``position``."""
        return self._generations[position]

    def resolve_mutations(self, mutations: Sequence[Mutation]) -> tuple[Mutation, ...]:
        """Assign explicit generation counters to a mutation batch.

        Returns a tuple of mutations where every :class:`Insert` /
        :class:`Update` carries a concrete ``generation``.  Applying a
        *resolved* batch is fully deterministic, so the service can resolve
        once in the parent and replay the identical batch in every worker —
        generations (and therefore the shared-store keys derived from them)
        agree bit-for-bit across processes.  Positions inside the batch are
        interpreted sequentially: each mutation addresses the database state
        produced by the mutations before it in the list.
        """
        resolved: list[Mutation] = []
        clock = self._next_generation
        for mutation in mutations:
            if isinstance(mutation, Insert):
                if mutation.generation is None:
                    mutation = Insert(mutation.obj, clock)
                clock = max(clock, mutation.generation + 1)
            elif isinstance(mutation, Update):
                if mutation.generation is None:
                    mutation = Update(mutation.position, mutation.obj, clock)
                clock = max(clock, mutation.generation + 1)
            elif not isinstance(mutation, Delete):
                raise TypeError(f"not a mutation: {mutation!r}")
            resolved.append(mutation)
        return tuple(resolved)

    def apply(self, mutations: Sequence[Mutation]) -> "UncertainDatabase":
        """Apply a mutation batch, returning the next snapshot (epoch + 1).

        The returned database shares every untouched object (and its array
        payload) with ``self``; only the touched positions change identity.
        ``self`` is left fully usable — in-flight queries against the old
        snapshot keep seeing exactly the old content.  Mutations are applied
        sequentially, so positions address the intermediate state produced by
        the earlier entries of the batch.  Raises ``IndexError`` for
        out-of-range positions and ``ValueError`` when the batch would leave
        the database empty or mix dimensionalities.
        """
        resolved = self.resolve_mutations(mutations)
        objects = list(self._objects)
        generations = list(self._generations)
        next_generation = self._next_generation
        d = self.dimensions
        for mutation in resolved:
            if isinstance(mutation, Delete):
                if not 0 <= mutation.position < len(objects):
                    raise IndexError(
                        f"delete position {mutation.position} out of range"
                    )
                del objects[mutation.position]
                del generations[mutation.position]
                continue
            if mutation.obj.dimensions != d:
                raise ValueError("all objects must share the same dimensionality")
            if isinstance(mutation, Insert):
                objects.append(mutation.obj)
                generations.append(mutation.generation)
            else:  # Update
                if not 0 <= mutation.position < len(objects):
                    raise IndexError(
                        f"update position {mutation.position} out of range"
                    )
                objects[mutation.position] = mutation.obj
                generations[mutation.position] = mutation.generation
            next_generation = max(next_generation, mutation.generation + 1)
        if not objects:
            raise ValueError("an uncertain database must contain at least one object")

        snapshot = UncertainDatabase.__new__(UncertainDatabase)
        snapshot._objects = objects
        snapshot._shared_export = None
        snapshot._share_lock = threading.Lock()
        snapshot._epoch = self._epoch + 1
        snapshot._generations = generations
        snapshot._next_generation = next_generation
        # Maintain the O(1) position index and the stacked-MBR cache
        # incrementally: untouched objects reuse their cached MBR row.
        snapshot._position_by_id = {id(obj): i for i, obj in enumerate(objects)}
        snapshot._mbr_cache = None
        if self._mbr_cache is not None:
            old_rows = self.position_of  # identity → old position, O(1) each
            rows = np.empty((len(objects), d, 2), dtype=float)
            for i, obj in enumerate(objects):
                j = old_rows(obj)
                if j is not None:
                    rows[i] = self._mbr_cache[j]
                else:
                    mbr = obj.mbr
                    rows[i, :, 0] = mbr.lows
                    rows[i, :, 1] = mbr.highs
            rows.flags.writeable = False
            snapshot._mbr_cache = rows
        return snapshot

    def insert(self, obj: UncertainObject) -> "UncertainDatabase":
        """Snapshot with ``obj`` appended (see :meth:`apply`)."""
        return self.apply([Insert(obj)])

    def update(self, position: int, obj: UncertainObject) -> "UncertainDatabase":
        """Snapshot with the object at ``position`` replaced (see :meth:`apply`)."""
        return self.apply([Update(position, obj)])

    def delete(self, position: int) -> "UncertainDatabase":
        """Snapshot with the object at ``position`` removed (see :meth:`apply`)."""
        return self.apply([Delete(position)])

    @property
    def dimensions(self) -> int:
        """Dimensionality shared by all objects."""
        return self._objects[0].dimensions

    # ------------------------------------------------------------------ #
    # bulk geometry
    # ------------------------------------------------------------------ #
    def mbrs(self) -> np.ndarray:
        """All object MBRs stacked into an array of shape ``(n, d, 2)``.

        The array is cached per snapshot; :meth:`apply` patches the cache
        incrementally (touched rows only) instead of re-stacking.  The
        returned array is read-only — the cache is shared between every
        caller (and between snapshots that reuse rows), so an in-place
        write would silently corrupt the snapshot for everyone else.
        """
        if self._mbr_cache is None:
            n, d = len(self._objects), self.dimensions
            arr = np.empty((n, d, 2), dtype=float)
            for i, obj in enumerate(self._objects):
                mbr = obj.mbr
                arr[i, :, 0] = mbr.lows
                arr[i, :, 1] = mbr.highs
            arr.flags.writeable = False
            self._mbr_cache = arr
        return self._mbr_cache

    def labels(self) -> list[str]:
        """Per-object labels, synthesising ``obj-<i>`` when missing."""
        return [
            obj.label if obj.label is not None else f"obj-{i}"
            for i, obj in enumerate(self._objects)
        ]


def _rebuild_database(cls, objects, mbr_cache, epoch=0, generations=None, next_generation=None):
    """Unpickle target of the plain (non-shared-memory) database reduce."""
    database = cls(list(objects))
    database._mbr_cache = mbr_cache
    database._epoch = epoch
    if generations is not None:
        database._generations = list(generations)
    if next_generation is not None:
        database._next_generation = next_generation
    return database
