"""Discrete uncertain objects (finite sets of weighted alternatives).

The discrete uncertainty model — "the probability distribution of an uncertain
object is given by a finite number of alternatives assigned with probabilities"
— is the special case of the continuous model the paper uses for the
comparison against the Monte-Carlo partner (Section VII-A: objects are
represented by 1000 samples each).  It is also the model for which the naive
possible-world oracle used in the test suite is exact.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..geometry import Rectangle
from .base import UncertainObject

__all__ = ["DiscreteObject", "PointObject"]

_EPS = 1e-12


class DiscreteObject(UncertainObject):
    """An uncertain object given by weighted point alternatives.

    Parameters
    ----------
    points:
        Array-like of shape ``(m, d)`` holding the alternative locations.
    weights:
        Optional array-like of shape ``(m,)`` with the alternative
        probabilities.  Defaults to the uniform distribution.  Weights are
        normalised to ``existence_probability``.
    """

    def __init__(
        self,
        points: np.ndarray,
        weights: Optional[Sequence[float]] = None,
        label: Optional[str] = None,
        existence_probability: float = 1.0,
    ):
        super().__init__(label=label, existence_probability=existence_probability)
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts.reshape(1, -1)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("points must be a non-empty array of shape (m, d)")
        self._points = pts
        if weights is None:
            w = np.full(pts.shape[0], 1.0 / pts.shape[0])
        else:
            w = np.asarray(weights, dtype=float)
            if w.shape != (pts.shape[0],):
                raise ValueError("weights must have shape (m,)")
            if np.any(w < 0):
                raise ValueError("weights must be non-negative")
            total = w.sum()
            if total <= 0:
                raise ValueError("weights must not all be zero")
            w = w / total
        self._weights = w * self.existence_probability
        self._mbr = Rectangle.bounding(pts)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def points(self) -> np.ndarray:
        """Alternative locations of shape ``(m, d)`` (do not mutate)."""
        return self._points

    @property
    def weights(self) -> np.ndarray:
        """Alternative probabilities (sum to ``existence_probability``)."""
        return self._weights

    @property
    def mbr(self) -> Rectangle:
        return self._mbr

    # ------------------------------------------------------------------ #
    # UncertainObject protocol
    # ------------------------------------------------------------------ #
    def _mask_in(self, region: Rectangle) -> np.ndarray:
        lows, highs = region.lows, region.highs
        return np.all((self._points >= lows) & (self._points <= highs), axis=1)

    def mass_in(self, region: Rectangle) -> float:
        return float(self._weights[self._mask_in(region)].sum())

    def conditional_median(self, region: Rectangle, axis: int) -> float:
        mask = self._mask_in(region)
        if not mask.any():
            raise ValueError("region does not contain any alternative")
        coords = self._points[mask, axis]
        weights = self._weights[mask]
        order = np.argsort(coords)
        coords, weights = coords[order], weights[order]
        cumulative = np.cumsum(weights)
        idx = int(np.searchsorted(cumulative, 0.5 * cumulative[-1]))
        idx = min(idx, len(coords) - 1)
        median = coords[idx]
        # place the split strictly between the median value and the next larger
        # distinct value so that no alternative lies exactly on a partition
        # boundary (keeps partitions disjoint)
        larger = coords[coords > median]
        if larger.size > 0:
            return float(0.5 * (median + larger.min()))
        # the weighted median is the largest coordinate: split below it instead
        # so the split still separates alternatives whenever two distinct
        # coordinates exist along this axis
        smaller = coords[coords < median]
        if smaller.size == 0:
            return float(median)
        return float(0.5 * (smaller.max() + median))

    def decompose(
        self, region: Rectangle, axis: int
    ) -> Optional[tuple[Rectangle, Rectangle, float, float]]:
        """Exact split of the alternatives inside ``region`` along ``axis``.

        Child regions are tightened to the bounding boxes of the alternatives
        they contain, which strictly improves the pruning power of the
        decomposition-based bounds.
        """
        mask = self._mask_in(region)
        pts = self._points[mask]
        weights = self._weights[mask]
        if pts.shape[0] < 2:
            return None
        coords = pts[:, axis]
        if coords.max() - coords.min() <= _EPS:
            return None
        split_at = self.conditional_median(region, axis)
        left_mask = coords <= split_at
        right_mask = ~left_mask
        if not left_mask.any() or not right_mask.any():
            return None
        left_region = Rectangle.bounding(pts[left_mask])
        right_region = Rectangle.bounding(pts[right_mask])
        return (
            left_region,
            right_region,
            float(weights[left_mask].sum()),
            float(weights[right_mask].sum()),
        )

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        probabilities = self._weights / self._weights.sum()
        idx = rng.choice(self._points.shape[0], size=n, p=probabilities)
        return self._points[idx]

    def mean(self) -> np.ndarray:
        probabilities = self._weights / self._weights.sum()
        return probabilities @ self._points


class PointObject(DiscreteObject):
    """A certain (non-probabilistic) object, i.e. a single point alternative.

    Certain query points — the setting of most prior work the paper discusses —
    are expressed as ``PointObject`` so that the same query code path handles
    certain and uncertain reference objects uniformly.
    """

    def __init__(self, point: Sequence[float], label: Optional[str] = None):
        super().__init__(np.asarray(point, dtype=float).reshape(1, -1), label=label)
