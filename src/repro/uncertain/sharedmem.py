"""Shared-memory dataset transport for worker processes.

Shipping an :class:`~repro.uncertain.base.UncertainDatabase` to a worker
process by plain pickling copies every instance array (discrete alternative
sets, histogram bins, the MBR cache) once *per worker*.  For the long-lived
service front-end that cost is pure waste: the arrays are immutable after
construction, so every worker can **map** one shared copy instead.

The transport splits the database into two parts:

* the **array payload** — every numeric :class:`numpy.ndarray` of at least
  :data:`MIN_SHARED_NBYTES` bytes reachable from the database is copied once
  into a single :mod:`multiprocessing.shared_memory` block, laid out with
  aligned offsets;
* the **shell** — a pickle of the database in which each extracted array is
  replaced by a persistent-id token ``("repro-shm-array", index)``.  The
  shell holds only object scaffolding (class names, scalars, small arrays)
  and is typically a few kilobytes regardless of database size.

A :class:`SharedDatabaseHandle` (block name + shell + array descriptors) is
what crosses the process boundary; :func:`attach_shared_database` rebuilds
the database in the receiving process with every extracted array backed by
the mapped block — read-only, so a worker cannot corrupt its siblings.
Attachment is memoised per process and per block, so every engine unpickled
in a worker shares one database instance.

Ownership and unlink rules (documented in ``docs/architecture.md``):

* the process that created the export owns the block and is the only one
  that may unlink it;
* consumers (e.g. a :class:`~repro.engine.service.QueryService`) bracket
  their use with :meth:`SharedDatabaseExport.acquire` /
  :meth:`~SharedDatabaseExport.release`; the drop to zero acquisitions
  closes and unlinks the block;
* a :mod:`weakref` finalizer backs the explicit paths, so an export that is
  garbage-collected or alive at interpreter exit still unlinks its block;
* attaching processes never unlink — they also unregister the block from
  their :mod:`multiprocessing.resource_tracker` so a worker exit cannot
  destroy a segment the parent still serves from (bpo-39959).

Platforms without ``multiprocessing.shared_memory`` (or with the
``REPRO_DISABLE_SHARED_MEMORY`` environment variable set) fall back to plain
pickling transparently: :func:`shared_memory_available` reports the
capability and ``UncertainDatabase.__reduce__`` only takes the handle path
while an export is active.
"""

from __future__ import annotations

import io
import itertools
import os
import pickle
import threading
import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .base import UncertainDatabase

try:  # pragma: no cover - the import succeeds on every supported platform
    from multiprocessing import resource_tracker as _resource_tracker
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without POSIX shm
    _shared_memory = None
    _resource_tracker = None

__all__ = [
    "FileBackedBlock",
    "MIN_SHARED_NBYTES",
    "MutationDelta",
    "MutationDeltaExport",
    "SharedDatabaseExport",
    "SharedDatabaseHandle",
    "attach_shared_database",
    "database_transport",
    "load_delta_mutations",
    "shared_memory_available",
    "unlink_block",
]

#: Arrays below this many bytes stay in the shell pickle: a descriptor plus
#: alignment padding would cost more than the bytes it saves.
MIN_SHARED_NBYTES = 256

#: Offsets into the shared block are aligned to this many bytes.
_ALIGNMENT = 64

#: Environment kill-switch: any non-empty value forces the pickling fallback.
DISABLE_ENV = "REPRO_DISABLE_SHARED_MEMORY"

_ARRAY_TAG = "repro-shm-array"

_block_counter = itertools.count()


def shared_memory_available() -> bool:
    """Whether shared-memory dataset transport can be used on this platform.

    ``False`` when :mod:`multiprocessing.shared_memory` is missing or when
    the ``REPRO_DISABLE_SHARED_MEMORY`` environment variable is set (the
    tested fallback path); consumers must then ship databases by plain
    pickling.
    """
    if _shared_memory is None:
        return False
    if os.environ.get(DISABLE_ENV):
        return False
    return True


def _next_block_name() -> str:
    """A process-unique shared-memory block name (short, for macOS limits)."""
    return f"repro_{os.getpid()}_{next(_block_counter)}"


def _extractable(obj) -> bool:
    """Whether an object is an array worth moving into the shared block."""
    return (
        isinstance(obj, np.ndarray)
        and not obj.dtype.hasobject
        and obj.dtype.names is None
        and obj.nbytes >= MIN_SHARED_NBYTES
    )


class _ArrayExtractor(pickle.Pickler):
    """Pickler that siphons large numeric arrays out of the stream.

    Every qualifying array is appended to ``arrays`` (de-duplicated by
    identity so shared references stay shared after attach) and replaced in
    the pickle stream by a persistent id naming its position.
    """

    def __init__(self, file, arrays: list[np.ndarray]):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._arrays = arrays
        self._index_by_id: dict[int, int] = {}

    def persistent_id(self, obj):
        """Divert qualifying arrays to the side table (pickle hook)."""
        if not _extractable(obj):
            return None
        index = self._index_by_id.get(id(obj))
        if index is None:
            index = len(self._arrays)
            self._arrays.append(np.ascontiguousarray(obj))
            self._index_by_id[id(obj)] = index
        return (_ARRAY_TAG, index)


class _ShellUnpickler(pickle.Unpickler):
    """Unpickler that resolves persistent ids against the mapped arrays."""

    def __init__(self, file, arrays: list[np.ndarray]):
        super().__init__(file)
        self._arrays = arrays

    def persistent_load(self, pid):
        """Swap a persistent id back for its shared-memory array view."""
        tag, index = pid
        if tag != _ARRAY_TAG:  # pragma: no cover - foreign pickle streams
            raise pickle.UnpicklingError(f"unknown persistent id tag {tag!r}")
        return self._arrays[index]


@dataclass(frozen=True)
class SharedDatabaseHandle:
    """What crosses the process boundary instead of the database.

    The handle is small (shell pickle + one descriptor per extracted array)
    and only valid while the owning :class:`SharedDatabaseExport` keeps the
    block linked — it is a *transport* token for worker processes, not a
    persistence format.

    Attributes
    ----------
    shm_name:
        Name of the shared-memory block holding the array payload.
    shell:
        Pickle of the database with arrays replaced by persistent ids.
    descriptors:
        One ``(offset, shape, dtype_str)`` triple per extracted array, in
        persistent-id order.
    """

    shm_name: str
    shell: bytes
    descriptors: tuple[tuple[int, tuple[int, ...], str], ...]

    def attach(self) -> "UncertainDatabase":
        """Rebuild the database in this process, mapping the shared block."""
        return attach_shared_database(self)


def _layout(arrays: list[np.ndarray]) -> tuple[list[int], int]:
    """Aligned offsets for the arrays and the total block size."""
    offsets: list[int] = []
    total = 0
    for arr in arrays:
        total = -(-total // _ALIGNMENT) * _ALIGNMENT
        offsets.append(total)
        total += arr.nbytes
    return offsets, total


def _cleanup_block(shm) -> None:
    """Best-effort close + unlink used by finalizers and error paths."""
    try:
        shm.close()
    except Exception:  # pragma: no cover - nothing left to release
        pass
    try:
        shm.unlink()
    except Exception:  # already unlinked (or the platform removed it)
        pass


class FileBackedBlock:
    """A disk-backed mmap with the surface of a ``SharedMemory`` block.

    Drop-in for the subset of the ``multiprocessing.shared_memory`` API the
    bounds store uses (``buf``/``size``/``close``, plus ``flush``), backed
    by a regular file instead of ``/dev/shm`` — the persistence flavour
    that survives reboots.  With ``create=True`` the file is (re)created
    zero-filled at ``size`` bytes; otherwise the existing file is mapped as
    is (``FileNotFoundError`` when missing, ``ValueError`` when empty —
    nothing can be mapped).  Dirty pages live in the kernel's page cache,
    so they survive even a SIGKILL of every mapping process; ``flush``
    additionally pushes them to disk.
    """

    def __init__(self, path: str, size: Optional[int] = None, create: bool = False):
        import mmap

        self.name = path
        if create:
            if size is None or size <= 0:
                raise ValueError("creating a file-backed block requires a size")
            fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o600)
            try:
                # truncate-then-extend zero-fills: no stale bytes from a
                # previous (possibly larger) incarnation survive a rebuild
                os.ftruncate(fd, 0)
                os.ftruncate(fd, size)
            except BaseException:  # pragma: no cover - truncate failures
                os.close(fd)
                raise
        else:
            fd = os.open(path, os.O_RDWR)
        try:
            actual = os.fstat(fd).st_size
            if actual == 0:
                raise ValueError(f"file-backed block {path!r} is empty")
            self._mmap = mmap.mmap(fd, actual)
        finally:
            os.close(fd)
        self.size = actual
        self.buf: Optional[memoryview] = memoryview(self._mmap)

    def flush(self) -> None:
        """Push dirty pages to the backing file (best-effort)."""
        if self.buf is not None:
            self._mmap.flush()

    def close(self) -> None:
        """Release the view and unmap (idempotent); never deletes the file."""
        if self.buf is not None:
            self.buf.release()
            self.buf = None
            self._mmap.close()


class SharedDatabaseExport:
    """Parent-side owner of one shared-memory copy of a database.

    Created through :meth:`UncertainDatabase.share_memory`.  While the
    export is :attr:`active`, pickling the database anywhere in the owning
    process produces the lightweight :class:`SharedDatabaseHandle` instead
    of the full object graph — that is the entire integration surface; the
    parallel executor and the query service need no special cases.

    Lifetime is reference-counted: every consumer brackets its use with
    :meth:`acquire`/:meth:`release`, and the drop to zero acquisitions (or
    an explicit :meth:`close`, or garbage collection / interpreter exit via
    the finalizer) closes and unlinks the block.  The export is also a
    context manager — ``with database.share_memory():`` — for script use.
    """

    def __init__(self, database: "UncertainDatabase"):
        if not shared_memory_available():
            raise RuntimeError(
                "multiprocessing.shared_memory is unavailable "
                f"(or disabled via {DISABLE_ENV}); use plain pickling"
            )
        database.mbrs()  # populate the MBR cache so workers map it too
        arrays: list[np.ndarray] = []
        buffer = io.BytesIO()
        _ArrayExtractor(buffer, arrays).dump(database)
        offsets, total = _layout(arrays)
        self._shm = _shared_memory.SharedMemory(
            create=True, size=max(total, 8), name=_next_block_name()
        )
        try:
            for arr, offset in zip(arrays, offsets):
                np.ndarray(
                    arr.shape, dtype=arr.dtype, buffer=self._shm.buf, offset=offset
                )[...] = arr
        except BaseException:  # pragma: no cover - copy failures are fatal
            _cleanup_block(self._shm)
            raise
        self.handle = SharedDatabaseHandle(
            shm_name=self._shm.name,
            shell=buffer.getvalue(),
            descriptors=tuple(
                (offset, arr.shape, arr.dtype.str)
                for arr, offset in zip(arrays, offsets)
            ),
        )
        self.database = database
        #: Bytes of array payload moved into the shared block.
        self.payload_nbytes = total
        #: Number of arrays extracted from the pickle stream.
        self.num_arrays = len(arrays)
        self._acquisitions = 0
        self._lock = threading.Lock()
        self._active = True
        _OWNED_NAMES.add(self._shm.name)
        self._finalizer = weakref.finalize(self, _cleanup_block, self._shm)

    # ------------------------------------------------------------------ #
    # lifetime
    # ------------------------------------------------------------------ #
    @property
    def active(self) -> bool:
        """Whether the block is still linked and the handle path is taken."""
        return self._active

    def acquire(self) -> "SharedDatabaseExport":
        """Register a consumer; pair every call with :meth:`release`."""
        with self._lock:
            if not self._active:
                raise RuntimeError("the shared-memory export is already closed")
            self._acquisitions += 1
        return self

    def release(self) -> None:
        """Drop one consumer; the last release closes and unlinks the block."""
        close = False
        with self._lock:
            self._acquisitions -= 1
            close = self._acquisitions <= 0
        if close:
            self.close()

    def close(self) -> None:
        """Unlink the block and detach from the database (idempotent).

        After closing, pickling the database falls back to the plain path
        and previously shipped handles can no longer be attached by *new*
        processes; existing attachments keep their mappings until they exit
        (POSIX keeps unlinked segments alive while mapped).
        """
        with self._lock:
            if not self._active:
                return
            self._active = False
        if getattr(self.database, "_shared_export", None) is self:
            self.database._shared_export = None
        self._finalizer.detach()
        _cleanup_block(self._shm)

    def __enter__(self) -> "SharedDatabaseExport":
        """Context-manager use counts as one acquisition."""
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        """Release the context-manager acquisition."""
        self.release()


# Names of blocks created by this process (or inherited from the creating
# parent under the fork start method, where the resource tracker is shared).
# Attaching to an owned name must NOT undo the creator's tracker
# registration, or the crash-cleanup guarantee — and, under fork, the
# explicit unlink's own unregister — would be lost.
_OWNED_NAMES: set[str] = set()


def _attach_block(name: str):
    """Attach to a named block without adopting cleanup responsibility.

    Attaching registers the segment with this process's resource tracker on
    Python < 3.13, which would make a *worker* exit unlink a segment the
    parent still serves from (bpo-39959) — so the registration is undone,
    except for blocks this tracker already owns (see ``_OWNED_NAMES``).
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track= parameter
        shm = _shared_memory.SharedMemory(name=name)
        if _resource_tracker is not None and name not in _OWNED_NAMES:
            try:
                _resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker already gone
                pass
        return shm


def unlink_block(name: str) -> bool:
    """Force-unlink a named shared-memory block; returns whether it existed.

    Simulates losing the segment out from under its consumers (host
    cleanup scripts, ``/dev/shm`` pressure, a crashed owner's tracker):
    existing mappings stay valid — POSIX keeps an unlinked segment alive
    while mapped — but any process attaching *after* the unlink gets
    ``FileNotFoundError`` and must take its degradation path.  Used by the
    fault-injection harness (``repro/testing/faults.py``); the owner's own
    later cleanup tolerates the missing name.
    """
    if _shared_memory is None:  # pragma: no cover - platforms without shm
        return False
    try:
        shm = _attach_block(name)
    except FileNotFoundError:
        return False
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - raced another unlink
        pass
    shm.close()
    return True


# One attachment per block and process: every engine/context unpickled in a
# worker resolves to the same database instance, so worker-local caches keyed
# by object identity keep working across chunks.
_ATTACHMENTS: dict[str, tuple[object, "UncertainDatabase"]] = {}


def attach_shared_database(handle: SharedDatabaseHandle) -> "UncertainDatabase":
    """Rebuild a database from its handle, mapping — not copying — the arrays.

    The target of ``UncertainDatabase.__reduce__`` on the shared-memory
    path, invoked by ``pickle.loads`` inside worker processes.  Array views
    are read-only; mutating a mapped database is a bug, never a data race.
    Memoised per process, so repeated unpickles are effectively free.
    """
    if _shared_memory is None:  # pragma: no cover - handle from another OS
        raise RuntimeError(
            "cannot attach a shared-memory database: "
            "multiprocessing.shared_memory is unavailable on this platform"
        )
    cached = _ATTACHMENTS.get(handle.shm_name)
    if cached is not None:
        return cached[1]
    try:
        shm = _attach_block(handle.shm_name)
    except FileNotFoundError as error:
        raise RuntimeError(
            f"shared-memory block {handle.shm_name!r} no longer exists — "
            "handles are transport tokens, only valid while the owning "
            "SharedDatabaseExport is active"
        ) from error
    arrays: list[np.ndarray] = []
    for offset, shape, dtype in handle.descriptors:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
        view.flags.writeable = False
        arrays.append(view)
    database = _ShellUnpickler(io.BytesIO(handle.shell), arrays).load()
    database._shm_attachment = shm
    database._shm_name = handle.shm_name
    _ATTACHMENTS[handle.shm_name] = (shm, database)
    return database


@dataclass(frozen=True)
class MutationDelta:
    """A mutation batch in transport form: touched objects only.

    Shipping the batch — rather than re-exporting the whole database block —
    is what keeps mutations cheap on the worker path: the payload scales with
    the number of touched objects, not with the database.  ``shell`` is a
    pickle of the *resolved* mutation tuple (explicit generations, see
    :meth:`UncertainDatabase.resolve_mutations`); when ``shm_name`` is set,
    large arrays of the touched objects were extracted into their own small
    shared block and the shell references them by descriptor, exactly like
    :class:`SharedDatabaseHandle`.  Replaying a delta is idempotent by epoch:
    it applies only to a database at ``base_epoch`` and advances it to
    ``new_epoch``, so a respawned worker that already replayed it skips it.
    """

    base_epoch: int
    new_epoch: int
    shell: bytes
    shm_name: Optional[str]
    descriptors: tuple[tuple[int, tuple[int, ...], str], ...]


class MutationDeltaExport:
    """Parent-side owner of one mutation delta (and its block, if any).

    Built from a database snapshot and the resolved mutation batch that
    advances it.  The export must stay alive while any worker might still
    attach the delta's block — the worker pool keeps its deltas for lane
    respawns, and releases them when it shuts down.  Falls back to a plain
    inline pickle when shared memory is unavailable or nothing qualifies for
    extraction.
    """

    def __init__(self, database: "UncertainDatabase", mutations) -> None:
        arrays: list[np.ndarray] = []
        buffer = io.BytesIO()
        _ArrayExtractor(buffer, arrays).dump(tuple(mutations))
        shm_name: Optional[str] = None
        descriptors: tuple = ()
        self._shm = None
        self._finalizer = None
        if arrays and shared_memory_available():
            offsets, total = _layout(arrays)
            self._shm = _shared_memory.SharedMemory(
                create=True, size=max(total, 8), name=_next_block_name()
            )
            try:
                for arr, offset in zip(arrays, offsets):
                    np.ndarray(
                        arr.shape, dtype=arr.dtype, buffer=self._shm.buf, offset=offset
                    )[...] = arr
            except BaseException:  # pragma: no cover - copy failures are fatal
                _cleanup_block(self._shm)
                raise
            shm_name = self._shm.name
            descriptors = tuple(
                (offset, arr.shape, arr.dtype.str)
                for arr, offset in zip(arrays, offsets)
            )
            _OWNED_NAMES.add(shm_name)
            self._finalizer = weakref.finalize(self, _cleanup_block, self._shm)
        else:
            # Inline path: re-pickle without extraction so the shell is
            # self-contained (plain pickle.loads on the worker side).
            buffer = io.BytesIO()
            pickle.Pickler(buffer, protocol=pickle.HIGHEST_PROTOCOL).dump(
                tuple(mutations)
            )
        self.delta = MutationDelta(
            base_epoch=database.epoch,
            new_epoch=database.epoch + 1,
            shell=buffer.getvalue(),
            shm_name=shm_name,
            descriptors=descriptors,
        )

    def close(self) -> None:
        """Unlink the delta's block, if one was created (idempotent)."""
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        if self._shm is not None:
            _cleanup_block(self._shm)
            self._shm = None


# Delta blocks a receiving process has mapped, kept alive for the process
# lifetime: the unpickled objects hold read-only views into the mapping.
_DELTA_ATTACHMENTS: dict[str, object] = {}


def load_delta_mutations(delta: MutationDelta):
    """Rebuild the resolved mutation tuple from a delta in this process.

    On the shared-memory path the touched objects' arrays are mapped
    read-only from the delta's block; on the inline path the shell is a
    self-contained pickle.
    """
    if delta.shm_name is None:
        return pickle.loads(delta.shell)
    shm = _DELTA_ATTACHMENTS.get(delta.shm_name)
    if shm is None:
        try:
            shm = _attach_block(delta.shm_name)
        except FileNotFoundError as error:
            raise RuntimeError(
                f"mutation-delta block {delta.shm_name!r} no longer exists — "
                "deltas are transport tokens, only valid while the owning "
                "MutationDeltaExport is alive"
            ) from error
        _DELTA_ATTACHMENTS[delta.shm_name] = shm
    arrays: list[np.ndarray] = []
    for offset, shape, dtype in delta.descriptors:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
        view.flags.writeable = False
        arrays.append(view)
    return _ShellUnpickler(io.BytesIO(delta.shell), arrays).load()


def database_transport(database: "UncertainDatabase") -> str:
    """How this process obtained ``database``: ``"shared_memory"`` when it
    was rebuilt from a handle with mapped arrays, ``"pickle"`` otherwise
    (including the original instance in the owning process)."""
    if getattr(database, "_shm_attachment", None) is not None:
        return "shared_memory"
    return "pickle"
