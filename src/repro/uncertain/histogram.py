"""Histogram-based uncertain objects (independent piecewise-constant marginals).

Continuous sensor values are frequently published as per-attribute histograms
rather than parametric distributions.  :class:`HistogramObject` models an
uncertain object whose attributes are mutually independent and whose marginal
densities are piecewise constant over arbitrary bin boundaries.  Because both
the bin masses and the within-bin densities are known exactly, the object
supports the exact ``mass_in`` / ``conditional_median`` primitives the pruning
machinery requires — no approximation is introduced anywhere.

This class also demonstrates how to extend the uncertainty model beyond the
distributions used in the paper's experiments: any distribution that can
integrate itself exactly over boxes plugs into IDCA unchanged.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..geometry import Rectangle
from .base import UncertainObject

__all__ = ["HistogramObject"]

_EPS = 1e-12


class _MarginalHistogram:
    """A 1-D piecewise-constant distribution over consecutive bins."""

    def __init__(self, edges: Sequence[float], masses: Sequence[float]):
        edges_arr = np.asarray(edges, dtype=float)
        masses_arr = np.asarray(masses, dtype=float)
        if edges_arr.ndim != 1 or edges_arr.shape[0] < 2:
            raise ValueError("a histogram needs at least two bin edges")
        if np.any(np.diff(edges_arr) <= 0):
            raise ValueError("bin edges must be strictly increasing")
        if masses_arr.shape != (edges_arr.shape[0] - 1,):
            raise ValueError("need exactly one mass per bin")
        if np.any(masses_arr < 0):
            raise ValueError("bin masses must be non-negative")
        total = masses_arr.sum()
        if total <= 0:
            raise ValueError("bin masses must not all be zero")
        self.edges = edges_arr
        self.masses = masses_arr / total
        self.cumulative = np.concatenate([[0.0], np.cumsum(self.masses)])

    @property
    def lo(self) -> float:
        return float(self.edges[0])

    @property
    def hi(self) -> float:
        return float(self.edges[-1])

    def cdf(self, x: float) -> float:
        """Probability mass below (or at) ``x``."""
        if x <= self.lo:
            return 0.0
        if x >= self.hi:
            return 1.0
        idx = int(np.searchsorted(self.edges, x, side="right")) - 1
        idx = min(max(idx, 0), self.masses.shape[0] - 1)
        left, right = self.edges[idx], self.edges[idx + 1]
        within = (x - left) / (right - left)
        return float(self.cumulative[idx] + within * self.masses[idx])

    def mass_between(self, lo: float, hi: float) -> float:
        """Probability mass of the interval ``[lo, hi]``."""
        if hi < lo:
            return 0.0
        return max(0.0, self.cdf(hi) - self.cdf(lo))

    def quantile_between(self, lo: float, hi: float, fraction: float) -> float:
        """The ``fraction``-quantile of the distribution restricted to ``[lo, hi]``."""
        lo = max(lo, self.lo)
        hi = min(hi, self.hi)
        cdf_lo, cdf_hi = self.cdf(lo), self.cdf(hi)
        if cdf_hi - cdf_lo <= _EPS:
            return 0.5 * (lo + hi)
        target = cdf_lo + fraction * (cdf_hi - cdf_lo)
        idx = int(np.searchsorted(self.cumulative, target, side="right")) - 1
        idx = min(max(idx, 0), self.masses.shape[0] - 1)
        left, right = self.edges[idx], self.edges[idx + 1]
        mass = self.masses[idx]
        if mass <= _EPS:
            value = left
        else:
            value = left + (target - self.cumulative[idx]) / mass * (right - left)
        return float(min(max(value, lo), hi))

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        bins = rng.choice(self.masses.shape[0], size=n, p=self.masses)
        left = self.edges[bins]
        right = self.edges[bins + 1]
        return rng.uniform(left, right)

    def mean(self) -> float:
        centers = 0.5 * (self.edges[:-1] + self.edges[1:])
        return float(centers @ self.masses)


class HistogramObject(UncertainObject):
    """Uncertain object with independent piecewise-constant marginals.

    Parameters
    ----------
    edges:
        Per-dimension bin edges; ``edges[i]`` is a strictly increasing sequence
        of at least two values.
    masses:
        Per-dimension bin masses (one entry fewer than the edges); they are
        normalised per dimension.
    """

    def __init__(
        self,
        edges: Sequence[Sequence[float]],
        masses: Sequence[Sequence[float]],
        label: Optional[str] = None,
        existence_probability: float = 1.0,
    ):
        super().__init__(label=label, existence_probability=existence_probability)
        if len(edges) != len(masses) or len(edges) == 0:
            raise ValueError("edges and masses must describe the same, non-zero dimensionality")
        self._marginals = [
            _MarginalHistogram(edge, mass) for edge, mass in zip(edges, masses)
        ]
        self._mbr = Rectangle.from_bounds(
            [marginal.lo for marginal in self._marginals],
            [marginal.hi for marginal in self._marginals],
        )

    @property
    def mbr(self) -> Rectangle:
        return self._mbr

    def mass_in(self, region: Rectangle) -> float:
        fraction = 1.0
        for marginal, interval in zip(self._marginals, region.intervals):
            fraction *= marginal.mass_between(interval.lo, interval.hi)
            if fraction <= 0.0:
                return 0.0
        return self.existence_probability * fraction

    def conditional_median(self, region: Rectangle, axis: int) -> float:
        interval = region.intervals[axis]
        return self._marginals[axis].quantile_between(interval.lo, interval.hi, 0.5)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        out = np.empty((n, self.dimensions), dtype=float)
        for axis, marginal in enumerate(self._marginals):
            out[:, axis] = marginal.sample(n, rng)
        return out

    def mean(self) -> np.ndarray:
        return np.array([marginal.mean() for marginal in self._marginals])

    @classmethod
    def from_samples(
        cls,
        points: np.ndarray,
        bins: int = 8,
        label: Optional[str] = None,
    ) -> "HistogramObject":
        """Fit a histogram object to a sample cloud (equi-width bins per axis)."""
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("points must be a non-empty array of shape (n, d)")
        if bins < 1:
            raise ValueError("bins must be at least 1")
        edges, masses = [], []
        for axis in range(pts.shape[1]):
            lo, hi = float(pts[:, axis].min()), float(pts[:, axis].max())
            if hi - lo <= _EPS:
                hi = lo + 1e-9
            axis_edges = np.linspace(lo, hi, bins + 1)
            counts, _ = np.histogram(pts[:, axis], bins=axis_edges)
            if counts.sum() == 0:
                counts = np.ones_like(counts)
            edges.append(axis_edges)
            masses.append(counts.astype(float))
        return cls(edges, masses, label=label)
