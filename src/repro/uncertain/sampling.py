"""Monte-Carlo sampling utilities shared by baselines, tests and examples."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .base import UncertainDatabase, UncertainObject
from .discrete import DiscreteObject

__all__ = [
    "sample_database",
    "discretise_object",
    "discretise_database",
    "pairwise_distances",
]


def sample_database(
    database: UncertainDatabase,
    samples_per_object: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``samples_per_object`` samples from every object in the database.

    Returns an array of shape ``(n_objects, samples_per_object, d)``.
    """
    if samples_per_object <= 0:
        raise ValueError("samples_per_object must be positive")
    n, d = len(database), database.dimensions
    out = np.empty((n, samples_per_object, d), dtype=float)
    for i, obj in enumerate(database):
        out[i] = obj.sample(samples_per_object, rng)
    return out


def discretise_object(
    obj: UncertainObject,
    samples: int,
    rng: np.random.Generator,
    label: Optional[str] = None,
) -> DiscreteObject:
    """Convert any uncertain object into a sample-based discrete object.

    This mirrors the experimental setup of Section VII-A: the continuous model
    is replaced by ``samples`` equally-weighted alternatives per object so the
    Monte-Carlo comparison partner (which only supports the discrete model)
    can be applied, while IDCA runs on the very same discretised objects for a
    fair comparison.
    """
    if isinstance(obj, DiscreteObject):
        return obj
    pts = obj.sample(samples, rng)
    return DiscreteObject(
        pts,
        label=label if label is not None else obj.label,
        existence_probability=obj.existence_probability,
    )


def discretise_database(
    database: UncertainDatabase,
    samples: int,
    rng: np.random.Generator,
) -> UncertainDatabase:
    """Discretise every object of a database (see :func:`discretise_object`)."""
    return UncertainDatabase(
        [discretise_object(obj, samples, rng) for obj in database]
    )


def pairwise_distances(a: np.ndarray, b: np.ndarray, p: float = 2.0) -> np.ndarray:
    """All ``Lp`` distances between two point sets of shape ``(m, d)``/``(k, d)``.

    Returns an array of shape ``(m, k)``.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    diff = np.abs(a[:, None, :] - b[None, :, :])
    if np.isinf(p):
        return diff.max(axis=-1)
    return np.sum(diff ** p, axis=-1) ** (1.0 / p)
