"""Uncertainty model: uncertain objects, databases, decomposition and sampling."""

from .base import Delete, Insert, Mutation, Update, UncertainDatabase, UncertainObject
from .continuous import BoxUniformObject, MixtureObject, TruncatedGaussianObject
from .discrete import DiscreteObject, PointObject
from .histogram import HistogramObject
from .decomposition import (
    CSRPartitionBatch,
    DecompositionNode,
    DecompositionTree,
    Partition,
    clear_csr_cache,
    csr_partitions_batch,
    decompose_object,
)
from .sampling import (
    discretise_database,
    discretise_object,
    pairwise_distances,
    sample_database,
)
from .sharedmem import (
    MutationDelta,
    MutationDeltaExport,
    SharedDatabaseExport,
    SharedDatabaseHandle,
    attach_shared_database,
    database_transport,
    load_delta_mutations,
    shared_memory_available,
)

__all__ = [
    "MutationDelta",
    "MutationDeltaExport",
    "SharedDatabaseExport",
    "SharedDatabaseHandle",
    "attach_shared_database",
    "database_transport",
    "load_delta_mutations",
    "shared_memory_available",
    "UncertainDatabase",
    "UncertainObject",
    "Insert",
    "Update",
    "Delete",
    "Mutation",
    "BoxUniformObject",
    "MixtureObject",
    "TruncatedGaussianObject",
    "DiscreteObject",
    "PointObject",
    "HistogramObject",
    "CSRPartitionBatch",
    "DecompositionNode",
    "DecompositionTree",
    "Partition",
    "clear_csr_cache",
    "csr_partitions_batch",
    "decompose_object",
    "discretise_database",
    "discretise_object",
    "pairwise_distances",
    "sample_database",
]
