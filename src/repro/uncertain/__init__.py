"""Uncertainty model: uncertain objects, databases, decomposition and sampling."""

from .base import UncertainDatabase, UncertainObject
from .continuous import BoxUniformObject, MixtureObject, TruncatedGaussianObject
from .discrete import DiscreteObject, PointObject
from .histogram import HistogramObject
from .decomposition import (
    CSRPartitionBatch,
    DecompositionNode,
    DecompositionTree,
    Partition,
    clear_csr_cache,
    csr_partitions_batch,
    decompose_object,
)
from .sampling import (
    discretise_database,
    discretise_object,
    pairwise_distances,
    sample_database,
)
from .sharedmem import (
    SharedDatabaseExport,
    SharedDatabaseHandle,
    attach_shared_database,
    database_transport,
    shared_memory_available,
)

__all__ = [
    "SharedDatabaseExport",
    "SharedDatabaseHandle",
    "attach_shared_database",
    "database_transport",
    "shared_memory_available",
    "UncertainDatabase",
    "UncertainObject",
    "BoxUniformObject",
    "MixtureObject",
    "TruncatedGaussianObject",
    "DiscreteObject",
    "PointObject",
    "HistogramObject",
    "CSRPartitionBatch",
    "DecompositionNode",
    "DecompositionTree",
    "Partition",
    "clear_csr_cache",
    "csr_partitions_batch",
    "decompose_object",
    "discretise_database",
    "discretise_object",
    "pairwise_distances",
    "sample_database",
]
