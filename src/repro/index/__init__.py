"""Index substrate: R-tree and vectorised linear-scan candidate generation."""

from .rtree import RTree, RTreeNode
from .scan import knn_candidates, min_dist_order, range_candidates

__all__ = [
    "RTree",
    "RTreeNode",
    "knn_candidates",
    "min_dist_order",
    "range_candidates",
]
