"""Index substrate: R-tree and vectorised linear-scan candidate generation."""

from .exclude import ExcludeSpec, exclude_mask, exclude_set, normalize_exclude
from .rtree import RTree, RTreeNode
from .scan import knn_candidates, min_dist_order, range_candidates

__all__ = [
    "ExcludeSpec",
    "RTree",
    "RTreeNode",
    "exclude_mask",
    "exclude_set",
    "knn_candidates",
    "min_dist_order",
    "normalize_exclude",
    "range_candidates",
]
