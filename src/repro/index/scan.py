"""Vectorised linear-scan primitives over object MBRs.

For moderately sized databases (the paper evaluates up to 100,000 objects) a
numpy scan over the ``(n, d, 2)`` MBR array is often faster than an index
traversal in pure Python; these helpers are therefore the default candidate
generators of the query layer, with the R-tree as the index-based alternative.
"""

from __future__ import annotations

import numpy as np

from ..geometry import (
    Rectangle,
    max_dist_arrays,
    min_dist_arrays,
)
from .exclude import ExcludeSpec, exclude_mask

__all__ = [
    "min_dist_order",
    "knn_candidates",
    "range_candidates",
]


def min_dist_order(mbrs: np.ndarray, query: Rectangle, p: float = 2.0) -> np.ndarray:
    """Indices of all objects ordered by increasing MinDist to ``query``."""
    dists = min_dist_arrays(mbrs, query.to_array(), p)
    return np.argsort(dists, kind="stable")


def knn_candidates(
    mbrs: np.ndarray,
    query: Rectangle,
    k: int,
    p: float = 2.0,
    exclude: ExcludeSpec = None,
) -> np.ndarray:
    """Conservative kNN candidate set based on MinDist / MaxDist.

    An object whose MinDist to the query exceeds the ``k``-th smallest MaxDist
    of the other objects is always farther than at least ``k`` objects, hence
    has zero probability of being a k-nearest neighbour and can be dropped
    before any probabilistic computation.

    Parameters
    ----------
    mbrs:
        Object MBRs, shape ``(n, d, 2)``.
    query:
        Query rectangle.
    k:
        Number of nearest neighbours of the query predicate.
    exclude:
        Optional exclusion specification — a boolean mask of length ``n`` or
        any iterable of positions (see :func:`repro.index.normalize_exclude`);
        excluded objects are neither returned nor used for the pruning
        distance (e.g. the query itself).

    Returns
    -------
    numpy.ndarray
        Sorted array of candidate indices.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    query_arr = query.to_array()
    min_dists = min_dist_arrays(mbrs, query_arr, p)
    max_dists = max_dist_arrays(mbrs, query_arr, p)
    valid = ~exclude_mask(exclude, mbrs.shape[0])
    valid_max = np.sort(max_dists[valid])
    if valid_max.shape[0] <= k:
        return np.flatnonzero(valid)
    threshold = valid_max[k - 1]
    return np.flatnonzero(valid & (min_dists <= threshold))


def range_candidates(mbrs: np.ndarray, region: Rectangle) -> np.ndarray:
    """Indices of objects whose MBR intersects ``region``."""
    lows, highs = region.lows, region.highs
    overlap = np.all((mbrs[..., 0] <= highs) & (mbrs[..., 1] >= lows), axis=-1)
    return np.flatnonzero(overlap)
