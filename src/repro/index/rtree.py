"""A Sort-Tile-Recursive (STR) bulk-loaded R-tree over object MBRs.

The paper lists the integration of the pruning framework with index-supported
kNN / RkNN algorithms as future work; this R-tree provides that substrate.
The query layer can use it instead of the linear scan to generate kNN and
range candidates, and it is exercised by dedicated unit and property tests.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..geometry import Rectangle, max_dist_arrays, min_dist_arrays
from .exclude import ExcludeSpec, exclude_set

__all__ = ["RTreeNode", "RTree"]


@dataclass
class RTreeNode:
    """An internal or leaf node of the R-tree."""

    mbr: np.ndarray  # shape (d, 2)
    children: list["RTreeNode"] = field(default_factory=list)
    entries: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))

    @property
    def is_leaf(self) -> bool:
        """True when the node stores object indices instead of child nodes."""
        return len(self.children) == 0


def _combine_mbrs(mbrs: np.ndarray) -> np.ndarray:
    """Union MBR of an ``(m, d, 2)`` array."""
    return np.stack([mbrs[..., 0].min(axis=0), mbrs[..., 1].max(axis=0)], axis=-1)


class RTree:
    """Static R-tree built with Sort-Tile-Recursive bulk loading.

    Parameters
    ----------
    mbrs:
        Object MBRs of shape ``(n, d, 2)``.
    leaf_capacity, fanout:
        Maximum entries per leaf and children per internal node.
    """

    def __init__(self, mbrs: np.ndarray, leaf_capacity: int = 32, fanout: int = 16):
        mbrs = np.asarray(mbrs, dtype=float)
        if mbrs.ndim != 3 or mbrs.shape[2] != 2 or mbrs.shape[0] == 0:
            raise ValueError("mbrs must be a non-empty array of shape (n, d, 2)")
        if leaf_capacity < 2 or fanout < 2:
            raise ValueError("leaf_capacity and fanout must both be at least 2")
        self.mbrs = mbrs
        self.leaf_capacity = leaf_capacity
        self.fanout = fanout
        self.dimensions = mbrs.shape[1]
        self.root = self._bulk_load()

    # ------------------------------------------------------------------ #
    # construction (STR)
    # ------------------------------------------------------------------ #
    def _str_partition(self, indices: np.ndarray, capacity: int) -> list[np.ndarray]:
        """Recursively tile ``indices`` into groups of at most ``capacity``."""
        centers = 0.5 * (self.mbrs[indices, :, 0] + self.mbrs[indices, :, 1])
        return self._tile(indices, centers, axis=0, capacity=capacity)

    def _tile(
        self, indices: np.ndarray, centers: np.ndarray, axis: int, capacity: int
    ) -> list[np.ndarray]:
        if indices.shape[0] <= capacity:
            return [indices]
        order = np.argsort(centers[:, axis], kind="stable")
        indices = indices[order]
        centers = centers[order]
        n = indices.shape[0]
        num_groups = math.ceil(n / capacity)
        if axis == self.dimensions - 1:
            return [
                indices[i * capacity : (i + 1) * capacity] for i in range(num_groups)
            ]
        # number of vertical slabs per STR
        slabs = math.ceil(num_groups ** (1.0 / (self.dimensions - axis)))
        slab_size = math.ceil(n / slabs)
        groups: list[np.ndarray] = []
        for start in range(0, n, slab_size):
            stop = min(start + slab_size, n)
            groups.extend(
                self._tile(indices[start:stop], centers[start:stop], axis + 1, capacity)
            )
        return groups

    def _bulk_load(self) -> RTreeNode:
        all_indices = np.arange(self.mbrs.shape[0])
        groups = self._str_partition(all_indices, self.leaf_capacity)
        nodes = [
            RTreeNode(mbr=_combine_mbrs(self.mbrs[group]), entries=group)
            for group in groups
        ]
        while len(nodes) > 1:
            node_mbrs = np.stack([node.mbr for node in nodes])
            node_centers = 0.5 * (node_mbrs[..., 0] + node_mbrs[..., 1])
            order = self._tile(
                np.arange(len(nodes)), node_centers, axis=0, capacity=self.fanout
            )
            nodes = [
                RTreeNode(
                    mbr=_combine_mbrs(np.stack([nodes[i].mbr for i in group])),
                    children=[nodes[i] for i in group],
                )
                for group in order
            ]
        return nodes[0]

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.mbrs.shape[0])

    def height(self) -> int:
        """Height of the tree (1 for a single leaf)."""
        height, node = 1, self.root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    def iter_nodes(self) -> Iterable[RTreeNode]:
        """Depth-first iteration over all nodes (used by tests)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def range_query(self, region: Rectangle) -> np.ndarray:
        """Indices of all objects whose MBR intersects ``region``."""
        lows, highs = region.lows, region.highs
        hits: list[np.ndarray] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if np.any(node.mbr[:, 0] > highs) or np.any(node.mbr[:, 1] < lows):
                continue
            if node.is_leaf:
                entry_mbrs = self.mbrs[node.entries]
                mask = np.all(
                    (entry_mbrs[..., 0] <= highs) & (entry_mbrs[..., 1] >= lows), axis=-1
                )
                hits.append(node.entries[mask])
            else:
                stack.extend(node.children)
        if not hits:
            return np.empty(0, dtype=int)
        return np.sort(np.concatenate(hits))

    def knn_candidates(
        self,
        query: Rectangle,
        k: int,
        p: float = 2.0,
        exclude: ExcludeSpec = None,
    ) -> np.ndarray:
        """Conservative kNN candidates via best-first MinDist traversal.

        Returns every object whose MinDist to the query does not exceed the
        ``k``-th smallest MaxDist seen — objects outside this set are always
        farther than at least ``k`` objects and can be pruned.  ``exclude``
        accepts the same specifications as the linear scan (boolean mask or
        iterable of positions, see :func:`repro.index.normalize_exclude`).
        """
        if k <= 0:
            raise ValueError("k must be positive")
        exclude = exclude_set(exclude, self.mbrs.shape[0])
        query_arr = query.to_array()
        counter = itertools.count()

        def node_min_dist(node: RTreeNode) -> float:
            return float(min_dist_arrays(node.mbr[None, ...], query_arr, p)[0])

        heap: list[tuple[float, int, RTreeNode]] = [
            (node_min_dist(self.root), next(counter), self.root)
        ]
        max_dist_heap: list[float] = []  # max-heap (negated) of the k smallest MaxDists
        threshold = math.inf
        candidates: list[tuple[float, int]] = []  # (min_dist, object index)

        while heap:
            dist, _, node = heapq.heappop(heap)
            if dist > threshold:
                break
            if node.is_leaf:
                entries = np.array(
                    [i for i in node.entries if int(i) not in exclude], dtype=int
                )
                if entries.shape[0] == 0:
                    continue
                entry_mbrs = self.mbrs[entries]
                entry_min = min_dist_arrays(entry_mbrs, query_arr, p)
                entry_max = max_dist_arrays(entry_mbrs, query_arr, p)
                for idx, mn, mx in zip(entries, entry_min, entry_max):
                    candidates.append((float(mn), int(idx)))
                    heapq.heappush(max_dist_heap, -float(mx))
                    if len(max_dist_heap) > k:
                        heapq.heappop(max_dist_heap)
                    if len(max_dist_heap) == k:
                        threshold = -max_dist_heap[0]
            else:
                for child in node.children:
                    child_dist = node_min_dist(child)
                    if child_dist <= threshold:
                        heapq.heappush(heap, (child_dist, next(counter), child))

        result = [idx for mn, idx in candidates if mn <= threshold]
        return np.array(sorted(result), dtype=int)
