"""A Sort-Tile-Recursive (STR) bulk-loaded R-tree over object MBRs.

The paper lists the integration of the pruning framework with index-supported
kNN / RkNN algorithms as future work; this R-tree provides that substrate.
The query layer can use it instead of the linear scan to generate kNN and
range candidates, and it is exercised by dedicated unit and property tests.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..geometry import Rectangle, max_dist_arrays, min_dist_arrays
from .exclude import ExcludeSpec, exclude_set

__all__ = ["RTreeNode", "RTree"]


@dataclass
class RTreeNode:
    """An internal or leaf node of the R-tree."""

    mbr: np.ndarray  # shape (d, 2)
    children: list["RTreeNode"] = field(default_factory=list)
    entries: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))

    @property
    def is_leaf(self) -> bool:
        """True when the node stores object indices instead of child nodes."""
        return len(self.children) == 0


def _combine_mbrs(mbrs: np.ndarray) -> np.ndarray:
    """Union MBR of an ``(m, d, 2)`` array."""
    return np.stack([mbrs[..., 0].min(axis=0), mbrs[..., 1].max(axis=0)], axis=-1)


class RTree:
    """Static R-tree built with Sort-Tile-Recursive bulk loading.

    Parameters
    ----------
    mbrs:
        Object MBRs of shape ``(n, d, 2)``.
    leaf_capacity, fanout:
        Maximum entries per leaf and children per internal node.
    """

    def __init__(self, mbrs: np.ndarray, leaf_capacity: int = 32, fanout: int = 16):
        mbrs = np.asarray(mbrs, dtype=float)
        if mbrs.ndim != 3 or mbrs.shape[2] != 2 or mbrs.shape[0] == 0:
            raise ValueError("mbrs must be a non-empty array of shape (n, d, 2)")
        if leaf_capacity < 2 or fanout < 2:
            raise ValueError("leaf_capacity and fanout must both be at least 2")
        # The caller keeps ownership of ``mbrs`` (it is typically a database's
        # shared MBR cache): hold a read-only view so incremental ``update``
        # copies before its first in-place write instead of corrupting it.
        mbrs = mbrs.view()
        mbrs.flags.writeable = False
        self.mbrs = mbrs
        self.leaf_capacity = leaf_capacity
        self.fanout = fanout
        self.dimensions = mbrs.shape[1]
        self.root = self._bulk_load()

    # ------------------------------------------------------------------ #
    # construction (STR)
    # ------------------------------------------------------------------ #
    def _str_partition(self, indices: np.ndarray, capacity: int) -> list[np.ndarray]:
        """Recursively tile ``indices`` into groups of at most ``capacity``."""
        centers = 0.5 * (self.mbrs[indices, :, 0] + self.mbrs[indices, :, 1])
        return self._tile(indices, centers, axis=0, capacity=capacity)

    def _tile(
        self, indices: np.ndarray, centers: np.ndarray, axis: int, capacity: int
    ) -> list[np.ndarray]:
        if indices.shape[0] <= capacity:
            return [indices]
        order = np.argsort(centers[:, axis], kind="stable")
        indices = indices[order]
        centers = centers[order]
        n = indices.shape[0]
        num_groups = math.ceil(n / capacity)
        if axis == self.dimensions - 1:
            return [
                indices[i * capacity : (i + 1) * capacity] for i in range(num_groups)
            ]
        # number of vertical slabs per STR
        slabs = math.ceil(num_groups ** (1.0 / (self.dimensions - axis)))
        slab_size = math.ceil(n / slabs)
        groups: list[np.ndarray] = []
        for start in range(0, n, slab_size):
            stop = min(start + slab_size, n)
            groups.extend(
                self._tile(indices[start:stop], centers[start:stop], axis + 1, capacity)
            )
        return groups

    def _bulk_load(self) -> RTreeNode:
        all_indices = np.arange(self.mbrs.shape[0])
        groups = self._str_partition(all_indices, self.leaf_capacity)
        nodes = [
            RTreeNode(mbr=_combine_mbrs(self.mbrs[group]), entries=group)
            for group in groups
        ]
        while len(nodes) > 1:
            node_mbrs = np.stack([node.mbr for node in nodes])
            node_centers = 0.5 * (node_mbrs[..., 0] + node_mbrs[..., 1])
            order = self._tile(
                np.arange(len(nodes)), node_centers, axis=0, capacity=self.fanout
            )
            nodes = [
                RTreeNode(
                    mbr=_combine_mbrs(np.stack([nodes[i].mbr for i in group])),
                    children=[nodes[i] for i in group],
                )
                for group in order
            ]
        return nodes[0]

    # ------------------------------------------------------------------ #
    # incremental maintenance
    # ------------------------------------------------------------------ #
    def insert(self, mbr: np.ndarray) -> int:
        """Insert a new object MBR at the next position; returns its index.

        Classic least-enlargement descent with node splits propagating to the
        root.  The incremental tree's *shape* may differ from a freshly
        bulk-loaded one, but every query is shape-independent: node MBRs stay
        conservative unions of their descendants, and both ``range_query``
        and ``knn_candidates`` return sets defined purely by object MBRs
        (intersection, and MinDist against the exact k-th smallest MaxDist).
        """
        mbr = self._check_mbr(mbr)
        index = int(self.mbrs.shape[0])
        self.mbrs = np.concatenate([self.mbrs, mbr[None, ...]], axis=0)
        split = self._insert_entry(self.root, mbr, index)
        if split is not None:
            self.root = RTreeNode(
                mbr=_combine_mbrs(np.stack([self.root.mbr, split.mbr])),
                children=[self.root, split],
            )
        return index

    def delete(self, index: int) -> None:
        """Remove the object at ``index``; later indices shift down by one.

        The entry's leaf loses it, ancestors re-tighten their MBRs to the
        exact union of what remains, emptied nodes are pruned, and a root
        left with a single child collapses.  Matches
        ``UncertainDatabase.delete`` position semantics: all entries above
        ``index`` are renumbered down by one.
        """
        if not 0 <= index < self.mbrs.shape[0]:
            raise IndexError(f"index {index} out of range")
        if self.mbrs.shape[0] == 1:
            raise ValueError("cannot delete the last entry of an R-tree")
        if not self._delete_entry(self.root, index):  # pragma: no cover
            raise RuntimeError(f"entry {index} missing from the R-tree")
        while not self.root.is_leaf and len(self.root.children) == 1:
            self.root = self.root.children[0]
        for node in self.iter_nodes():
            if node.is_leaf and node.entries.size:
                node.entries = node.entries - (node.entries > index)
        self.mbrs = np.delete(self.mbrs, index, axis=0)

    def update(self, index: int, mbr: np.ndarray) -> None:
        """Replace the MBR at ``index``: remove, re-tighten, re-insert."""
        if not 0 <= index < self.mbrs.shape[0]:
            raise IndexError(f"index {index} out of range")
        mbr = self._check_mbr(mbr)
        if not self._delete_entry(self.root, index):  # pragma: no cover
            raise RuntimeError(f"entry {index} missing from the R-tree")
        while not self.root.is_leaf and len(self.root.children) == 1:
            self.root = self.root.children[0]
        mbrs = self.mbrs if self.mbrs.flags.writeable else self.mbrs.copy()
        mbrs[index] = mbr
        self.mbrs = mbrs
        split = self._insert_entry(self.root, mbr, index)
        if split is not None:
            self.root = RTreeNode(
                mbr=_combine_mbrs(np.stack([self.root.mbr, split.mbr])),
                children=[self.root, split],
            )

    def _check_mbr(self, mbr: np.ndarray) -> np.ndarray:
        mbr = np.array(mbr, dtype=float)
        if mbr.shape != (self.dimensions, 2):
            raise ValueError(f"mbr must have shape ({self.dimensions}, 2)")
        return mbr

    def _insert_entry(self, node: RTreeNode, mbr: np.ndarray, index: int):
        """Least-enlargement descent; returns the new sibling on a split."""
        if node.is_leaf:
            if node.entries.size == 0:
                node.mbr = mbr.copy()
            else:
                node.mbr = _combine_mbrs(np.stack([node.mbr, mbr]))
            node.entries = np.append(node.entries, index)
            if node.entries.size > self.leaf_capacity:
                return self._split_leaf(node)
            return None
        child = min(node.children, key=lambda c: self._enlargement(c.mbr, mbr))
        split = self._insert_entry(child, mbr, index)
        node.mbr = _combine_mbrs(np.stack([node.mbr, mbr]))
        if split is not None:
            node.children.append(split)
            if len(node.children) > self.fanout:
                return self._split_internal(node)
        return None

    @staticmethod
    def _enlargement(node_mbr: np.ndarray, mbr: np.ndarray) -> tuple[float, float]:
        """(volume growth, margin growth) of taking ``mbr`` into ``node_mbr``."""
        lows = np.minimum(node_mbr[:, 0], mbr[:, 0])
        highs = np.maximum(node_mbr[:, 1], mbr[:, 1])
        union_extent = highs - lows
        extent = node_mbr[:, 1] - node_mbr[:, 0]
        volume_growth = float(np.prod(union_extent) - np.prod(extent))
        margin_growth = float(union_extent.sum() - extent.sum())
        return (volume_growth, margin_growth)

    def _split_leaf(self, node: RTreeNode) -> RTreeNode:
        """Split an overflowing leaf along its widest axis; returns the sibling."""
        entries = node.entries
        centers = 0.5 * (self.mbrs[entries, :, 0] + self.mbrs[entries, :, 1])
        axis = int(np.argmax(node.mbr[:, 1] - node.mbr[:, 0]))
        order = np.argsort(centers[:, axis], kind="stable")
        half = entries.size // 2
        keep, move = entries[order[:half]], entries[order[half:]]
        node.entries = keep
        node.mbr = _combine_mbrs(self.mbrs[keep])
        return RTreeNode(mbr=_combine_mbrs(self.mbrs[move]), entries=move)

    def _split_internal(self, node: RTreeNode) -> RTreeNode:
        """Split an overflowing internal node along its widest axis."""
        child_mbrs = np.stack([child.mbr for child in node.children])
        centers = 0.5 * (child_mbrs[..., 0] + child_mbrs[..., 1])
        axis = int(np.argmax(node.mbr[:, 1] - node.mbr[:, 0]))
        order = np.argsort(centers[:, axis], kind="stable")
        half = len(node.children) // 2
        keep = [node.children[i] for i in order[:half]]
        move = [node.children[i] for i in order[half:]]
        node.children = keep
        node.mbr = _combine_mbrs(np.stack([child.mbr for child in keep]))
        return RTreeNode(
            mbr=_combine_mbrs(np.stack([child.mbr for child in move])), children=move
        )

    def _delete_entry(self, node: RTreeNode, index: int) -> bool:
        """Remove ``index`` below ``node``, re-tightening MBRs on the way out."""
        target = self.mbrs[index]
        if node.is_leaf:
            positions = np.nonzero(node.entries == index)[0]
            if positions.size == 0:
                return False
            node.entries = np.delete(node.entries, positions[0])
            if node.entries.size:
                node.mbr = _combine_mbrs(self.mbrs[node.entries])
            return True
        for child in node.children:
            contains = bool(
                np.all(child.mbr[:, 0] <= target[:, 0])
                and np.all(child.mbr[:, 1] >= target[:, 1])
            )
            if not contains:
                continue
            if self._delete_entry(child, index):
                if (child.is_leaf and child.entries.size == 0) or (
                    not child.is_leaf and not child.children
                ):
                    node.children.remove(child)
                if node.children:
                    node.mbr = _combine_mbrs(
                        np.stack([c.mbr for c in node.children])
                    )
                return True
        return False

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.mbrs.shape[0])

    def height(self) -> int:
        """Height of the tree (1 for a single leaf)."""
        height, node = 1, self.root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    def iter_nodes(self) -> Iterable[RTreeNode]:
        """Depth-first iteration over all nodes (used by tests)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def range_query(self, region: Rectangle) -> np.ndarray:
        """Indices of all objects whose MBR intersects ``region``."""
        lows, highs = region.lows, region.highs
        hits: list[np.ndarray] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if np.any(node.mbr[:, 0] > highs) or np.any(node.mbr[:, 1] < lows):
                continue
            if node.is_leaf:
                entry_mbrs = self.mbrs[node.entries]
                mask = np.all(
                    (entry_mbrs[..., 0] <= highs) & (entry_mbrs[..., 1] >= lows), axis=-1
                )
                hits.append(node.entries[mask])
            else:
                stack.extend(node.children)
        if not hits:
            return np.empty(0, dtype=int)
        return np.sort(np.concatenate(hits))

    def knn_candidates(
        self,
        query: Rectangle,
        k: int,
        p: float = 2.0,
        exclude: ExcludeSpec = None,
    ) -> np.ndarray:
        """Conservative kNN candidates via best-first MinDist traversal.

        Returns every object whose MinDist to the query does not exceed the
        ``k``-th smallest MaxDist seen — objects outside this set are always
        farther than at least ``k`` objects and can be pruned.  ``exclude``
        accepts the same specifications as the linear scan (boolean mask or
        iterable of positions, see :func:`repro.index.normalize_exclude`).
        """
        if k <= 0:
            raise ValueError("k must be positive")
        exclude = exclude_set(exclude, self.mbrs.shape[0])
        query_arr = query.to_array()
        counter = itertools.count()

        def node_min_dist(node: RTreeNode) -> float:
            return float(min_dist_arrays(node.mbr[None, ...], query_arr, p)[0])

        heap: list[tuple[float, int, RTreeNode]] = [
            (node_min_dist(self.root), next(counter), self.root)
        ]
        max_dist_heap: list[float] = []  # max-heap (negated) of the k smallest MaxDists
        threshold = math.inf
        candidates: list[tuple[float, int]] = []  # (min_dist, object index)

        while heap:
            dist, _, node = heapq.heappop(heap)
            if dist > threshold:
                break
            if node.is_leaf:
                entries = np.array(
                    [i for i in node.entries if int(i) not in exclude], dtype=int
                )
                if entries.shape[0] == 0:
                    continue
                entry_mbrs = self.mbrs[entries]
                entry_min = min_dist_arrays(entry_mbrs, query_arr, p)
                entry_max = max_dist_arrays(entry_mbrs, query_arr, p)
                for idx, mn, mx in zip(entries, entry_min, entry_max):
                    candidates.append((float(mn), int(idx)))
                    heapq.heappush(max_dist_heap, -float(mx))
                    if len(max_dist_heap) > k:
                        heapq.heappop(max_dist_heap)
                    if len(max_dist_heap) == k:
                        threshold = -max_dist_heap[0]
            else:
                for child in node.children:
                    child_dist = node_min_dist(child)
                    if child_dist <= threshold:
                        heapq.heappush(heap, (child_dist, next(counter), child))

        result = [idx for mn, idx in candidates if mn <= threshold]
        return np.array(sorted(result), dtype=int)
