"""Normalisation of candidate-exclusion specifications.

Historically the two candidate generators disagreed on how excluded database
positions are passed in: the vectorised scan wanted a boolean mask while the
R-tree wanted a set of ints.  Both now accept either form (or any iterable of
positions, or ``None``); :func:`normalize_exclude` is the single conversion
point and is re-exported from :mod:`repro.index`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

__all__ = ["ExcludeSpec", "normalize_exclude", "exclude_mask", "exclude_set"]

ExcludeSpec = Optional[Union[np.ndarray, set, frozenset, Iterable[int]]]


def normalize_exclude(exclude: ExcludeSpec, num_objects: int) -> tuple[np.ndarray, set[int]]:
    """Normalise an exclusion specification into ``(mask, indices)``.

    Parameters
    ----------
    exclude:
        ``None`` (nothing excluded), a boolean mask of length ``num_objects``,
        or any iterable of database positions.  Out-of-range positions are
        ignored, matching the tolerant behaviour of the filter step.
    num_objects:
        Database size the mask is sized for.

    Returns
    -------
    (mask, indices):
        A boolean mask of length ``num_objects`` (True = excluded) and the
        equivalent set of in-range positions.
    """
    mask = np.zeros(num_objects, dtype=bool)
    if exclude is None:
        return mask, set()
    if isinstance(exclude, np.ndarray) and exclude.dtype == bool:
        if exclude.shape != (num_objects,):
            raise ValueError(
                f"exclude mask has shape {exclude.shape}, expected ({num_objects},)"
            )
        mask |= exclude
        return mask, {int(i) for i in np.flatnonzero(exclude)}
    indices = {int(i) for i in exclude}
    in_range = {i for i in indices if 0 <= i < num_objects}
    for i in in_range:
        mask[i] = True
    return mask, in_range


def exclude_mask(exclude: ExcludeSpec, num_objects: int) -> np.ndarray:
    """Boolean exclusion mask of length ``num_objects`` (True = excluded)."""
    return normalize_exclude(exclude, num_objects)[0]


def exclude_set(exclude: ExcludeSpec, num_objects: int) -> set[int]:
    """Set of excluded in-range database positions."""
    return normalize_exclude(exclude, num_objects)[1]
