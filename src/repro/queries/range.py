"""Probabilistic distance-range (epsilon-range) queries.

A probabilistic range query reports every object whose distance to the
(possibly uncertain) query object is at most ``epsilon`` with probability at
least ``tau``.  While not one of the paper's headline query types, range
predicates are the simplest member of the query class the paper targets
("the event that an object belongs to the result set depends on object
distance relations") and they demonstrate that the same decomposition
machinery answers them without any generating function: per pair of partitions
``(A', Q')`` the MinDist/MaxDist interval either decides the predicate or the
pair stays uncertain, and the masses of the decided pairs are conservative /
progressive probability bounds.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..geometry import max_dist_arrays, min_dist_arrays
from ..uncertain import DecompositionTree, UncertainDatabase
from ..uncertain.decomposition import AxisPolicy
from .common import ObjectSpec, ThresholdQueryResult, ensure_engine_matches, unwrap_engine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..engine import QueryEngine

__all__ = ["probability_within_range", "probabilistic_range_query"]


def probability_within_range(
    obj,
    query,
    epsilon: float,
    p: float = 2.0,
    max_depth: int = 6,
    axis_policy: AxisPolicy = "round_robin",
    object_tree: Optional[DecompositionTree] = None,
    query_tree: Optional[DecompositionTree] = None,
) -> tuple[float, float]:
    """Bounds of ``P(dist(obj, query) <= epsilon)``.

    Both objects are decomposed to ``max_depth``; partition pairs whose MaxDist
    is at most ``epsilon`` contribute their joint mass to the lower bound,
    pairs whose MinDist exceeds ``epsilon`` are excluded from the upper bound.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    object_tree = object_tree or DecompositionTree(obj, axis_policy=axis_policy)
    query_tree = query_tree or DecompositionTree(query, axis_policy=axis_policy)
    obj_regions, obj_masses = object_tree.partitions_arrays(max_depth)
    query_regions, query_masses = query_tree.partitions_arrays(max_depth)

    lower = 0.0
    upper = 0.0
    for q_idx in range(query_regions.shape[0]):
        q_mass = float(query_masses[q_idx])
        if q_mass <= 0.0:
            continue
        min_d = min_dist_arrays(obj_regions, query_regions[q_idx], p)
        max_d = max_dist_arrays(obj_regions, query_regions[q_idx], p)
        inside = max_d <= epsilon
        possible = min_d <= epsilon
        lower += q_mass * float(obj_masses[inside].sum())
        upper += q_mass * float(obj_masses[possible].sum())
    lower = min(max(lower, 0.0), 1.0)
    upper = min(max(upper, lower), 1.0)
    return lower, upper


def probabilistic_range_query(
    database: UncertainDatabase,
    query: ObjectSpec,
    epsilon: float,
    tau: float,
    p: Optional[float] = None,
    max_depth: int = 6,
    strict: bool = False,
    engine: Optional["QueryEngine"] = None,
) -> ThresholdQueryResult:
    """Evaluate a probabilistic threshold range query.

    Objects whose MBR is completely within ``epsilon`` of the query MBR are
    reported without decomposition; objects completely out of reach are pruned
    the same way.  Only the remaining candidates are refined — the unified
    :class:`~repro.engine.QueryEngine` performs the classification and
    refinement with shared decomposition trees.
    """
    from ..engine import QueryEngine

    engine = unwrap_engine(engine)
    if engine is None:
        engine = QueryEngine(database, p=2.0 if p is None else p)
    else:
        ensure_engine_matches(engine, database, p=p)
    return engine.range(query, epsilon=epsilon, tau=tau, max_depth=max_depth, strict=strict)
