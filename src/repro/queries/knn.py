"""Probabilistic threshold k-nearest-neighbour queries (Corollary 4).

An object ``B`` is reported by the query ``kNN_tau(Q)`` when the probability
that fewer than ``k`` database objects are closer to ``Q`` than ``B`` is at
least ``tau``::

    P^kNN(B, Q) = sum_{i < k} P(DomCount(B, Q) = i) >= tau

Both the query object and the database objects may be uncertain — the setting
no prior work supported.  The evaluation combines

1. a spatial candidate filter (MinDist/MaxDist over the object MBRs, either a
   vectorised scan or an R-tree traversal),
2. per-candidate IDCA runs with the ``k``-truncated uncertain generating
   function and a threshold stop criterion, so refinement stops as soon as the
   predicate is decidable.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..core import IDCA, ThresholdDecision
from ..geometry import DominationCriterion
from ..index import RTree
from ..index.scan import knn_candidates
from ..uncertain import UncertainDatabase
from .common import ObjectSpec, ProbabilisticMatch, ThresholdQueryResult, resolve_object

__all__ = ["probabilistic_knn_threshold"]


def probabilistic_knn_threshold(
    database: UncertainDatabase,
    query: ObjectSpec,
    k: int,
    tau: float,
    p: float = 2.0,
    criterion: DominationCriterion = "optimal",
    max_iterations: int = 10,
    idca: Optional[IDCA] = None,
    rtree: Optional[RTree] = None,
    strict: bool = False,
) -> ThresholdQueryResult:
    """Evaluate a probabilistic threshold kNN query.

    Parameters
    ----------
    database:
        The uncertain database.
    query:
        The (possibly uncertain) query object, or the position of a database
        member.
    k, tau:
        Query parameters: report objects that are among the ``k`` nearest
        neighbours of the query with probability at least ``tau``.
    max_iterations:
        Refinement budget per candidate; candidates that stay undecided are
        reported with their probability bounds.
    idca:
        Optional pre-configured IDCA instance (must have ``k_cap >= k``);
        by default one with ``k_cap = k`` is created.
    rtree:
        Optional R-tree over the database MBRs used for candidate generation
        instead of the vectorised linear scan.
    strict:
        Require ``P > tau`` instead of ``P >= tau``.

    Returns
    -------
    ThresholdQueryResult
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if not 0.0 <= tau <= 1.0:
        raise ValueError("tau must be a probability")

    start = time.perf_counter()
    exclude: set[int] = set()
    query_obj = resolve_object(database, query, exclude)

    if idca is None:
        idca = IDCA(database, p=p, criterion=criterion, k_cap=k)
    elif idca.k_cap is not None and idca.k_cap < k:
        raise ValueError("the supplied IDCA instance truncates below the requested k")

    mbrs = database.mbrs()
    if rtree is not None:
        candidates = rtree.knn_candidates(query_obj.mbr, k, p=p, exclude=exclude)
    else:
        exclude_mask = np.zeros(len(database), dtype=bool)
        for idx in exclude:
            exclude_mask[idx] = True
        candidates = knn_candidates(mbrs, query_obj.mbr, k, p=p, exclude=exclude_mask)

    result = ThresholdQueryResult(
        k=k, tau=tau, pruned=len(database) - len(exclude) - candidates.shape[0]
    )
    for index in candidates:
        stop = ThresholdDecision(k=k, tau=tau, strict=strict)
        run = idca.domination_count(
            int(index),
            query_obj,
            stop=stop,
            max_iterations=max_iterations,
            exclude_indices=sorted(exclude),
        )
        lower, upper = run.bounds.less_than(k)
        match = ProbabilisticMatch(
            index=int(index),
            probability_lower=lower,
            probability_upper=upper,
            decision=run.decision,
            iterations=run.num_iterations,
        )
        if run.decision is True:
            result.matches.append(match)
        elif run.decision is False:
            result.rejected.append(match)
        else:
            result.undecided.append(match)
    result.elapsed_seconds = time.perf_counter() - start
    return result
