"""Probabilistic threshold k-nearest-neighbour queries (Corollary 4).

An object ``B`` is reported by the query ``kNN_tau(Q)`` when the probability
that fewer than ``k`` database objects are closer to ``Q`` than ``B`` is at
least ``tau``::

    P^kNN(B, Q) = sum_{i < k} P(DomCount(B, Q) = i) >= tau

Both the query object and the database objects may be uncertain — the setting
no prior work supported.  This module is a thin adapter over the unified
:class:`~repro.engine.QueryEngine`, which performs the spatial candidate
filter, runs the ``k``-truncated IDCA refinement with a threshold stop
criterion, and spends iterations on the candidates whose predicate bounds are
still widest.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..core import IDCA
from ..geometry import DominationCriterion
from ..index import RTree
from ..uncertain import UncertainDatabase
from .common import ObjectSpec, ThresholdQueryResult, ensure_engine_matches, unwrap_engine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..engine import QueryEngine

__all__ = ["probabilistic_knn_threshold"]


def probabilistic_knn_threshold(
    database: UncertainDatabase,
    query: ObjectSpec,
    k: int,
    tau: float,
    p: Optional[float] = None,
    criterion: Optional[DominationCriterion] = None,
    max_iterations: int = 10,
    idca: Optional[IDCA] = None,
    rtree: Optional[RTree] = None,
    strict: bool = False,
    engine: Optional["QueryEngine"] = None,
) -> ThresholdQueryResult:
    """Evaluate a probabilistic threshold kNN query.

    Parameters
    ----------
    database:
        The uncertain database.
    query:
        The (possibly uncertain) query object, or the position of a database
        member.
    k, tau:
        Query parameters: report objects that are among the ``k`` nearest
        neighbours of the query with probability at least ``tau``.
    max_iterations:
        Refinement budget per candidate; candidates that stay undecided are
        reported with their probability bounds.
    idca:
        Optional pre-configured IDCA instance (must have ``k_cap >= k``);
        by default one with ``k_cap = k`` is created.
    rtree:
        Optional R-tree over the database MBRs used for candidate generation
        instead of the vectorised linear scan.
    strict:
        Require ``P > tau`` instead of ``P >= tau``.
    engine:
        Optional pre-built :class:`~repro.engine.QueryEngine` — or a
        :class:`~repro.engine.QueryService`, whose engine and shared
        context are then used in-process — to evaluate
        against.  Passing the same engine to repeated calls shares its
        refinement context (decomposition trees, memoised domination bounds)
        across queries, exactly like the batch API; it must have been built
        over ``database``, and any *explicitly passed* ``p`` / ``criterion``
        must agree with it (left at their defaults, the engine's own
        configuration is used), otherwise a ``ValueError`` is raised.

    Returns
    -------
    ThresholdQueryResult
    """
    from ..engine import QueryEngine

    engine = unwrap_engine(engine)
    if engine is None:
        engine = QueryEngine(
            database,
            p=2.0 if p is None else p,
            criterion=criterion if criterion is not None else "optimal",
            rtree=rtree,
        )
    else:
        ensure_engine_matches(engine, database, p=p, criterion=criterion, rtree=rtree)
    return engine.knn(
        query,
        k=k,
        tau=tau,
        max_iterations=max_iterations,
        idca=idca,
        strict=strict,
    )
