"""Probabilistic similarity ranking by expected rank (Corollary 6).

The expected rank of an object ``A`` w.r.t. a (possibly uncertain) query
object ``Q`` is ``E[Rank(A, Q)] = E[DomCount(A, Q)] + 1``.  IDCA provides
lower and upper bounds for the expectation; objects are ranked by the
midpoint of their expected-rank interval, and the interval itself is reported
so callers can detect ties that the bounds cannot yet separate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, TYPE_CHECKING

from ..core import IDCA
from ..geometry import DominationCriterion
from ..uncertain import UncertainDatabase
from .common import ObjectSpec, ensure_engine_matches, unwrap_engine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..engine import QueryEngine

__all__ = ["RankedObject", "RankingResult", "expected_rank_ranking"]


@dataclass(frozen=True)
class RankedObject:
    """Expected-rank interval of one database object."""

    index: int
    expected_rank_lower: float
    expected_rank_upper: float
    iterations: int

    @property
    def expected_rank_midpoint(self) -> float:
        """Midpoint of the expected-rank interval (the sort key)."""
        return 0.5 * (self.expected_rank_lower + self.expected_rank_upper)

    @property
    def width(self) -> float:
        """Width of the expected-rank interval."""
        return self.expected_rank_upper - self.expected_rank_lower


@dataclass
class RankingResult:
    """Complete expected-rank ranking of the evaluated objects."""

    ranking: list[RankedObject] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    def order(self) -> list[int]:
        """Database positions in ranking order (best expected rank first)."""
        return [entry.index for entry in self.ranking]

    def top(self, n: int) -> list[RankedObject]:
        """The ``n`` best-ranked objects."""
        return self.ranking[:n]


def expected_rank_ranking(
    database: UncertainDatabase,
    query: ObjectSpec,
    p: Optional[float] = None,
    criterion: Optional[DominationCriterion] = None,
    max_iterations: int = 6,
    uncertainty_budget: float = 0.25,
    idca: Optional[IDCA] = None,
    candidate_indices: Optional[Iterable[int]] = None,
    engine: Optional["QueryEngine"] = None,
) -> RankingResult:
    """Rank database objects by their expected rank w.r.t. ``query``.

    Parameters
    ----------
    uncertainty_budget:
        Per-object refinement target: IDCA stops as soon as the accumulated
        uncertainty of the domination-count bounds drops below the budget, or
        when ``max_iterations`` is reached.
    candidate_indices:
        Optional subset of database positions to rank; defaults to all.
    engine:
        Optional pre-built :class:`~repro.engine.QueryEngine` — or a
        :class:`~repro.engine.QueryService`, whose engine and shared
        context are then used in-process — to evaluate
        against.  Passing the same engine to repeated calls shares its
        refinement context (decomposition trees, memoised domination bounds)
        across queries, exactly like the batch API; it must have been built
        over ``database``, and any *explicitly passed* ``p`` / ``criterion``
        must agree with it (left at their defaults, the engine's own
        configuration is used), otherwise a ``ValueError`` is raised.
    """
    from ..engine import QueryEngine

    engine = unwrap_engine(engine)
    if engine is None:
        engine = QueryEngine(
            database,
            p=2.0 if p is None else p,
            criterion=criterion if criterion is not None else "optimal",
        )
    else:
        ensure_engine_matches(engine, database, p=p, criterion=criterion)
    return engine.ranking(
        query,
        max_iterations=max_iterations,
        uncertainty_budget=uncertainty_budget,
        idca=idca,
        candidate_indices=candidate_indices,
    )
