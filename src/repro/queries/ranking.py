"""Probabilistic similarity ranking by expected rank (Corollary 6).

The expected rank of an object ``A`` w.r.t. a (possibly uncertain) query
object ``Q`` is ``E[Rank(A, Q)] = E[DomCount(A, Q)] + 1``.  IDCA provides
lower and upper bounds for the expectation; objects are ranked by the
midpoint of their expected-rank interval, and the interval itself is reported
so callers can detect ties that the bounds cannot yet separate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..core import IDCA, UncertaintyBelow
from ..geometry import DominationCriterion
from ..uncertain import UncertainDatabase
from .common import ObjectSpec, resolve_object

__all__ = ["RankedObject", "RankingResult", "expected_rank_ranking"]


@dataclass(frozen=True)
class RankedObject:
    """Expected-rank interval of one database object."""

    index: int
    expected_rank_lower: float
    expected_rank_upper: float
    iterations: int

    @property
    def expected_rank_midpoint(self) -> float:
        """Midpoint of the expected-rank interval (the sort key)."""
        return 0.5 * (self.expected_rank_lower + self.expected_rank_upper)

    @property
    def width(self) -> float:
        """Width of the expected-rank interval."""
        return self.expected_rank_upper - self.expected_rank_lower


@dataclass
class RankingResult:
    """Complete expected-rank ranking of the evaluated objects."""

    ranking: list[RankedObject] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    def order(self) -> list[int]:
        """Database positions in ranking order (best expected rank first)."""
        return [entry.index for entry in self.ranking]

    def top(self, n: int) -> list[RankedObject]:
        """The ``n`` best-ranked objects."""
        return self.ranking[:n]


def expected_rank_ranking(
    database: UncertainDatabase,
    query: ObjectSpec,
    p: float = 2.0,
    criterion: DominationCriterion = "optimal",
    max_iterations: int = 6,
    uncertainty_budget: float = 0.25,
    idca: Optional[IDCA] = None,
    candidate_indices: Optional[Iterable[int]] = None,
) -> RankingResult:
    """Rank database objects by their expected rank w.r.t. ``query``.

    Parameters
    ----------
    uncertainty_budget:
        Per-object refinement target: IDCA stops as soon as the accumulated
        uncertainty of the domination-count bounds drops below the budget, or
        when ``max_iterations`` is reached.
    candidate_indices:
        Optional subset of database positions to rank; defaults to all.
    """
    start = time.perf_counter()
    exclude: set[int] = set()
    query_obj = resolve_object(database, query, exclude)

    if idca is None:
        idca = IDCA(database, p=p, criterion=criterion)
    if idca.k_cap is not None:
        raise ValueError("expected-rank ranking requires an untruncated IDCA instance")

    if candidate_indices is None:
        candidates = [i for i in range(len(database)) if i not in exclude]
    else:
        candidates = [int(i) for i in candidate_indices if int(i) not in exclude]

    entries: list[RankedObject] = []
    for index in candidates:
        run = idca.domination_count(
            index,
            query_obj,
            stop=UncertaintyBelow(uncertainty_budget),
            max_iterations=max_iterations,
            exclude_indices=sorted(exclude),
        )
        count_lower, count_upper = run.bounds.expected_count_bounds()
        entries.append(
            RankedObject(
                index=index,
                expected_rank_lower=count_lower + 1.0,
                expected_rank_upper=count_upper + 1.0,
                iterations=run.num_iterations,
            )
        )
    entries.sort(key=lambda entry: (entry.expected_rank_midpoint, entry.index))
    return RankingResult(ranking=entries, elapsed_seconds=time.perf_counter() - start)
