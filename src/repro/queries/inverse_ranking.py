"""Probabilistic inverse ranking queries (Corollary 3).

The inverse ranking query asks for the distribution of the *rank* an object
``B`` would obtain in a similarity ranking of the database w.r.t. an
(uncertain) reference object ``R``.  The rank distribution follows directly
from the domination count::

    P(Rank(B, R) = i) = P(DomCount(B, R) = i - 1)

so IDCA's conservative/progressive PMF bounds translate one-to-one into rank
probability bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, TYPE_CHECKING

import numpy as np

from ..core import IDCA, IDCAResult, StopCriterion
from ..geometry import DominationCriterion
from ..uncertain import UncertainDatabase
from .common import ObjectSpec, ensure_engine_matches, unwrap_engine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..engine import QueryEngine

__all__ = ["RankDistribution", "probabilistic_inverse_ranking"]


@dataclass(frozen=True)
class RankDistribution:
    """Bounded probability distribution over the rank of one object.

    Ranks are 1-based: rank 1 means no database object is closer to the
    reference.
    """

    lower: np.ndarray
    upper: np.ndarray
    idca_result: IDCAResult

    def __len__(self) -> int:
        return int(self.lower.shape[0])

    def rank_bounds(self, rank: int) -> tuple[float, float]:
        """Bounds of ``P(Rank = rank)`` (ranks are 1-based)."""
        if rank < 1 or rank > len(self):
            raise ValueError(f"rank must be between 1 and {len(self)}")
        return float(self.lower[rank - 1]), float(self.upper[rank - 1])

    def rank_at_most(self, rank: int) -> tuple[float, float]:
        """Bounds of ``P(Rank <= rank)``."""
        if rank < 1:
            return 0.0, 0.0
        return self.idca_result.bounds.cdf_bounds(min(rank, len(self)) - 1)

    def expected_rank_bounds(self) -> tuple[float, float]:
        """Bounds of the expected rank (Corollary 6, ``E[DomCount] + 1``)."""
        lower, upper = self.idca_result.bounds.expected_count_bounds()
        return lower + 1.0, upper + 1.0

    def most_likely_rank(self) -> int:
        """Rank with the highest midpoint probability."""
        midpoints = 0.5 * (self.lower + self.upper)
        return int(np.argmax(midpoints)) + 1

    def uncertainty(self) -> float:
        """Accumulated width of the rank probability bounds."""
        return float(np.sum(self.upper - self.lower))


def probabilistic_inverse_ranking(
    database: UncertainDatabase,
    target: ObjectSpec,
    reference: ObjectSpec,
    p: Optional[float] = None,
    criterion: Optional[DominationCriterion] = None,
    max_iterations: int = 10,
    uncertainty_budget: Optional[float] = None,
    stop: Optional[StopCriterion] = None,
    idca: Optional[IDCA] = None,
    exclude_indices: Optional[Sequence[int]] = None,
    engine: Optional["QueryEngine"] = None,
) -> RankDistribution:
    """Compute the bounded rank distribution of ``target`` w.r.t. ``reference``.

    Parameters
    ----------
    uncertainty_budget:
        Convenience stop criterion: refine until the accumulated uncertainty
        of the domination-count bounds drops below this budget.
    stop:
        Explicit stop criterion (overrides ``uncertainty_budget``).
    engine:
        Optional pre-built :class:`~repro.engine.QueryEngine` — or a
        :class:`~repro.engine.QueryService`, whose engine and shared
        context are then used in-process — to evaluate
        against.  Passing the same engine to repeated calls shares its
        refinement context (decomposition trees, memoised domination bounds)
        across queries, exactly like the batch API; it must have been built
        over ``database``, and any *explicitly passed* ``p`` / ``criterion``
        must agree with it (left at their defaults, the engine's own
        configuration is used), otherwise a ``ValueError`` is raised.
    """
    from ..engine import QueryEngine

    engine = unwrap_engine(engine)
    if engine is None:
        engine = QueryEngine(
            database,
            p=2.0 if p is None else p,
            criterion=criterion if criterion is not None else "optimal",
        )
    else:
        ensure_engine_matches(engine, database, p=p, criterion=criterion)
    return engine.inverse_ranking(
        target,
        reference,
        max_iterations=max_iterations,
        uncertainty_budget=uncertainty_budget,
        stop=stop,
        idca=idca,
        exclude_indices=exclude_indices,
    )
