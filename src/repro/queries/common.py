"""Shared helpers and result types of the probabilistic query layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from ..uncertain import UncertainDatabase, UncertainObject

__all__ = [
    "ObjectSpec",
    "resolve_object",
    "ensure_engine_matches",
    "unwrap_engine",
    "ProbabilisticMatch",
    "ThresholdQueryResult",
]


def unwrap_engine(engine):
    """Allow a ``QueryService`` wherever an adapter accepts ``engine=``.

    Single queries always evaluate in the calling process against the
    service's engine and shared refinement context — the worker pool only
    pays off for batches, which go through ``QueryService.evaluate_many``.
    Detection is structural (a service exposes ``submit`` and wraps an
    ``engine``) so this module needs no import of the engine package.
    """
    if engine is not None and hasattr(engine, "submit") and hasattr(engine, "engine"):
        return engine.engine
    return engine

ObjectSpec = Union[UncertainObject, int, np.integer]


def resolve_object(
    database: UncertainDatabase, spec: ObjectSpec, exclude: set[int]
) -> UncertainObject:
    """Resolve an object-or-index specification against a database.

    When ``spec`` is a database position it is added to ``exclude`` so the
    object does not participate in its own query evaluation.
    """
    if isinstance(spec, (int, np.integer)):
        index = int(spec)
        if not 0 <= index < len(database):
            raise IndexError(f"object index {index} out of range")
        exclude.add(index)
        return database[index]
    return spec


def ensure_engine_matches(
    engine,
    database: UncertainDatabase,
    p: Optional[float] = None,
    criterion: Optional[str] = None,
    rtree=None,
) -> None:
    """Validate that a caller-supplied engine agrees with the adapter args.

    The adapters evaluate through the engine's own configuration, so any
    explicitly passed ``p`` / ``criterion`` / ``rtree`` that contradicts it
    would be silently ignored — raise instead, like the database check.
    """
    if engine.database is not database:
        raise ValueError("the supplied engine was built over a different database")
    if p is not None and engine.p != p:
        raise ValueError(
            f"the supplied engine uses p={engine.p}, but p={p} was requested"
        )
    if criterion is not None and engine.criterion != criterion:
        raise ValueError(
            f"the supplied engine uses criterion={engine.criterion!r}, "
            f"but criterion={criterion!r} was requested"
        )
    if rtree is not None:
        raise ValueError(
            "pass rtree when constructing the engine, not alongside engine="
        )


@dataclass(frozen=True)
class ProbabilisticMatch:
    """Per-object outcome of a probabilistic threshold query.

    Attributes
    ----------
    index:
        Database position of the evaluated object.
    probability_lower, probability_upper:
        Bounds of the query-predicate probability (e.g. ``P(B in kNN(Q))``).
    decision:
        ``True`` when the predicate provably holds, ``False`` when it provably
        fails, ``None`` when the iteration budget ran out before the predicate
        became decidable — the probability bounds then serve as the confidence
        interval the paper suggests returning to the user.
    iterations:
        Number of refinement iterations IDCA spent on this object.
    sequence:
        Position of this object in the query's evaluation order (the order in
        which the engine concluded each candidate's evaluation).  ``-1`` for
        matches constructed outside a query run.
    """

    index: int
    probability_lower: float
    probability_upper: float
    decision: Optional[bool]
    iterations: int
    sequence: int = -1

    @property
    def probability_midpoint(self) -> float:
        """Midpoint of the probability bounds."""
        return 0.5 * (self.probability_lower + self.probability_upper)


@dataclass
class ThresholdQueryResult:
    """Result of a probabilistic threshold query (kNN or reverse kNN).

    Attributes
    ----------
    k, tau:
        Query parameters.
    matches:
        Objects for which the predicate provably holds.
    undecided:
        Objects whose predicate could not be decided within the iteration
        budget (bounds straddle ``tau``).
    rejected:
        Objects for which the predicate provably fails but that were close
        enough to require probabilistic evaluation.
    pruned:
        Number of objects discarded by the spatial candidate filter alone.
    elapsed_seconds:
        Total query wall-clock time.
    """

    k: int
    tau: float
    matches: list[ProbabilisticMatch] = field(default_factory=list)
    undecided: list[ProbabilisticMatch] = field(default_factory=list)
    rejected: list[ProbabilisticMatch] = field(default_factory=list)
    pruned: int = 0
    elapsed_seconds: float = 0.0

    def result_indices(self) -> list[int]:
        """Database positions of the objects that satisfy the predicate."""
        return [match.index for match in self.matches]

    def candidate_count(self) -> int:
        """Number of objects that required probabilistic evaluation."""
        return len(self.matches) + len(self.undecided) + len(self.rejected)

    def all_evaluated(self) -> list[ProbabilisticMatch]:
        """Every probabilistically evaluated object, in evaluation order.

        Matches carry the sequence number the engine assigned when their
        evaluation concluded; sorting on it restores the true evaluation
        order.  When any match lacks a sequence number (hand-constructed
        results), ordering by sequence would be meaningless, so the plain
        bucket concatenation is returned instead.
        """
        combined = [*self.matches, *self.undecided, *self.rejected]
        if any(match.sequence < 0 for match in combined):
            return combined
        return sorted(combined, key=lambda match: match.sequence)
