"""Probabilistic similarity queries built on the domination-count machinery."""

from .common import ObjectSpec, ProbabilisticMatch, ThresholdQueryResult
from .inverse_ranking import RankDistribution, probabilistic_inverse_ranking
from .knn import probabilistic_knn_threshold
from .range import probabilistic_range_query, probability_within_range
from .ranking import RankedObject, RankingResult, expected_rank_ranking
from .rknn import probabilistic_rknn_threshold

__all__ = [
    "ObjectSpec",
    "ProbabilisticMatch",
    "ThresholdQueryResult",
    "RankDistribution",
    "probabilistic_inverse_ranking",
    "probabilistic_knn_threshold",
    "probabilistic_range_query",
    "probability_within_range",
    "RankedObject",
    "RankingResult",
    "expected_rank_ranking",
    "probabilistic_rknn_threshold",
]
