"""Probabilistic threshold reverse k-nearest-neighbour queries (Corollary 5).

An object ``A`` is a reverse k-nearest neighbour of the query ``Q`` when ``Q``
is among the ``k`` nearest neighbours *of A*, i.e. when fewer than ``k``
database objects are closer to ``A`` than ``Q`` is::

    P^RkNN(A, Q) = sum_{i < k} P(DomCount(Q, A) = i) >= tau

Note the swapped roles compared to the kNN query: the query object is the
*target* of the domination count and the database object ``A`` is the
*reference*.  The evaluation is delegated to the unified
:class:`~repro.engine.QueryEngine`.
"""

from __future__ import annotations

from typing import Iterable, Optional, TYPE_CHECKING

from ..core import IDCA
from ..geometry import DominationCriterion
from ..uncertain import UncertainDatabase
from .common import ObjectSpec, ThresholdQueryResult, ensure_engine_matches, unwrap_engine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..engine import QueryEngine

__all__ = ["probabilistic_rknn_threshold"]


def probabilistic_rknn_threshold(
    database: UncertainDatabase,
    query: ObjectSpec,
    k: int,
    tau: float,
    p: Optional[float] = None,
    criterion: Optional[DominationCriterion] = None,
    max_iterations: int = 10,
    idca: Optional[IDCA] = None,
    candidate_indices: Optional[Iterable[int]] = None,
    strict: bool = False,
    engine: Optional["QueryEngine"] = None,
) -> ThresholdQueryResult:
    """Evaluate a probabilistic threshold reverse kNN query.

    Parameters
    ----------
    database:
        The uncertain database.
    query:
        Query object or database position.
    k, tau:
        Report objects that have the query among their ``k`` nearest
        neighbours with probability at least ``tau``.
    candidate_indices:
        Optional subset of database positions to evaluate (e.g. produced by an
        application-specific filter); defaults to the full database.
    engine:
        Optional pre-built :class:`~repro.engine.QueryEngine` — or a
        :class:`~repro.engine.QueryService`, whose engine and shared
        context are then used in-process — to evaluate
        against.  Passing the same engine to repeated calls shares its
        refinement context (decomposition trees, memoised domination bounds)
        across queries, exactly like the batch API; it must have been built
        over ``database``, and any *explicitly passed* ``p`` / ``criterion``
        must agree with it (left at their defaults, the engine's own
        configuration is used), otherwise a ``ValueError`` is raised.
    """
    from ..engine import QueryEngine

    engine = unwrap_engine(engine)
    if engine is None:
        engine = QueryEngine(
            database,
            p=2.0 if p is None else p,
            criterion=criterion if criterion is not None else "optimal",
        )
    else:
        ensure_engine_matches(engine, database, p=p, criterion=criterion)
    return engine.rknn(
        query,
        k=k,
        tau=tau,
        max_iterations=max_iterations,
        idca=idca,
        candidate_indices=candidate_indices,
        strict=strict,
    )
