"""Probabilistic threshold reverse k-nearest-neighbour queries (Corollary 5).

An object ``A`` is a reverse k-nearest neighbour of the query ``Q`` when ``Q``
is among the ``k`` nearest neighbours *of A*, i.e. when fewer than ``k``
database objects are closer to ``A`` than ``Q`` is::

    P^RkNN(A, Q) = sum_{i < k} P(DomCount(Q, A) = i) >= tau

Note the swapped roles compared to the kNN query: the query object is the
*target* of the domination count and the database object ``A`` is the
*reference*.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional

from ..core import IDCA, ThresholdDecision
from ..geometry import DominationCriterion
from ..uncertain import UncertainDatabase
from .common import ObjectSpec, ProbabilisticMatch, ThresholdQueryResult, resolve_object

__all__ = ["probabilistic_rknn_threshold"]


def probabilistic_rknn_threshold(
    database: UncertainDatabase,
    query: ObjectSpec,
    k: int,
    tau: float,
    p: float = 2.0,
    criterion: DominationCriterion = "optimal",
    max_iterations: int = 10,
    idca: Optional[IDCA] = None,
    candidate_indices: Optional[Iterable[int]] = None,
    strict: bool = False,
) -> ThresholdQueryResult:
    """Evaluate a probabilistic threshold reverse kNN query.

    Parameters
    ----------
    database:
        The uncertain database.
    query:
        Query object or database position.
    k, tau:
        Report objects that have the query among their ``k`` nearest
        neighbours with probability at least ``tau``.
    candidate_indices:
        Optional subset of database positions to evaluate (e.g. produced by an
        application-specific filter); defaults to the full database.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    if not 0.0 <= tau <= 1.0:
        raise ValueError("tau must be a probability")

    start = time.perf_counter()
    exclude: set[int] = set()
    query_obj = resolve_object(database, query, exclude)

    if idca is None:
        idca = IDCA(database, p=p, criterion=criterion, k_cap=k)
    elif idca.k_cap is not None and idca.k_cap < k:
        raise ValueError("the supplied IDCA instance truncates below the requested k")

    if candidate_indices is None:
        candidates = [i for i in range(len(database)) if i not in exclude]
    else:
        candidates = [int(i) for i in candidate_indices if int(i) not in exclude]

    result = ThresholdQueryResult(
        k=k, tau=tau, pruned=len(database) - len(exclude) - len(candidates)
    )
    for index in candidates:
        stop = ThresholdDecision(k=k, tau=tau, strict=strict)
        # the count is over objects other than the candidate itself and the query
        run_exclude = set(exclude)
        run_exclude.add(index)
        run = idca.domination_count(
            query_obj,
            database[index],
            stop=stop,
            max_iterations=max_iterations,
            exclude_indices=sorted(run_exclude),
        )
        lower, upper = run.bounds.less_than(k)
        match = ProbabilisticMatch(
            index=index,
            probability_lower=lower,
            probability_upper=upper,
            decision=run.decision,
            iterations=run.num_iterations,
        )
        if run.decision is True:
            result.matches.append(match)
        elif run.decision is False:
            result.rejected.append(match)
        else:
            result.undecided.append(match)
    result.elapsed_seconds = time.perf_counter() - start
    return result
