"""Gateway-side counters, gauges and latency quantiles.

The gateway exports two kinds of numbers on ``GET /metrics``:

* **engine counters** folded out of every :class:`~repro.engine.BatchReport`
  the service resolves (scheduler steps, refinement iterations, shared
  bounds-store hits, worker respawns, chunk retries, degraded workers) —
  the same counters the soak test asserts are *monotone*;
* **gateway counters and gauges** — per-status-code response counts,
  coalesce hits, request/connection totals, in-flight queue depth — plus
  request latency quantiles (p50/p95/p99) from a fixed-bucket histogram.

Everything is guarded by one lock: responses are recorded on the event
loop, but ``/metrics`` snapshots may also be taken from test threads via
:meth:`GatewayServer.metrics <repro.gateway.server.GatewayServer.metrics>`.
The histogram uses fixed log-spaced bucket boundaries rather than raw
samples so a soak run's memory stays constant, and the quantile estimate
(upper edge of the covering bucket) is deterministic for a given stream.
"""

from __future__ import annotations

import bisect
import threading
from typing import Optional, Sequence

__all__ = ["GatewayMetrics", "LatencyHistogram", "default_latency_buckets"]


def default_latency_buckets() -> tuple[float, ...]:
    """Log-spaced latency bucket upper bounds, 100 µs … ~105 s."""
    bounds = []
    edge = 0.0001
    while edge < 120.0:
        bounds.append(edge)
        edge *= 1.5
    return tuple(bounds)


class LatencyHistogram:
    """Fixed-bucket latency histogram with quantile estimates.

    Buckets are defined by ascending upper bounds in seconds; a final
    overflow bucket catches everything above the last bound.  Quantiles
    are reported as the upper bound of the bucket containing the target
    rank — a deterministic over-estimate, which is the safe direction for
    latency SLO gates.  Shared by the gateway metrics and the load
    generator (``repro/testing/load.py``) so both report comparable
    numbers.
    """

    def __init__(self, bounds: Optional[Sequence[float]] = None):
        self._bounds = tuple(bounds) if bounds is not None else default_latency_buckets()
        if list(self._bounds) != sorted(self._bounds) or not self._bounds:
            raise ValueError("bucket bounds must be a non-empty ascending sequence")
        self._counts = [0] * (len(self._bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency sample."""
        index = bisect.bisect_left(self._bounds, seconds)
        self._counts[index] += 1
        self._count += 1
        self._sum += seconds
        if seconds > self._max:
            self._max = seconds

    @property
    def count(self) -> int:
        """Number of samples observed."""
        return self._count

    @property
    def mean(self) -> float:
        """Mean latency in seconds (0.0 before any sample)."""
        return self._sum / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        """Largest latency observed in seconds."""
        return self._max

    def quantile(self, q: float) -> float:
        """Latency at quantile ``q`` in [0, 1] (upper bucket edge)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if not self._count:
            return 0.0
        rank = q * self._count
        seen = 0
        for index, bucket_count in enumerate(self._counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(self._bounds):
                    return self._bounds[index]
                return self._max
        return self._max

    def snapshot(self) -> dict:
        """JSON-safe summary: count, mean, max and p50/p95/p99."""
        return {
            "count": self._count,
            "mean_seconds": self.mean,
            "max_seconds": self._max,
            "p50_seconds": self.quantile(0.50),
            "p95_seconds": self.quantile(0.95),
            "p99_seconds": self.quantile(0.99),
        }


class GatewayMetrics:
    """Thread-safe aggregate of everything ``GET /metrics`` exports."""

    def __init__(self):
        self._lock = threading.Lock()
        self._latency = LatencyHistogram()
        self._status_counts: dict[int, int] = {}
        self._requests_total = 0
        self._coalesce_hits = 0
        self._tenant_rejections = 0
        self._in_flight = 0
        self._connections_open = 0
        self._connections_total = 0
        self._batches_total = 0
        self._engine = {
            "scheduler_steps": 0,
            "result_iterations": 0,
            "shared_hits": 0,
            "shared_rejected": 0,
            "shared_duplicates": 0,
            "claim_steals": 0,
            "claim_waits": 0,
            "worker_respawns": 0,
            "chunk_retries": 0,
            "degraded_workers": 0,
        }

    # -- lifecycle of one request/connection ---------------------------- #
    def connection_opened(self) -> None:
        with self._lock:
            self._connections_open += 1
            self._connections_total += 1

    def connection_closed(self) -> None:
        with self._lock:
            self._connections_open -= 1

    def request_started(self) -> None:
        with self._lock:
            self._in_flight += 1

    def request_finished(self, status: int, latency_seconds: float) -> None:
        with self._lock:
            self._in_flight -= 1
            self._requests_total += 1
            self._status_counts[status] = self._status_counts.get(status, 0) + 1
            self._latency.observe(latency_seconds)

    def response_sent(self, status: int) -> None:
        """Count a response that never entered the query path (404, 400...)."""
        with self._lock:
            self._requests_total += 1
            self._status_counts[status] = self._status_counts.get(status, 0) + 1

    def coalesce_hit(self) -> None:
        with self._lock:
            self._coalesce_hits += 1

    def tenant_rejected(self) -> None:
        with self._lock:
            self._tenant_rejections += 1

    def record_report(self, report) -> None:
        """Fold one resolved :class:`~repro.engine.BatchReport` into the totals."""
        with self._lock:
            self._batches_total += 1
            self._engine["scheduler_steps"] += report.scheduler_steps
            self._engine["result_iterations"] += report.result_iterations
            self._engine["shared_hits"] += report.shared_hits
            self._engine["shared_rejected"] += report.shared_rejected
            self._engine["shared_duplicates"] += report.shared_duplicates
            self._engine["claim_steals"] += report.claim_steals
            self._engine["claim_waits"] += report.claim_waits
            self._engine["worker_respawns"] += report.worker_respawns
            self._engine["chunk_retries"] += report.chunk_retries
            self._engine["degraded_workers"] += report.degraded_workers

    # -- export ---------------------------------------------------------- #
    @property
    def in_flight(self) -> int:
        """Requests admitted but not yet answered (queue depth gauge)."""
        with self._lock:
            return self._in_flight

    @property
    def connections_open(self) -> int:
        """Currently open client connections."""
        with self._lock:
            return self._connections_open

    def snapshot(self) -> dict:
        """One JSON-safe snapshot of every counter, gauge and quantile."""
        with self._lock:
            return {
                "requests_total": self._requests_total,
                "responses_by_status": {
                    str(code): count
                    for code, count in sorted(self._status_counts.items())
                },
                "coalesce_hits": self._coalesce_hits,
                "tenant_rejections": self._tenant_rejections,
                "queue_depth": self._in_flight,
                "connections_open": self._connections_open,
                "connections_total": self._connections_total,
                "latency": self._latency.snapshot(),
                "engine": {"batches_total": self._batches_total, **self._engine},
            }
