"""Run a demo gateway over a synthetic database: ``python -m repro.gateway``.

Useful for poking the HTTP surface with curl; production embedders should
construct :class:`~repro.gateway.GatewayServer` around their own
:class:`~repro.engine.QueryService` instead.
"""

from __future__ import annotations

import argparse
import time

from ..datasets import uniform_rectangle_database
from ..engine import ExecutorConfig, QueryService
from .server import GatewayConfig, GatewayServer


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--objects", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--timeout-ms",
        type=int,
        default=None,
        help="default per-request deadline when the client sends none",
    )
    args = parser.parse_args(argv)

    database = uniform_rectangle_database(
        num_objects=args.objects, max_extent=0.05, seed=args.seed
    )
    config = GatewayConfig(
        host=args.host, port=args.port, default_timeout_ms=args.timeout_ms
    )
    with QueryService(database, ExecutorConfig(workers=args.workers)) as service:
        with GatewayServer(service, config) as server:
            print(f"gateway listening on {server.url} (ctrl-c to stop)")
            try:
                while True:
                    time.sleep(3600)
            except KeyboardInterrupt:
                print("draining...")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
