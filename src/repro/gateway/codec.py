"""JSON codecs between the HTTP surface and the engine's typed requests.

Three jobs, all deterministic:

* **decode** — turn a client JSON document into exactly one of the five
  query-request dataclasses (``repro/engine/requests.py``), validating
  every field eagerly so malformed input fails with :class:`CodecError`
  (→ HTTP 400) *before* anything reaches the service queue.  Object
  arguments accept a database position or an inline uncertain-object
  literal (box-uniform, discrete, truncated Gaussian);
* **key** — derive the process-independent *request key* used for
  in-flight request coalescing: the PR-5
  :func:`~repro.engine.boundstore.stable_object_key` identity of every
  object argument plus the full result-relevant parameter tuple.  Two
  requests with equal keys are guaranteed to produce equal results (the
  engine is deterministic), so the gateway can serve both from one
  evaluation;
* **encode** — serialise result objects into *canonical* JSON bytes
  (sorted keys, no whitespace, no wall-clock fields), so coalesced
  duplicates — and the same request replayed at any worker count — are
  byte-identical.  Timing lives in the gateway metrics, never in
  payloads.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Optional, Union

from ..engine.boundstore import encode_stable_key, stable_object_key
from ..engine.requests import (
    InverseRankingQuery,
    KNNQuery,
    QueryRequest,
    RangeQuery,
    RankingQuery,
    RKNNQuery,
)
from ..geometry import Rectangle
from ..queries.common import ThresholdQueryResult
from ..queries.inverse_ranking import RankDistribution
from ..queries.ranking import RankingResult
from ..uncertain import (
    BoxUniformObject,
    DiscreteObject,
    TruncatedGaussianObject,
    UncertainObject,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..uncertain import UncertainDatabase

__all__ = [
    "CodecError",
    "STANDING_KINDS",
    "SUPPORTED_KINDS",
    "canonical_json",
    "decode_mutations",
    "decode_query",
    "encode_result",
    "request_key",
]

#: The five query types the gateway serves.
SUPPORTED_KINDS = ("knn", "rknn", "range", "ranking", "inverse_ranking")

#: The query types that may be registered as standing queries (re-evaluated
#: on mutation).  Restricted to the kinds whose results the gateway knows
#: how to maintain incrementally — see ``gateway/server.py``.
STANDING_KINDS = ("knn", "range", "ranking")


class CodecError(ValueError):
    """A client document that does not decode into a supported query."""


# --------------------------------------------------------------------- #
# field validation helpers
# --------------------------------------------------------------------- #
def _require(payload: dict, name: str):
    if name not in payload:
        raise CodecError(f"missing required field {name!r}")
    return payload[name]


def _as_int(value, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise CodecError(f"{name} must be an integer, got {value!r}")
    return value


def _as_number(value, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise CodecError(f"{name} must be a number, got {value!r}")
    return float(value)


def _as_bool(value, name: str) -> bool:
    if not isinstance(value, bool):
        raise CodecError(f"{name} must be a boolean, got {value!r}")
    return value


def _as_index_list(value, name: str) -> Optional[tuple[int, ...]]:
    if value is None:
        return None
    if not isinstance(value, list):
        raise CodecError(f"{name} must be a list of integers, got {value!r}")
    return tuple(_as_int(item, f"{name}[{i}]") for i, item in enumerate(value))


def _vector(value, name: str) -> list[float]:
    if not isinstance(value, list) or not value:
        raise CodecError(f"{name} must be a non-empty list of numbers")
    return [_as_number(item, f"{name}[{i}]") for i, item in enumerate(value)]


def _decode_object(
    spec, database: "UncertainDatabase", name: str
) -> Union[int, UncertainObject]:
    """Decode an object argument: a database position or an inline literal."""
    if isinstance(spec, bool):
        raise CodecError(f"{name} must be an index or an object literal")
    if isinstance(spec, int):
        if not 0 <= spec < len(database):
            raise CodecError(
                f"{name} index {spec} out of range for a database of "
                f"{len(database)} objects"
            )
        return spec
    if not isinstance(spec, dict):
        raise CodecError(f"{name} must be an index or an object literal")
    kinds = {"box", "points", "gaussian"} & spec.keys()
    if len(kinds) != 1:
        raise CodecError(
            f"{name} literal must have exactly one of 'box', 'points', "
            f"'gaussian', got {sorted(spec)}"
        )
    try:
        if "box" in spec:
            box = spec["box"]
            if not isinstance(box, dict):
                raise CodecError(f"{name}.box must be an object")
            lower = _vector(_require(box, "lower"), f"{name}.box.lower")
            upper = _vector(_require(box, "upper"), f"{name}.box.upper")
            return BoxUniformObject(Rectangle.from_bounds(lower, upper))
        if "points" in spec:
            points = spec["points"]
            if not isinstance(points, list) or not points:
                raise CodecError(f"{name}.points must be a non-empty list")
            rows = [_vector(row, f"{name}.points[{i}]") for i, row in enumerate(points)]
            weights = spec.get("weights")
            if weights is not None:
                weights = _vector(weights, f"{name}.weights")
            return DiscreteObject(rows, weights)
        gaussian = spec["gaussian"]
        if not isinstance(gaussian, dict):
            raise CodecError(f"{name}.gaussian must be an object")
        mean = _vector(_require(gaussian, "mean"), f"{name}.gaussian.mean")
        std = _vector(_require(gaussian, "std"), f"{name}.gaussian.std")
        return TruncatedGaussianObject(mean, std)
    except CodecError:
        raise
    except (TypeError, ValueError) as error:
        raise CodecError(f"invalid {name} literal: {error}") from error


def _reject_unknown(payload: dict, allowed: set, kind: str) -> None:
    unknown = set(payload) - allowed
    if unknown:
        raise CodecError(
            f"unknown field(s) for {kind!r} query: {sorted(unknown)}"
        )


# --------------------------------------------------------------------- #
# decoding
# --------------------------------------------------------------------- #
def decode_query(payload, database: "UncertainDatabase") -> QueryRequest:
    """Decode one client JSON document into a typed query request.

    ``payload`` must be a JSON object with a ``type`` field naming one of
    :data:`SUPPORTED_KINDS`; every other field mirrors the corresponding
    request dataclass.  Unknown fields are rejected (a typo'd optional
    field silently falling back to its default would change results), as
    are values of the wrong type — all as :class:`CodecError`, which the
    server maps to HTTP 400.  Transport-level fields (``timeout_ms``,
    ``tenant``) are the server's job and must be stripped before calling.
    """
    if not isinstance(payload, dict):
        raise CodecError("query must be a JSON object")
    kind = _require(payload, "type")
    if kind not in SUPPORTED_KINDS:
        raise CodecError(
            f"unsupported query type {kind!r}; expected one of {SUPPORTED_KINDS}"
        )
    if kind == "knn":
        _reject_unknown(
            payload, {"type", "query", "k", "tau", "max_iterations", "strict"}, kind
        )
        return KNNQuery(
            query=_decode_object(_require(payload, "query"), database, "query"),
            k=_as_int(_require(payload, "k"), "k"),
            tau=_as_number(_require(payload, "tau"), "tau"),
            max_iterations=_as_int(payload.get("max_iterations", 10), "max_iterations"),
            strict=_as_bool(payload.get("strict", False), "strict"),
        )
    if kind == "rknn":
        _reject_unknown(
            payload,
            {"type", "query", "k", "tau", "max_iterations", "candidate_indices",
             "strict"},
            kind,
        )
        return RKNNQuery(
            query=_decode_object(_require(payload, "query"), database, "query"),
            k=_as_int(_require(payload, "k"), "k"),
            tau=_as_number(_require(payload, "tau"), "tau"),
            max_iterations=_as_int(payload.get("max_iterations", 10), "max_iterations"),
            candidate_indices=_as_index_list(
                payload.get("candidate_indices"), "candidate_indices"
            ),
            strict=_as_bool(payload.get("strict", False), "strict"),
        )
    if kind == "range":
        _reject_unknown(
            payload, {"type", "query", "epsilon", "tau", "max_depth", "strict"}, kind
        )
        return RangeQuery(
            query=_decode_object(_require(payload, "query"), database, "query"),
            epsilon=_as_number(_require(payload, "epsilon"), "epsilon"),
            tau=_as_number(_require(payload, "tau"), "tau"),
            max_depth=_as_int(payload.get("max_depth", 6), "max_depth"),
            strict=_as_bool(payload.get("strict", False), "strict"),
        )
    if kind == "ranking":
        _reject_unknown(
            payload,
            {"type", "query", "max_iterations", "uncertainty_budget",
             "candidate_indices"},
            kind,
        )
        return RankingQuery(
            query=_decode_object(_require(payload, "query"), database, "query"),
            max_iterations=_as_int(payload.get("max_iterations", 6), "max_iterations"),
            uncertainty_budget=_as_number(
                payload.get("uncertainty_budget", 0.25), "uncertainty_budget"
            ),
            candidate_indices=_as_index_list(
                payload.get("candidate_indices"), "candidate_indices"
            ),
        )
    _reject_unknown(
        payload,
        {"type", "target", "reference", "max_iterations", "uncertainty_budget",
         "exclude_indices"},
        kind,
    )
    budget = payload.get("uncertainty_budget")
    return InverseRankingQuery(
        target=_decode_object(_require(payload, "target"), database, "target"),
        reference=_decode_object(_require(payload, "reference"), database, "reference"),
        max_iterations=_as_int(payload.get("max_iterations", 10), "max_iterations"),
        uncertainty_budget=(
            None if budget is None else _as_number(budget, "uncertainty_budget")
        ),
        exclude_indices=_as_index_list(
            payload.get("exclude_indices"), "exclude_indices"
        ),
    )


def _decode_literal(spec, database: "UncertainDatabase", name: str) -> UncertainObject:
    """Decode an object literal, rejecting database positions.

    Mutations carry object *content*; a bare position would be ambiguous
    (insert object number 5?), so only inline literals are accepted.
    """
    if isinstance(spec, int) and not isinstance(spec, bool):
        raise CodecError(
            f"{name} must be an object literal, not a database position"
        )
    return _decode_object(spec, database, name)


def decode_mutations(payload, database: "UncertainDatabase") -> tuple:
    """Decode a client mutation list into typed mutation operations.

    ``payload`` must be a non-empty JSON list of operation objects, each
    carrying an ``op`` field: ``{"op": "insert", "object": <literal>}``,
    ``{"op": "update", "position": n, "object": <literal>}`` or
    ``{"op": "delete", "position": n}``.  Operations are sequential —
    each position refers to the database state after the preceding
    operations — and positions are bounds-checked against that running
    state here, so a malformed batch fails with :class:`CodecError`
    (→ HTTP 400) before anything reaches the service queue.
    """
    from ..uncertain.base import Delete, Insert, Update

    if not isinstance(payload, list) or not payload:
        raise CodecError("mutations must be a non-empty list of operations")
    length = len(database)
    decoded = []
    for i, op in enumerate(payload):
        name = f"mutations[{i}]"
        if not isinstance(op, dict):
            raise CodecError(f"{name} must be an operation object")
        kind = _require(op, "op")
        if kind == "insert":
            _reject_unknown(op, {"op", "object"}, "insert")
            decoded.append(
                Insert(_decode_literal(_require(op, "object"), database, f"{name}.object"))
            )
            length += 1
            continue
        if kind not in ("update", "delete"):
            raise CodecError(
                f"{name}.op must be one of 'insert', 'update', 'delete', got {kind!r}"
            )
        position = _as_int(_require(op, "position"), f"{name}.position")
        if not 0 <= position < length:
            raise CodecError(
                f"{name}.position {position} out of range for a database of "
                f"{length} objects at that point in the batch"
            )
        if kind == "update":
            _reject_unknown(op, {"op", "position", "object"}, "update")
            decoded.append(
                Update(
                    position,
                    _decode_literal(_require(op, "object"), database, f"{name}.object"),
                )
            )
        else:
            _reject_unknown(op, {"op", "position"}, "delete")
            if length == 1:
                raise CodecError(f"{name} would delete the last remaining object")
            decoded.append(Delete(position))
            length -= 1
    return tuple(decoded)


# --------------------------------------------------------------------- #
# coalescing keys
# --------------------------------------------------------------------- #
def _object_key(database: "UncertainDatabase", spec) -> tuple:
    if isinstance(spec, int):
        return ("db", spec)
    return stable_object_key(database, spec)


def request_key(database: "UncertainDatabase", request: QueryRequest) -> bytes:
    """Process-independent identity of one decoded request.

    Built from the :func:`~repro.engine.boundstore.stable_object_key` of
    every object argument plus all result-relevant parameters — equal keys
    imply bit-identical results, so the gateway may serve concurrent
    duplicates from a single evaluation.  Transport fields (timeouts,
    tenants) never enter the key: they affect *whether and when* a request
    runs, not what it returns.
    """
    if isinstance(request, KNNQuery):
        parts = (
            "knn",
            _object_key(database, request.query),
            request.k,
            request.tau,
            request.max_iterations,
            request.strict,
        )
    elif isinstance(request, RKNNQuery):
        candidates = request.candidate_indices
        parts = (
            "rknn",
            _object_key(database, request.query),
            request.k,
            request.tau,
            request.max_iterations,
            None if candidates is None else tuple(int(i) for i in candidates),
            request.strict,
        )
    elif isinstance(request, RangeQuery):
        parts = (
            "range",
            _object_key(database, request.query),
            request.epsilon,
            request.tau,
            request.max_depth,
            request.strict,
        )
    elif isinstance(request, RankingQuery):
        candidates = request.candidate_indices
        parts = (
            "ranking",
            _object_key(database, request.query),
            request.max_iterations,
            request.uncertainty_budget,
            None if candidates is None else tuple(int(i) for i in candidates),
        )
    elif isinstance(request, InverseRankingQuery):
        exclude = request.exclude_indices
        parts = (
            "inverse_ranking",
            _object_key(database, request.target),
            _object_key(database, request.reference),
            request.max_iterations,
            request.uncertainty_budget,
            None if exclude is None else tuple(int(i) for i in exclude),
        )
    else:  # pragma: no cover - decode_query cannot produce other kinds
        raise CodecError(f"cannot key request of type {type(request).__name__}")
    # the snapshot epoch scopes the key to one database version: results are
    # a function of the *whole* snapshot, so requests decoded against
    # different epochs must never coalesce even when every object argument
    # is untouched (position keys also fold per-object generations, but the
    # epoch covers content changes anywhere in the database)
    return encode_stable_key((database.epoch,) + parts)


# --------------------------------------------------------------------- #
# encoding
# --------------------------------------------------------------------- #
def _encode_match(match) -> dict:
    return {
        "index": match.index,
        "probability_lower": match.probability_lower,
        "probability_upper": match.probability_upper,
        "decision": match.decision,
        "iterations": match.iterations,
        "sequence": match.sequence,
    }


def encode_result(result) -> dict:
    """Serialise one engine result into a JSON-safe dict.

    Deliberately omits wall-clock fields (``elapsed_seconds``): payloads
    must be a pure function of the query and the database so coalesced
    duplicates — and replays at any worker count — stay byte-identical.
    """
    if isinstance(result, ThresholdQueryResult):
        return {
            "kind": "threshold",
            "k": result.k,
            "tau": result.tau,
            "pruned": result.pruned,
            "matches": [_encode_match(m) for m in result.matches],
            "undecided": [_encode_match(m) for m in result.undecided],
            "rejected": [_encode_match(m) for m in result.rejected],
        }
    if isinstance(result, RankingResult):
        return {
            "kind": "ranking",
            "ranking": [
                {
                    "index": entry.index,
                    "expected_rank_lower": entry.expected_rank_lower,
                    "expected_rank_upper": entry.expected_rank_upper,
                    "iterations": entry.iterations,
                }
                for entry in result.ranking
            ],
        }
    if isinstance(result, RankDistribution):
        return {
            "kind": "rank_distribution",
            "lower": [float(value) for value in result.lower],
            "upper": [float(value) for value in result.upper],
            "expected_rank_bounds": list(result.expected_rank_bounds()),
            "most_likely_rank": result.most_likely_rank(),
        }
    raise CodecError(f"cannot encode result of type {type(result).__name__}")


def canonical_json(document) -> bytes:
    """Canonical JSON bytes: sorted keys, minimal separators, UTF-8.

    The byte-identity contract of coalescing and of the determinism gate
    rests on this being a pure function of the document structure.
    """
    return json.dumps(
        document, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
