"""The asyncio HTTP gateway in front of :class:`~repro.engine.QueryService`.

Request lifecycle (see ``docs/architecture.md`` · *Network tier*):

1. **Parse** — ``http.read_request`` frames one request; malformed bytes
   answer 400/413/431 and close the connection.
2. **Decode** — ``codec.decode_query`` turns the JSON document into one of
   the five typed query requests; transport fields (``timeout_ms``,
   ``tenant``) are stripped first.  Decode failures answer 400 before
   anything touches the service queue.
3. **Admit** — per-tenant token buckets (refinement-iteration budgets
   layered on the scheduler's global ``max_iterations`` budgets) answer
   429 + ``Retry-After`` when a tenant is out of budget; the service's own
   admission bounds surface as 429 too.
4. **Coalesce** — in-flight requests with equal ``codec.request_key``
   share one evaluation: followers await the leader's future and receive
   byte-identical payloads.  The coalescing window is strictly *in
   flight*: the map entry is dropped the moment the future resolves, so
   no stale result is ever served.
5. **Submit** — fresh requests go to ``QueryService.submit`` with the
   client deadline fixed at *arrival* time (``deadline_epoch``), so queue
   wait counts against the budget.  The batch future re-enters the event
   loop via ``ServiceBatch.add_done_callback`` +
   ``loop.call_soon_threadsafe`` — no loop thread ever blocks on a batch.
6. **Respond** — results serialise through ``codec.encode_result`` /
   ``codec.canonical_json``; typed service errors map onto status codes
   (429/503/504, anything else 500) with JSON error bodies.

The gateway also fronts the **mutation path** (PR 9): ``POST /v1/mutate``
decodes a sequential operation list (``codec.decode_mutations``), applies
it through the :meth:`QueryService.submit_mutations` snapshot barrier, and
then refreshes the **standing-query registry** — kNN / range / ranking
documents registered via ``POST /v1/standing`` whose latest results the
gateway keeps current across epochs.  The refresh is incremental: a batch
with deletes re-evaluates everything (positions shift), rank-based queries
re-evaluate on any mutation (one object can shift every rank), but a range
query is only re-evaluated when a touched MBR intrudes within ``epsilon``
of its query — a provably-pruned insert merely patches the stored result's
``pruned`` count, and an untouched neighbourhood skips the query entirely.
Mutations and registrations serialise on one ``asyncio`` lock, and the
coalescing key folds the snapshot epoch, so a result computed at epoch
``E`` can never be served for a request admitted at ``E+1``.

Everything runs on the standard library: the north star forbids new
runtime dependencies, and ``asyncio.start_server`` plus the minimal
HTTP/1.1 layer in ``gateway/http.py`` is all the surface the service
needs.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time
from dataclasses import dataclass
from typing import Optional

from ..engine.errors import (
    DeadlineExceeded,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from ..geometry import min_dist
from .codec import (
    STANDING_KINDS,
    CodecError,
    canonical_json,
    decode_mutations,
    decode_query,
    encode_result,
    request_key,
)
from .http import (
    DEFAULT_MAX_BODY_BYTES,
    DEFAULT_MAX_HEADER_BYTES,
    HttpRequest,
    ProtocolError,
    encode_response,
    read_request,
)
from .metrics import GatewayMetrics

__all__ = ["AsyncGateway", "GatewayConfig", "GatewayServer"]


@dataclass(frozen=True)
class GatewayConfig:
    """Tunables of one gateway instance.

    Parameters
    ----------
    host / port:
        Listen address.  Port 0 (the default) binds an ephemeral port —
        read the actual one from :attr:`AsyncGateway.address`.
    default_timeout_ms:
        Deadline applied to requests that do not carry ``timeout_ms``
        themselves (``None`` = no deadline).
    coalesce:
        Whether in-flight requests with equal request keys share one
        evaluation.  On by default; disable to measure its effect.
    coalesce_grace_seconds:
        Extra wait a coalesced follower grants the shared future beyond
        its own timeout before answering 504 (the leader's deadline may
        be marginally later than the follower's).
    tenant_budget:
        Refinement iterations (scheduler steps) each tenant may consume
        per ``tenant_refill_seconds`` window; ``None`` disables tenant
        budgets.  Enforcement is post-paid: admission requires at least
        one whole token, and completed batches charge their actual
        ``BatchReport.scheduler_steps`` (floored at one), so one burst
        can overdraw and the tenant then waits out the debt (429 +
        ``Retry-After``).
    tenant_refill_seconds:
        Length of the budget window the bucket refills over.
    max_batch_queries:
        Upper bound on ``queries`` per ``POST /v1/batch`` call.
    max_mutation_ops:
        Upper bound on operations per ``POST /v1/mutate`` call.
    max_standing_queries:
        Registry capacity for ``POST /v1/standing``; registrations beyond
        it answer 429 until entries are deleted.
    drain_grace_seconds:
        How long :meth:`AsyncGateway.close` waits for in-flight requests
        before force-closing connections.
    max_header_bytes / max_body_bytes:
        HTTP framing limits, forwarded to ``http.read_request``.
    """

    host: str = "127.0.0.1"
    port: int = 0
    default_timeout_ms: Optional[int] = None
    coalesce: bool = True
    coalesce_grace_seconds: float = 0.5
    tenant_budget: Optional[int] = None
    tenant_refill_seconds: float = 1.0
    max_batch_queries: int = 1024
    max_mutation_ops: int = 1024
    max_standing_queries: int = 256
    drain_grace_seconds: float = 10.0
    max_header_bytes: int = DEFAULT_MAX_HEADER_BYTES
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES


class _TenantBucket:
    """Post-paid token bucket: admit on a whole token, charge actuals."""

    def __init__(self, capacity: float, refill_seconds: float):
        self._capacity = float(capacity)
        self._refill_per_second = float(capacity) / float(refill_seconds)
        self._tokens = float(capacity)
        self._updated = time.monotonic()

    def _refresh(self, now: float) -> None:
        self._tokens = min(
            self._capacity,
            self._tokens + (now - self._updated) * self._refill_per_second,
        )
        self._updated = now

    def retry_after(self) -> Optional[float]:
        """``None`` if the tenant may submit now, else seconds until it may.

        Admission requires one whole token, so a tenant that just drained
        (or overdrew) its budget cannot slip back in on the sliver the
        bucket refilled since the charge.
        """
        self._refresh(time.monotonic())
        if self._tokens >= 1.0:
            return None
        return (1.0 - self._tokens) / self._refill_per_second

    def charge(self, amount: float) -> None:
        """Deduct the actual cost of a completed batch (may overdraw)."""
        self._refresh(time.monotonic())
        self._tokens -= float(amount)


@dataclass
class _StandingQuery:
    """One registered standing query and its latest maintained result.

    ``payload`` is the canonical result JSON at ``epoch``; ``error`` is set
    instead when the last refresh failed (e.g. the document referenced a
    position that a delete removed) — the entry then re-evaluates on every
    subsequent mutation until it recovers or is deleted.
    """

    id: str
    document: dict
    kind: str
    epoch: int
    payload: Optional[bytes]
    error: Optional[str] = None


@dataclass(frozen=True)
class _TouchProfile:
    """What a mutation batch touched, captured *before* it applied.

    ``mbrs`` holds the new MBR of every insert and both the old and new
    MBR of every update — the conservative footprint a standing query must
    be checked against.  ``positions`` are the (post-batch) positions whose
    object content changed.  Only meaningful when ``has_delete`` is false:
    deletes shift positions, and the registry re-evaluates everything.
    """

    has_delete: bool
    inserts: int
    mbrs: tuple
    positions: frozenset


class _JsonError(Exception):
    """Internal control-flow carrier for an error response."""

    def __init__(self, status: int, message: str, headers: Optional[dict] = None):
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


class AsyncGateway:
    """The gateway proper: routes, coalescing, budgets, error mapping.

    Owns no event loop and no thread — construct it inside a running loop,
    ``await start()``, and ``await close()`` when done.  Tests and scripts
    that live outside asyncio should use :class:`GatewayServer`, which
    hosts one of these on a background loop thread.  The wrapped
    :class:`~repro.engine.QueryService` is borrowed, never closed: the
    caller that built the service decides its lifetime.
    """

    def __init__(
        self,
        service,
        config: Optional[GatewayConfig] = None,
        *,
        metrics: Optional[GatewayMetrics] = None,
    ):
        self.service = service
        self.config = config if config is not None else GatewayConfig()
        self.metrics = metrics if metrics is not None else GatewayMetrics()
        self._inflight: dict[bytes, asyncio.Future] = {}
        self._tenants: dict[str, _TenantBucket] = {}
        self._standing: dict[str, _StandingQuery] = {}
        self._standing_seq = 0
        # serialises mutations (and standing registrations, which must pin
        # an epoch across their initial evaluation) on the loop thread
        self._mutate_lock = asyncio.Lock()
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._active = 0
        self._idle: Optional[asyncio.Event] = None
        self._closing = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> tuple[str, int]:
        """Bind the listen socket and return the bound ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("gateway already started")
        # spawn every worker process before the first socket exists: a
        # fork-start worker spawned lazily mid-traffic would inherit the
        # accepted connection fds and keep them alive past client close
        self.service.warm()
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — meaningful after :meth:`start`."""
        if self._server is None:
            raise RuntimeError("gateway not started")
        return self._server.sockets[0].getsockname()[:2]

    async def close(self, *, drain: bool = True) -> None:
        """Stop accepting, optionally drain in-flight requests, disconnect.

        With ``drain=True`` (the default) every request already admitted
        is given up to ``drain_grace_seconds`` to complete and be written
        back before connections are force-closed — the graceful-shutdown
        contract ``tests/test_gateway.py`` exercises.
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain and self._idle is not None and self._active:
            try:
                await asyncio.wait_for(
                    self._idle.wait(), self.config.drain_grace_seconds
                )
            except asyncio.TimeoutError:
                pass
        for writer in list(self._writers):
            writer.close()

    # ------------------------------------------------------------------ #
    # connection loop
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.connection_opened()
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await read_request(
                        reader,
                        max_header_bytes=self.config.max_header_bytes,
                        max_body_bytes=self.config.max_body_bytes,
                    )
                except ProtocolError as error:
                    self.metrics.response_sent(error.status)
                    writer.write(
                        encode_response(
                            error.status,
                            canonical_json({"error": str(error)}),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                keep_alive = request.keep_alive and not self._closing
                status, body, extra = await self._dispatch(request)
                writer.write(
                    encode_response(status, body, headers=extra, keep_alive=keep_alive)
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self.metrics.connection_closed()

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    async def _dispatch(self, request: HttpRequest) -> tuple[int, bytes, dict]:
        if request.path == "/healthz":
            if request.method != "GET":
                return self._plain_error(405, "healthz only supports GET")
            return self._healthz()
        if request.path == "/metrics":
            if request.method != "GET":
                return self._plain_error(405, "metrics only supports GET")
            return self._metrics()
        if request.path in ("/v1/query", "/v1/batch"):
            if request.method != "POST":
                return self._plain_error(405, f"{request.path} only supports POST")
            return await self._guarded(request, self._query_handler)
        if request.path == "/v1/mutate":
            if request.method != "POST":
                return self._plain_error(405, "/v1/mutate only supports POST")
            return await self._guarded(request, self._mutate_handler)
        if request.path == "/v1/standing":
            if request.method == "POST":
                return await self._guarded(request, self._standing_register)
            if request.method == "GET":
                return await self._guarded(request, self._standing_list)
            return self._plain_error(405, "/v1/standing supports POST and GET")
        if request.path.startswith("/v1/standing/"):
            if request.method == "GET":
                return await self._guarded(request, self._standing_get)
            if request.method == "DELETE":
                return await self._guarded(request, self._standing_delete)
            return self._plain_error(
                405, "/v1/standing/<id> supports GET and DELETE"
            )
        return self._plain_error(404, f"no route for {request.path!r}")

    def _plain_error(self, status: int, message: str) -> tuple[int, bytes, dict]:
        self.metrics.response_sent(status)
        return status, canonical_json({"error": message}), {}

    def _healthz(self) -> tuple[int, bytes, dict]:
        closed = self.service.closed
        # operator signal for silent store fallback: workers that demoted
        # themselves to local memoisation in the most recent batch (the
        # service keeps serving correct results, just without the shared
        # cache — degraded, not down, so the status stays "ok")
        report = self.service.last_batch_report
        degraded = report.degraded_workers if report is not None else 0
        body = canonical_json(
            {
                "status": "closed" if closed else "ok",
                "workers": self.service.workers,
                "queue_depth": self.metrics.in_flight,
                "epoch": self.service.epoch,
                "degraded_workers": degraded,
                "degraded_store": bool(degraded),
            }
        )
        status = 503 if closed else 200
        self.metrics.response_sent(status)
        return status, body, {}

    def _metrics(self) -> tuple[int, bytes, dict]:
        body = canonical_json(
            {
                "gateway": self.metrics.snapshot(),
                "service": {
                    "closed": self.service.closed,
                    "workers": self.service.workers,
                    "epoch": self.service.epoch,
                    "pending_batches": self.service.pending_batches,
                    "pending_requests": self.service.pending_requests,
                    "worker_respawns": self.service.worker_respawns,
                },
                "store": self.service.bound_store_stats(),
                "standing_queries": len(self._standing),
            }
        )
        self.metrics.response_sent(200)
        return 200, body, {}

    # ------------------------------------------------------------------ #
    # the query path
    # ------------------------------------------------------------------ #
    async def _guarded(self, request: HttpRequest, handler) -> tuple[int, bytes, dict]:
        """Run one route handler under the shared metrics + error ladder.

        Every typed failure maps onto its status code (400 codec, 429
        overload, 503 closed, 504 deadline, 500 anything else) with a JSON
        error body, and the in-flight accounting that gates graceful drain
        brackets the handler regardless of outcome.
        """
        started = time.monotonic()
        self.metrics.request_started()
        self._active += 1
        if self._idle is not None:
            self._idle.clear()
        try:
            status, out, headers = await handler(request)
        except _JsonError as error:
            status = error.status
            out = canonical_json({"error": str(error)})
            headers = error.headers
        except CodecError as error:
            status, out, headers = 400, canonical_json({"error": str(error)}), {}
        except ServiceOverloadedError as error:
            status = 429
            out = canonical_json({"error": str(error)})
            headers = {"Retry-After": "1"}
        except (DeadlineExceeded, asyncio.TimeoutError) as error:
            status = 504
            message = str(error) or "deadline exceeded before the result was ready"
            out, headers = canonical_json({"error": message}), {}
        except ServiceClosedError as error:
            status, out, headers = 503, canonical_json({"error": str(error)}), {}
        except Exception as error:  # noqa: BLE001 - every response must be well-formed
            status = 500
            out = canonical_json({"error": f"{type(error).__name__}: {error}"})
            headers = {}
        finally:
            self._active -= 1
            if self._active == 0 and self._idle is not None:
                self._idle.set()
        self.metrics.request_finished(status, time.monotonic() - started)
        return status, out, headers

    async def _query_handler(self, request: HttpRequest) -> tuple[int, bytes, dict]:
        body = self._run_route_checks(request)
        if request.path == "/v1/query":
            payloads = await self._evaluate_documents(
                [self._strip_transport(body)], *self._transport_fields(body)
            )
            return 200, b'{"result":' + payloads[0] + b"}", {}
        queries = body.get("queries")
        if not isinstance(queries, list) or not queries:
            raise _JsonError(400, "batch body must have a non-empty 'queries' list")
        if len(queries) > self.config.max_batch_queries:
            raise _JsonError(
                413,
                f"batch of {len(queries)} queries exceeds the "
                f"{self.config.max_batch_queries} limit",
            )
        payloads = await self._evaluate_documents(
            queries, *self._transport_fields(body)
        )
        return 200, b'{"results":[' + b",".join(payloads) + b"]}", {}

    def _run_route_checks(self, request: HttpRequest) -> dict:
        try:
            body = json.loads(request.body)
        except (ValueError, UnicodeDecodeError) as error:
            raise _JsonError(400, f"body is not valid JSON: {error}") from error
        if not isinstance(body, dict):
            raise _JsonError(400, "body must be a JSON object")
        return body

    @staticmethod
    def _strip_transport(document: dict) -> dict:
        return {
            key: value
            for key, value in document.items()
            if key not in ("timeout_ms", "tenant")
        }

    def _transport_fields(self, document: dict) -> tuple[Optional[int], Optional[str]]:
        timeout_ms = document.get("timeout_ms", self.config.default_timeout_ms)
        if timeout_ms is not None:
            if (
                isinstance(timeout_ms, bool)
                or not isinstance(timeout_ms, int)
                or timeout_ms <= 0
            ):
                raise _JsonError(
                    400, f"timeout_ms must be a positive integer, got {timeout_ms!r}"
                )
        tenant = document.get("tenant")
        if tenant is not None and not isinstance(tenant, str):
            raise _JsonError(400, f"tenant must be a string, got {tenant!r}")
        return timeout_ms, tenant

    def _admit_tenant(self, tenant: Optional[str]) -> Optional[_TenantBucket]:
        if tenant is None or self.config.tenant_budget is None:
            return None
        bucket = self._tenants.get(tenant)
        if bucket is None:
            bucket = _TenantBucket(
                self.config.tenant_budget, self.config.tenant_refill_seconds
            )
            self._tenants[tenant] = bucket
        retry_after = bucket.retry_after()
        if retry_after is not None:
            self.metrics.tenant_rejected()
            raise _JsonError(
                429,
                f"tenant {tenant!r} is out of iteration budget",
                headers={"Retry-After": str(max(1, math.ceil(retry_after)))},
            )
        return bucket

    async def _evaluate_documents(
        self, documents: list, timeout_ms: Optional[int], tenant: Optional[str]
    ) -> list[bytes]:
        """Decode, admit, coalesce, submit and await a list of query docs.

        Returns one canonical-JSON payload per document, in order.  All
        error mapping happens in the caller — this method raises the
        typed errors themselves.
        """
        loop = asyncio.get_running_loop()
        database = self.service.engine.database
        decoded = [decode_query(document, database) for document in documents]
        bucket = self._admit_tenant(tenant)
        if self._closing:
            raise ServiceClosedError("gateway is shutting down")
        timeout_seconds = None if timeout_ms is None else timeout_ms / 1000.0
        deadline_epoch = (
            None if timeout_seconds is None else time.time() + timeout_seconds
        )

        futures: list[asyncio.Future] = []
        fresh: list[tuple[object, asyncio.Future]] = []
        for query in decoded:
            key = request_key(database, query) if self.config.coalesce else None
            shared = self._inflight.get(key) if key is not None else None
            if shared is not None:
                self.metrics.coalesce_hit()
                futures.append(shared)
                continue
            future = loop.create_future()
            if key is not None:
                self._inflight[key] = future
                future.add_done_callback(
                    lambda done, key=key: (
                        self._inflight.pop(key)
                        if self._inflight.get(key) is done
                        else None
                    )
                )
            futures.append(future)
            fresh.append((query, future))

        if fresh:
            # No await between the map insertions above and this submit:
            # nobody else can be waiting on the fresh futures yet, so a
            # failed submit may simply cancel them (dropping the map keys
            # via the done callbacks) and surface the error once, here.
            try:
                batch = self.service.submit(
                    [query for query, _ in fresh], deadline_epoch=deadline_epoch
                )
            except ValueError as error:
                for _, future in fresh:
                    future.cancel()
                if deadline_epoch is not None and deadline_epoch <= time.time():
                    raise DeadlineExceeded(
                        f"deadline of {timeout_ms} ms expired before submission"
                    ) from error
                raise
            except ServiceError:
                for _, future in fresh:
                    future.cancel()
                raise
            fresh_futures = [future for _, future in fresh]
            batch.add_done_callback(
                lambda done_batch: self._on_batch_done(
                    loop, done_batch, fresh_futures, bucket
                )
            )

        wait_budget = (
            None
            if timeout_seconds is None
            else timeout_seconds + self.config.coalesce_grace_seconds
        )
        payloads = []
        for future in futures:
            # shield: a follower timing out must not cancel the shared
            # evaluation other requests (and the leader) still await
            payloads.append(
                await asyncio.wait_for(asyncio.shield(future), wait_budget)
            )
        return payloads

    def _on_batch_done(self, loop, batch, futures, bucket) -> None:
        # runs on the service dispatcher thread — marshal onto the loop
        try:
            loop.call_soon_threadsafe(self._resolve_batch, batch, futures, bucket)
        except RuntimeError:
            pass  # loop already closed; the waiters are gone with it

    def _resolve_batch(self, batch, futures, bucket) -> None:
        """Fan one resolved batch out to its per-request futures (loop thread).

        Must never leave a future pending: any failure while accounting or
        encoding becomes the futures' exception, so waiters always wake.
        """
        try:
            error = batch.exception()
            if error is None:
                results = batch.result()
                report = batch.report()
                self.metrics.record_report(report)
                if bucket is not None:
                    # a fully-pruned batch reports zero scheduler steps but
                    # still consumed admission: floor the charge at one token
                    bucket.charge(max(1, report.scheduler_steps))
                payloads = [canonical_json(encode_result(r)) for r in results]
        except Exception as failure:  # noqa: BLE001 - routed to the waiters
            error = failure
        if error is not None:
            for future in futures:
                if not future.done():
                    future.set_exception(error)
                    # mark retrieved now: a follower that already timed out
                    # will never await this future, and the error reaches
                    # every live waiter regardless
                    future.exception()
            return
        for future, payload in zip(futures, payloads):
            if not future.done():
                future.set_result(payload)

    # ------------------------------------------------------------------ #
    # the mutation path and the standing-query registry
    # ------------------------------------------------------------------ #
    async def _mutate_handler(self, request: HttpRequest) -> tuple[int, bytes, dict]:
        body = self._run_route_checks(request)
        ops = body.get("mutations")
        if not isinstance(ops, list) or not ops:
            raise _JsonError(400, "mutate body must have a non-empty 'mutations' list")
        if len(ops) > self.config.max_mutation_ops:
            raise _JsonError(
                413,
                f"batch of {len(ops)} operations exceeds the "
                f"{self.config.max_mutation_ops} limit",
            )
        async with self._mutate_lock:
            if self._closing:
                raise ServiceClosedError("gateway is shutting down")
            database = self.service.engine.database
            mutations = decode_mutations(ops, database)
            profile = self._touch_profile(database, mutations)
            try:
                epoch = await self._apply_service_mutations(mutations)
            except ValueError as error:
                raise _JsonError(400, f"mutation rejected: {error}") from error
            summary = await self._refresh_standing(profile)
        out = canonical_json(
            {
                "applied": len(mutations),
                "epoch": epoch,
                "size": len(self.service.engine.database),
                "standing": summary,
            }
        )
        return 200, out, {}

    async def _apply_service_mutations(self, mutations) -> int:
        """Await the service's mutation barrier from the event loop."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        ticket = self.service.submit_mutations(mutations)

        def _marshal(done_ticket) -> None:
            # runs on the service dispatcher thread — marshal onto the loop
            try:
                loop.call_soon_threadsafe(self._resolve_ticket, future, done_ticket)
            except RuntimeError:
                pass  # loop already closed; the waiter is gone with it

        ticket.add_done_callback(_marshal)
        return await future

    @staticmethod
    def _resolve_ticket(future, ticket) -> None:
        if future.done():  # pragma: no cover - loop shutdown race
            return
        error = ticket.exception()
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(ticket.result())

    @staticmethod
    def _touch_profile(database, mutations) -> _TouchProfile:
        """Conservative footprint of a batch against the pre-apply snapshot."""
        from ..uncertain import Delete, Insert, Update

        has_delete = False
        inserts = 0
        mbrs: list = []
        positions: set[int] = set()
        appended: list = []  # MBRs of objects this batch inserted, by order
        latest: dict[int, object] = {}  # position -> MBR after earlier ops
        base = len(database)
        for mutation in mutations:
            if isinstance(mutation, Delete):
                has_delete = True
            elif isinstance(mutation, Insert):
                inserts += 1
                mbrs.append(mutation.obj.mbr)
                appended.append(mutation.obj.mbr)
            elif isinstance(mutation, Update):
                position = mutation.position
                old = latest.get(position)
                if old is None:
                    old = (
                        database[position].mbr
                        if position < base
                        else appended[position - base]
                    )
                mbrs.append(old)
                mbrs.append(mutation.obj.mbr)
                latest[position] = mutation.obj.mbr
                positions.add(position)
        return _TouchProfile(
            has_delete=has_delete,
            inserts=inserts,
            mbrs=tuple(mbrs),
            positions=frozenset(positions),
        )

    async def _refresh_standing(self, profile: _TouchProfile) -> dict:
        """Bring every standing query to the new epoch, skipping what it can.

        The skip/patch fast paths exist only for range queries, whose
        per-object membership is independent of the rest of the database: a
        touched MBR strictly farther than ``epsilon`` from the query cannot
        change any per-object probability, so an insert there merely
        increments the stored ``pruned`` count and an update changes
        nothing.  Rank-based kinds (knn, ranking) re-evaluate on every
        mutation, and any delete re-evaluates everything — positions in
        both the registry's documents and its stored results shift.
        """
        summary = {"reevaluated": 0, "patched": 0, "skipped": 0, "errors": 0}
        if not self._standing:
            return summary
        database = self.service.engine.database
        pending = []
        for standing in self._standing.values():
            decision = self._standing_decision(standing, database, profile)
            if decision == "reevaluate":
                pending.append(standing)
            elif decision == "patch":
                document = json.loads(standing.payload)
                document["pruned"] += profile.inserts
                standing.payload = canonical_json(document)
                standing.epoch = database.epoch
                summary["patched"] += 1
            else:
                standing.epoch = database.epoch
                summary["skipped"] += 1
        outcomes = await asyncio.gather(
            *(self._reevaluate_standing(standing) for standing in pending)
        )
        for recovered in outcomes:
            summary["reevaluated" if recovered else "errors"] += 1
        return summary

    def _standing_decision(
        self, standing: _StandingQuery, database, profile: _TouchProfile
    ) -> str:
        if (
            profile.has_delete
            or standing.kind != "range"
            or standing.error is not None
        ):
            return "reevaluate"
        try:
            decoded = decode_query(standing.document, database)
        except CodecError:
            return "reevaluate"  # surfaces as this entry's error state
        spec = decoded.query
        if isinstance(spec, int):
            if spec in profile.positions:
                return "reevaluate"  # the query object itself changed
            query_mbr = database[spec].mbr
        else:
            query_mbr = spec.mbr
        p = self.service.engine.p
        if any(
            min_dist(touched, query_mbr, p) <= decoded.epsilon
            for touched in profile.mbrs
        ):
            return "reevaluate"
        return "patch" if profile.inserts else "skip"

    async def _reevaluate_standing(self, standing: _StandingQuery) -> bool:
        try:
            payloads = await self._evaluate_documents([standing.document], None, None)
        except Exception as error:  # noqa: BLE001 - stored, not propagated
            standing.payload = None
            standing.error = f"{type(error).__name__}: {error}"
            standing.epoch = self.service.epoch
            return False
        standing.payload = payloads[0]
        standing.error = None
        standing.epoch = self.service.epoch
        return True

    @staticmethod
    def _standing_body(standing: _StandingQuery) -> bytes:
        if standing.payload is None:
            return canonical_json(
                {
                    "epoch": standing.epoch,
                    "error": standing.error,
                    "id": standing.id,
                    "kind": standing.kind,
                }
            )
        return (
            b'{"epoch":%d,"id":%s,"kind":%s,"result":%s}'
            % (
                standing.epoch,
                canonical_json(standing.id),
                canonical_json(standing.kind),
                standing.payload,
            )
        )

    async def _standing_register(self, request: HttpRequest) -> tuple[int, bytes, dict]:
        body = self._run_route_checks(request)
        document = body.get("query")
        if not isinstance(document, dict):
            raise _JsonError(400, "standing body must have a 'query' object")
        timeout_ms, tenant = self._transport_fields(body)
        stripped = self._strip_transport(document)
        kind = stripped.get("type")
        if kind not in STANDING_KINDS:
            raise _JsonError(
                400,
                f"standing queries support types {STANDING_KINDS}, got {kind!r}",
            )
        if len(self._standing) >= self.config.max_standing_queries:
            raise _JsonError(
                429,
                f"standing-query registry is full "
                f"({self.config.max_standing_queries} entries)",
                headers={"Retry-After": "1"},
            )
        async with self._mutate_lock:
            # the lock pins the epoch across the initial evaluation: no
            # mutation can land between evaluating and recording it
            payloads = await self._evaluate_documents([stripped], timeout_ms, tenant)
            self._standing_seq += 1
            standing = _StandingQuery(
                id=f"sq-{self._standing_seq}",
                document=stripped,
                kind=kind,
                epoch=self.service.epoch,
                payload=payloads[0],
            )
            self._standing[standing.id] = standing
        return 200, self._standing_body(standing), {}

    async def _standing_list(self, request: HttpRequest) -> tuple[int, bytes, dict]:
        entries = [
            {"epoch": s.epoch, "id": s.id, "kind": s.kind, "error": s.error}
            for s in self._standing.values()
        ]
        return 200, canonical_json({"epoch": self.service.epoch, "standing": entries}), {}

    def _standing_id(self, request: HttpRequest) -> _StandingQuery:
        standing_id = request.path[len("/v1/standing/"):]
        standing = self._standing.get(standing_id)
        if standing is None:
            raise _JsonError(404, f"no standing query {standing_id!r}")
        return standing

    async def _standing_get(self, request: HttpRequest) -> tuple[int, bytes, dict]:
        return 200, self._standing_body(self._standing_id(request)), {}

    async def _standing_delete(self, request: HttpRequest) -> tuple[int, bytes, dict]:
        standing = self._standing_id(request)
        del self._standing[standing.id]
        return 200, canonical_json({"id": standing.id, "removed": True}), {}


class GatewayServer:
    """Synchronous host for :class:`AsyncGateway`: loop on a daemon thread.

    The entry point for tests, scripts and the quickstart: construct with
    a running :class:`~repro.engine.QueryService`, read :attr:`url`, make
    plain blocking HTTP calls from any thread, and :meth:`close` (or exit
    the ``with`` block) to drain and stop.  The service itself is left
    open — close it separately.
    """

    def __init__(self, service, config: Optional[GatewayConfig] = None):
        self.gateway = AsyncGateway(service, config)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-gateway", daemon=True
        )
        self._thread.start()
        self._closed = False
        try:
            self._address = asyncio.run_coroutine_threadsafe(
                self.gateway.start(), self._loop
            ).result(timeout=30)
        except BaseException:
            self._stop_loop()
            raise

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        return self._address

    @property
    def url(self) -> str:
        """Base URL of the gateway, e.g. ``http://127.0.0.1:43621``."""
        host, port = self._address
        return f"http://{host}:{port}"

    def metrics(self) -> dict:
        """A point-in-time snapshot of the gateway metrics (thread-safe)."""
        return self.gateway.metrics.snapshot()

    def close(self, *, drain: bool = True) -> None:
        """Drain (by default) and stop the gateway and its loop thread."""
        if self._closed:
            return
        self._closed = True
        try:
            asyncio.run_coroutine_threadsafe(
                self.gateway.close(drain=drain), self._loop
            ).result(timeout=self.gateway.config.drain_grace_seconds + 30)
        finally:
            self._stop_loop()

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        if not self._thread.is_alive():
            self._loop.close()

    def __enter__(self) -> "GatewayServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
