"""Asyncio HTTP gateway over :class:`~repro.engine.QueryService`.

The network tier of the service stack (see ``docs/architecture.md`` ·
*Network tier*): a stdlib-only HTTP/1.1 server exposing the five query
types as JSON over ``POST /v1/query`` / ``POST /v1/batch``, with typed
service errors mapped onto status codes, client deadlines propagated into
service deadlines, in-flight request coalescing on stable request keys,
per-tenant iteration budgets, and ``GET /metrics`` / ``GET /healthz``.
``POST /v1/mutate`` applies a mutation batch through the service's
snapshot barrier, and the ``/v1/standing`` routes maintain registered
queries incrementally across epochs (see ``gateway/server.py``).

Entry points:

* :class:`GatewayServer` — synchronous host (background loop thread);
  the right choice for scripts, tests and the README quickstart.
* :class:`AsyncGateway` — the gateway itself, for callers that already
  run an event loop.
* ``python -m repro.gateway`` — demo server over a synthetic database.
"""

from .codec import (
    CodecError,
    canonical_json,
    decode_mutations,
    decode_query,
    encode_result,
    request_key,
)
from .http import HttpRequest, ProtocolError, encode_response, read_request
from .metrics import GatewayMetrics, LatencyHistogram
from .server import AsyncGateway, GatewayConfig, GatewayServer

__all__ = [
    "AsyncGateway",
    "CodecError",
    "GatewayConfig",
    "GatewayMetrics",
    "GatewayServer",
    "HttpRequest",
    "LatencyHistogram",
    "ProtocolError",
    "canonical_json",
    "decode_mutations",
    "decode_query",
    "encode_response",
    "encode_result",
    "read_request",
    "request_key",
]
