"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

The gateway deliberately does not depend on an HTTP framework: the service
north star is "no new runtime dependencies", and the subset of HTTP/1.1 the
gateway speaks is small enough to implement directly — request-line +
headers + ``Content-Length`` bodies in, fixed-length responses out, with
keep-alive connection reuse.  What is *not* implemented is rejected
explicitly rather than mis-parsed: chunked transfer encoding, multiline
(obs-fold) headers and over-limit headers/bodies all raise
:class:`ProtocolError` carrying the right status code, which the server
turns into a well-formed error response before closing the connection.

The module is transport-only.  It knows nothing about routes, JSON or the
query service — that separation keeps it reusable by the load generator's
client (``repro/testing/load.py``), which implements the mirror image
(requests out, responses in) over the same framing rules.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Mapping, Optional

__all__ = [
    "HttpRequest",
    "ProtocolError",
    "REASON_PHRASES",
    "encode_response",
    "read_request",
]

#: Reason phrases for every status the gateway emits.
REASON_PHRASES = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Default cap on the request head (request line + headers).
DEFAULT_MAX_HEADER_BYTES = 16 * 1024

#: Default cap on request bodies (a batch of a few thousand queries fits).
DEFAULT_MAX_BODY_BYTES = 4 * 1024 * 1024


class ProtocolError(ValueError):
    """Bytes on the wire that do not parse as the supported HTTP subset.

    ``status`` is the HTTP status the server should answer with before
    closing the connection (400 for malformed framing, 413/431 for
    over-limit bodies/headers, 405 for unsupported methods on a route).
    """

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request: line, lower-cased headers, raw body bytes."""

    method: str
    target: str
    path: str
    version: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """Whether the connection should stay open after the response.

        HTTP/1.1 defaults to keep-alive unless ``Connection: close``;
        HTTP/1.0 requires an explicit ``Connection: keep-alive``.
        """
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return "keep-alive" in connection
        return "close" not in connection


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_header_bytes: int = DEFAULT_MAX_HEADER_BYTES,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> Optional[HttpRequest]:
    """Read one request off ``reader``; ``None`` on clean EOF between requests.

    A connection closed *mid*-request, over-limit heads/bodies and framing
    the parser does not support raise :class:`ProtocolError` with the
    status the caller should respond with.
    """
    head = bytearray()
    blank_prefix = 0
    while True:
        try:
            line = await reader.readuntil(b"\n")
        except asyncio.IncompleteReadError as error:
            if not error.partial and not head:
                return None  # clean EOF between requests
            raise ProtocolError("connection closed mid-request") from error
        except asyncio.LimitOverrunError as error:
            raise ProtocolError("header line too long", status=431) from error
        head += line
        if len(head) > max_header_bytes:
            raise ProtocolError("request head too large", status=431)
        if line in (b"\r\n", b"\n"):
            if head == line and blank_prefix < 4:
                blank_prefix += 1
                head.clear()  # tolerate leading blank lines (RFC 9112 §2.2)
                continue
            break
    lines = head.decode("latin-1").split("\r\n")
    if len(lines) == 1:  # tolerate bare-\n framing
        lines = head.decode("latin-1").split("\n")
    request_line = lines[0].strip()
    parts = request_line.split(" ")
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line: {request_line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise ProtocolError(f"unsupported HTTP version: {version!r}")
    headers: dict[str, str] = {}
    for raw in lines[1:]:
        if not raw.strip():
            continue
        if raw[0] in " \t":
            raise ProtocolError("obsolete header line folding is not supported")
        name, separator, value = raw.partition(":")
        if not separator or not name.strip():
            raise ProtocolError(f"malformed header line: {raw!r}")
        headers[name.strip().lower()] = value.strip()
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError("chunked transfer encoding is not supported")
    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError:
            raise ProtocolError(f"malformed Content-Length: {length_header!r}")
        if length < 0:
            raise ProtocolError(f"negative Content-Length: {length}")
        if length > max_body_bytes:
            raise ProtocolError(
                f"body of {length} bytes exceeds the {max_body_bytes} limit",
                status=413,
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as error:
                raise ProtocolError("connection closed mid-body") from error
    path = target.split("?", 1)[0]
    return HttpRequest(
        method=method,
        target=target,
        path=path,
        version=version,
        headers=headers,
        body=body,
    )


def encode_response(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    headers: Optional[Mapping[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialise one fixed-length HTTP/1.1 response.

    ``headers`` adds extra fields (e.g. ``Retry-After``); ``keep_alive``
    controls the ``Connection`` header the peer uses to decide on reuse.
    """
    reason = REASON_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body
