"""repro — reproduction of "A Novel Probabilistic Pruning Approach to Speed Up
Similarity Queries in Uncertain Databases" (Bernecker et al., ICDE 2011).

The package implements the paper's IDCA algorithm (Iterative Domination Count
Approximation) together with every substrate it relies on: a continuous and
discrete uncertainty model, kd-tree decomposition of uncertainty regions, the
optimal spatial-domination criterion, uncertain generating functions, a
Monte-Carlo comparison partner, dataset generators and the probabilistic
query types of Section VI (threshold kNN, reverse kNN, inverse ranking and
expected-rank ranking).

Quickstart
----------
>>> from repro import (
...     uniform_rectangle_database, random_reference_object, IDCA, MaxIterations,
... )
>>> database = uniform_rectangle_database(500, max_extent=0.01, seed=7)
>>> query = random_reference_object(extent=0.01, seed=11)
>>> idca = IDCA(database)
>>> result = idca.domination_count(0, query, stop=MaxIterations(4))
>>> 0.0 <= result.bounds.uncertainty()
True
"""

from .core import (
    IDCA,
    AnyOf,
    DominationCountBounds,
    IDCAResult,
    IterationStats,
    MaxIterations,
    NeverStop,
    StopCriterion,
    ThresholdDecision,
    UncertainGeneratingFunction,
    UncertaintyBelow,
    complete_domination_filter,
    domination_count_bounds,
    domination_count_bounds_batch,
    pdom_bounds,
    pdom_bounds_batch,
    poisson_binomial_pmf,
    probabilistic_domination_bounds,
    regular_gf_bounds,
)
from .geometry import (
    Interval,
    Rectangle,
    dominates,
    dominates_minmax,
    dominates_optimal,
    lp_distance,
    max_dist,
    min_dist,
)
from .uncertain import (
    BoxUniformObject,
    DecompositionTree,
    Delete,
    DiscreteObject,
    HistogramObject,
    Insert,
    MixtureObject,
    Partition,
    PointObject,
    TruncatedGaussianObject,
    UncertainDatabase,
    UncertainObject,
    Update,
    discretise_database,
    sample_database,
)
from .queries import (
    ProbabilisticMatch,
    RankDistribution,
    RankedObject,
    RankingResult,
    ThresholdQueryResult,
    expected_rank_ranking,
    probabilistic_inverse_ranking,
    probabilistic_knn_threshold,
    probabilistic_range_query,
    probabilistic_rknn_threshold,
    probability_within_range,
)
from .baselines import (
    MonteCarloDominationCount,
    compare_pruning_power,
    exact_domination_count_pmf,
    exact_pdom,
    expected_distance_knn,
    monte_carlo_pdom,
)
from .datasets import (
    IIPSimulationConfig,
    generate_query_workload,
    iip_iceberg_database,
    random_reference_object,
    target_by_mindist_rank,
    uniform_rectangle_database,
)
from .index import RTree
from .engine import (
    BatchReport,
    DominationCountQuery,
    ExecutorConfig,
    InverseRankingQuery,
    KNNQuery,
    MutationTicket,
    QueryEngine,
    QueryService,
    RangeQuery,
    RankingQuery,
    RefinementContext,
    RefinementScheduler,
    RKNNQuery,
    ServiceBatch,
)

__version__ = "1.9.0"

__all__ = [
    # core
    "IDCA",
    "IDCAResult",
    "IterationStats",
    "DominationCountBounds",
    "UncertainGeneratingFunction",
    "poisson_binomial_pmf",
    "regular_gf_bounds",
    "domination_count_bounds",
    "domination_count_bounds_batch",
    "complete_domination_filter",
    "pdom_bounds",
    "pdom_bounds_batch",
    "probabilistic_domination_bounds",
    "StopCriterion",
    "NeverStop",
    "MaxIterations",
    "UncertaintyBelow",
    "ThresholdDecision",
    "AnyOf",
    # geometry
    "Interval",
    "Rectangle",
    "lp_distance",
    "min_dist",
    "max_dist",
    "dominates",
    "dominates_optimal",
    "dominates_minmax",
    # uncertainty model
    "UncertainObject",
    "UncertainDatabase",
    "BoxUniformObject",
    "TruncatedGaussianObject",
    "MixtureObject",
    "DiscreteObject",
    "PointObject",
    "HistogramObject",
    "DecompositionTree",
    "Partition",
    "Insert",
    "Update",
    "Delete",
    "discretise_database",
    "sample_database",
    # queries
    "probabilistic_knn_threshold",
    "probabilistic_rknn_threshold",
    "probabilistic_inverse_ranking",
    "probabilistic_range_query",
    "probability_within_range",
    "expected_rank_ranking",
    "ProbabilisticMatch",
    "ThresholdQueryResult",
    "RankDistribution",
    "RankedObject",
    "RankingResult",
    # baselines
    "MonteCarloDominationCount",
    "monte_carlo_pdom",
    "exact_domination_count_pmf",
    "exact_pdom",
    "expected_distance_knn",
    "compare_pruning_power",
    # datasets
    "uniform_rectangle_database",
    "iip_iceberg_database",
    "IIPSimulationConfig",
    "generate_query_workload",
    "random_reference_object",
    "target_by_mindist_rank",
    # index
    "RTree",
    # engine
    "BatchReport",
    "ExecutorConfig",
    "QueryEngine",
    "QueryService",
    "ServiceBatch",
    "MutationTicket",
    "RefinementContext",
    "RefinementScheduler",
    "KNNQuery",
    "RKNNQuery",
    "RangeQuery",
    "RankingQuery",
    "InverseRankingQuery",
    "DominationCountQuery",
]
