"""Probabilistic domination count (Section IV of the paper).

The *domination count* ``DomCount(B, R)`` of an object ``B`` w.r.t. a
reference object ``R`` is the random variable counting how many database
objects are closer to ``R`` than ``B``.  This module turns per-object
domination-probability bounds into bounds on the PMF and CDF of
``DomCount(B, R)`` using the uncertain generating function, and aggregates the
per-partition-pair results of the disjunctive-world refinement
(Section IV-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .generating_functions import UncertainGeneratingFunction, ugf_pmf_bounds_batch

__all__ = [
    "DominationCountBounds",
    "domination_count_bounds",
    "domination_count_bounds_batch",
    "combine_weighted_bounds",
    "combine_weighted_bounds_arrays",
]


@dataclass(frozen=True)
class DominationCountBounds:
    """Lower/upper bounds of the PMF of a domination count.

    Attributes
    ----------
    lower, upper:
        Arrays of identical length; ``lower[k] <= P(DomCount = k) <= upper[k]``
        for every representable count ``k``.  When a truncation bound
        ``k_cap`` was used, only entries ``k <= k_cap`` are meaningful (the
        arrays are still full-length, with trivial ``[0, 1]`` bounds beyond
        the cap).
    k_cap:
        The truncation bound used during construction, if any.
    """

    lower: np.ndarray
    upper: np.ndarray
    k_cap: Optional[int] = None

    def __post_init__(self) -> None:
        lower = np.asarray(self.lower, dtype=float)
        upper = np.asarray(self.upper, dtype=float)
        if lower.shape != upper.shape or lower.ndim != 1:
            raise ValueError("lower and upper must be 1-D arrays of equal length")
        if np.any(lower > upper + 1e-9):
            raise ValueError("lower bounds must not exceed upper bounds")
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.lower.shape[0])

    @property
    def max_count(self) -> int:
        """Largest representable domination count."""
        return len(self) - 1

    def _valid_k(self, k: int) -> None:
        if k < 0:
            raise ValueError("k must be non-negative")
        if self.k_cap is not None and k > self.k_cap:
            raise ValueError(f"count {k} exceeds the truncation bound k_cap={self.k_cap}")

    def pmf_bounds(self, k: int) -> tuple[float, float]:
        """Bounds of ``P(DomCount = k)``."""
        self._valid_k(k)
        if k >= len(self):
            return 0.0, 0.0
        return float(self.lower[k]), float(self.upper[k])

    def cdf_bounds(self, k: int) -> tuple[float, float]:
        """Bounds of ``P(DomCount <= k)``.

        The bounds are derived from the PMF bounds while respecting that the
        true PMF sums to 1: the lower CDF bound is the larger of the summed
        lower bounds and ``1 -`` the upper mass above ``k`` (and dually for
        the upper bound).
        """
        self._valid_k(k)
        if k >= len(self) - 1:
            return 1.0, 1.0
        lower_sum = float(self.lower[: k + 1].sum())
        upper_sum = float(self.upper[: k + 1].sum())
        lower_tail = float(self.lower[k + 1 :].sum())
        upper_tail = float(self.upper[k + 1 :].sum())
        lower = max(lower_sum, 1.0 - upper_tail)
        upper = min(upper_sum, 1.0 - lower_tail)
        lower = min(max(lower, 0.0), 1.0)
        upper = min(max(upper, lower), 1.0)
        return lower, upper

    def less_than(self, k: int) -> tuple[float, float]:
        """Bounds of ``P(DomCount < k)`` — the kNN predicate of Corollary 4."""
        if k <= 0:
            return 0.0, 0.0
        return self.cdf_bounds(k - 1)

    def uncertainty(self) -> float:
        """Total bound width ``sum_k (upper[k] - lower[k])``.

        This is the "accumulated uncertainty" quality measure the paper plots
        in Figures 6(b) and 7.
        """
        return float(np.sum(self.upper - self.lower))

    def expected_count_bounds(self) -> tuple[float, float]:
        """Bounds of ``E[DomCount]`` via the tail-sum formula.

        ``E[X] = sum_{k >= 1} P(X >= k)`` with ``P(X >= k)`` bracketed by the
        complementary CDF bounds.  Only available without truncation.
        """
        if self.k_cap is not None:
            raise ValueError("expected-count bounds require an untruncated result")
        lower_total = 0.0
        upper_total = 0.0
        for k in range(1, len(self)):
            cdf_lower, cdf_upper = self.cdf_bounds(k - 1)
            lower_total += 1.0 - cdf_upper
            upper_total += 1.0 - cdf_lower
        return lower_total, upper_total

    def is_exact(self, tolerance: float = 1e-9) -> bool:
        """True when the bounds have converged to a single PMF."""
        return bool(np.all(self.upper - self.lower <= tolerance))

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def vacuous(length: int, k_cap: Optional[int] = None) -> "DominationCountBounds":
        """The trivial bounds ``[0, 1]`` for every count."""
        if length <= 0:
            raise ValueError("length must be positive")
        return DominationCountBounds(
            lower=np.zeros(length), upper=np.ones(length), k_cap=k_cap
        )

    @staticmethod
    def exact(pmf: Sequence[float]) -> "DominationCountBounds":
        """Bounds that coincide with a known exact PMF."""
        arr = np.asarray(pmf, dtype=float)
        return DominationCountBounds(lower=arr.copy(), upper=arr.copy())


def domination_count_bounds(
    lower_probs: Sequence[float],
    upper_probs: Sequence[float],
    complete_count: int = 0,
    total_objects: Optional[int] = None,
    k_cap: Optional[int] = None,
) -> DominationCountBounds:
    """Build domination-count bounds from per-object domination bounds.

    Parameters
    ----------
    lower_probs, upper_probs:
        Bounds ``PDomLB(A_i, B, R)`` / ``PDomUB(A_i, B, R)`` for the influence
        objects (Lemma 3 guarantees their mutual independence, which the UGF
        requires).
    complete_count:
        Number of objects that completely dominate the target; the resulting
        PMF bounds are shifted right by this amount (the ``ShiftRight`` step
        of Algorithm 1).
    total_objects:
        Length of the output arrays minus one (defaults to
        ``complete_count + len(lower_probs)``); pass the database size to get
        bounds over the full count range.
    k_cap:
        Optional truncation bound *on the final (shifted) count* for kNN-style
        predicates.  Counts above the cap get trivial ``[0, 1]`` bounds.
    """
    lower_arr = np.atleast_1d(np.asarray(lower_probs, dtype=float))
    upper_arr = np.atleast_1d(np.asarray(upper_probs, dtype=float))
    if lower_arr.shape != upper_arr.shape:
        raise ValueError("lower_probs and upper_probs must have the same length")
    if complete_count < 0:
        raise ValueError("complete_count must be non-negative")

    num_influence = lower_arr.shape[0]
    if total_objects is None:
        total_objects = complete_count + num_influence
    if total_objects < complete_count + num_influence:
        raise ValueError("total_objects too small for the given counts")
    length = total_objects + 1

    # effective truncation for the *unshifted* UGF
    ugf_cap: Optional[int] = None
    if k_cap is not None:
        if k_cap < complete_count:
            # every representable count below the cap is impossible anyway
            ugf_cap = 0
        else:
            ugf_cap = min(num_influence, k_cap - complete_count)

    ugf = UncertainGeneratingFunction(lower_arr, upper_arr, k_cap=ugf_cap)
    pmf_lower, pmf_upper = ugf.pmf_bounds()

    lower = np.zeros(length)
    upper = np.ones(length)
    # counts below the complete-domination count are impossible
    upper[:complete_count] = 0.0
    # counts above complete_count + num_influence are impossible as well
    upper[complete_count + num_influence + 1 :] = 0.0

    top = pmf_lower.shape[0]
    lower[complete_count : complete_count + top] = pmf_lower
    upper[complete_count : complete_count + top] = pmf_upper
    if k_cap is not None:
        # beyond the cap the bounds are intentionally vacuous
        lower[k_cap + 1 :] = 0.0
        upper[k_cap + 1 :] = np.where(
            np.arange(k_cap + 1, length) <= complete_count + num_influence, 1.0, 0.0
        )
    return DominationCountBounds(lower=lower, upper=upper, k_cap=k_cap)


def domination_count_bounds_batch(
    lower_probs: np.ndarray,
    upper_probs: np.ndarray,
    complete_count: int = 0,
    total_objects: Optional[int] = None,
    k_cap: Optional[int] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched :func:`domination_count_bounds` over many partition pairs.

    ``lower_probs`` / ``upper_probs`` are ``(num_pairs, num_influence)``
    matrices — one row of per-object domination bounds per partition pair, as
    produced by the batched pair-bounds kernel.  The UGF expansion, the
    ``ShiftRight`` by ``complete_count`` and the ``k_cap`` truncation are all
    applied across the whole batch in one vectorised pass; row ``i`` of the
    returned ``(num_pairs, total_objects + 1)`` arrays is bit-identical to
    ``domination_count_bounds(lower_probs[i], upper_probs[i], ...)``.

    Unlike the scalar constructor this returns raw PMF-bound arrays (no
    per-row :class:`DominationCountBounds` instances); pass them to
    :func:`combine_weighted_bounds_arrays` to aggregate the pairs.
    """
    lower_arr = np.atleast_2d(np.asarray(lower_probs, dtype=float))
    upper_arr = np.atleast_2d(np.asarray(upper_probs, dtype=float))
    if lower_arr.shape != upper_arr.shape or lower_arr.ndim != 2:
        raise ValueError("lower_probs and upper_probs must be matrices of equal shape")
    if complete_count < 0:
        raise ValueError("complete_count must be non-negative")

    num_pairs, num_influence = lower_arr.shape
    if total_objects is None:
        total_objects = complete_count + num_influence
    if total_objects < complete_count + num_influence:
        raise ValueError("total_objects too small for the given counts")
    length = total_objects + 1

    ugf_cap: Optional[int] = None
    if k_cap is not None:
        if k_cap < complete_count:
            ugf_cap = 0
        else:
            ugf_cap = min(num_influence, k_cap - complete_count)

    pmf_lower, pmf_upper = ugf_pmf_bounds_batch(lower_arr, upper_arr, k_cap=ugf_cap)

    lower = np.zeros((num_pairs, length))
    upper = np.ones((num_pairs, length))
    upper[:, :complete_count] = 0.0
    upper[:, complete_count + num_influence + 1 :] = 0.0

    top = pmf_lower.shape[1]
    lower[:, complete_count : complete_count + top] = pmf_lower
    upper[:, complete_count : complete_count + top] = pmf_upper
    if k_cap is not None:
        lower[:, k_cap + 1 :] = 0.0
        upper[:, k_cap + 1 :] = np.where(
            np.arange(k_cap + 1, length) <= complete_count + num_influence, 1.0, 0.0
        )
    return lower, upper


def combine_weighted_bounds(
    parts: Sequence[tuple[float, DominationCountBounds]],
    k_cap: Optional[int] = None,
) -> DominationCountBounds:
    """Aggregate per-partition-pair bounds (Section IV-E).

    Each element of ``parts`` is ``(weight, bounds)`` where ``weight`` is
    ``P(B') * P(R')`` for the partition pair the bounds were computed under.
    Because the partition pairs describe disjoint sets of possible worlds, the
    weighted sums of the lower and upper PMF bounds are valid bounds for the
    unconditioned domination count.
    """
    if not parts:
        raise ValueError("parts must not be empty")
    length = len(parts[0][1])
    for _, bounds in parts:
        if len(bounds) != length:
            raise ValueError("all parts must have the same length")
    return combine_weighted_bounds_arrays(
        np.array([weight for weight, _ in parts], dtype=float),
        np.stack([bounds.lower for _, bounds in parts]),
        np.stack([bounds.upper for _, bounds in parts]),
        k_cap=k_cap,
    )


def combine_weighted_bounds_arrays(
    weights: np.ndarray,
    pmf_lower: np.ndarray,
    pmf_upper: np.ndarray,
    k_cap: Optional[int] = None,
) -> DominationCountBounds:
    """Matrix form of :func:`combine_weighted_bounds`.

    ``pmf_lower`` / ``pmf_upper`` are ``(num_pairs, length)`` PMF-bound
    matrices (one row per partition pair, e.g. from
    :func:`domination_count_bounds_batch`) and ``weights`` the per-pair
    ``P(B') * P(R')`` weights.  Rows are accumulated sequentially in pair
    order — the exact association the tuple-based API used — so both entry
    points produce bit-identical results.
    """
    weights = np.asarray(weights, dtype=float)
    pmf_lower = np.atleast_2d(np.asarray(pmf_lower, dtype=float))
    pmf_upper = np.atleast_2d(np.asarray(pmf_upper, dtype=float))
    if weights.ndim != 1 or weights.shape[0] == 0:
        raise ValueError("parts must not be empty")
    if pmf_lower.shape != pmf_upper.shape or pmf_lower.shape[0] != weights.shape[0]:
        raise ValueError("weights and bound matrices disagree on the number of pairs")
    length = pmf_lower.shape[1]
    lower = np.zeros(length)
    upper = np.zeros(length)
    total_weight = 0.0
    for i in range(weights.shape[0]):
        weight = float(weights[i])
        if weight < 0:
            raise ValueError("weights must be non-negative")
        lower += weight * pmf_lower[i]
        upper += weight * pmf_upper[i]
        total_weight += weight
    if total_weight > 1.0 + 1e-9:
        raise ValueError("partition-pair weights must not exceed 1")
    # any missing weight (dropped zero-mass partitions) contributes vacuous
    # bounds: nothing to the lower bounds, full mass to the upper bounds
    missing = max(0.0, 1.0 - total_weight)
    if missing > 1e-12:
        upper += missing
    upper = np.minimum(upper, 1.0)
    return DominationCountBounds(lower=lower, upper=upper, k_cap=k_cap)
