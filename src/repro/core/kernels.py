"""Pluggable kernel backends for the pair-bounds hot path (CSR layout).

The IDCA hot path evaluates, for every *(target partition, reference
partition, influence candidate, candidate partition)* combination, four
spatial domination tests and reduces the verdicts — weighted by partition
mass — into per-candidate ``PDom`` bounds.  PR 2 batched this over a dense
``(c, m, d, 2)`` candidate tensor padded to the widest candidate; on mixed
adaptive depths most of that tensor is padding that is rebuilt, evaluated and
masked every iteration.  This module replaces the padded-dense layout with a
**ragged CSR layout** and makes the kernel implementation pluggable:

* the candidate partitions of one batch are a single concatenated
  ``(total_partitions, d, 2)`` regions array, a ``(total_partitions,)``
  masses array and a ``(c + 1,)`` offsets array — candidate ``i`` owns rows
  ``offsets[i]:offsets[i + 1]`` and nothing else (no pad rows exist);
* :func:`pdom_bounds_csr` dispatches the bound computation to a **backend**:
  ``"numpy"`` (the broadcast ``domination_bulk`` path reshaped to consume CSR
  via per-segment reductions) or ``"numba"`` (optional ``@njit(parallel=...)``
  kernels that fuse the four domination tests with the mass segment-sum and
  never materialise the ``(n_b * n_r, total_partitions)`` verdict
  intermediate).

Backend selection follows a fallback ladder mirroring the scalar-to-batch
ladder of PR 2: an explicit ``backend=`` argument wins, then the
``REPRO_KERNEL_BACKEND`` environment variable, then ``"numba"`` when the
package is importable and ``"numpy"`` otherwise.  Requesting ``"numba"``
without the package installed silently degrades to ``"numpy"`` — the ladder
never fails, it only removes acceleration.

**Determinism.**  Both backends reduce each candidate's masses with the same
strict sequential left fold over the candidate's own ``offsets[i]`` segment,
in row order.  Elementwise IEEE-754 additions in a fixed order are exact
functions of their inputs — unlike ``np.sum``'s pairwise/SIMD reduction,
whose association varies with array length and CPU vector width — so the two
backends produce **bit-identical bounds by construction**, on every machine.
(The spatial-domination verdict arithmetic is likewise mirrored operation-
for-operation, including numpy's ``x ** 2.0 == x * x`` power fast path; for
exotic ``p`` a verdict could in principle differ by one ULP exactly at a
tie, which the seeded parity suite in ``tests/test_kernels.py`` guards.)
Because the backends agree bitwise, the pair-bounds memo and the cross-worker
shared bounds store deliberately exclude the backend from their keys.

Per-call wall-clock is accumulated in process-local counters
(:func:`total_kernel_seconds`, :func:`kernel_stats`) so the executor's
``ChunkStats`` / ``BatchReport`` can attribute batch time to the kernel
layer without reaching into refinement state.
"""

from __future__ import annotations

import math
import os
import time
from typing import Optional

import numpy as np

from ..geometry import DominationCriterion, domination_bulk

__all__ = [
    "KERNEL_BACKENDS",
    "available_backends",
    "default_backend",
    "kernel_environment",
    "kernel_stats",
    "numba_available",
    "pdom_bounds_csr",
    "resolve_backend",
    "total_kernel_seconds",
    "validate_partition_grids",
]

#: Recognised backend names, in ladder order (preferred first when available).
KERNEL_BACKENDS = ("numba", "numpy")

#: Environment variable overriding the default backend choice.
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

# cap on the number of broadcast elements the numpy backend materialises at
# once; larger grids are processed in slabs along the target-partition axis
# (same budget as the legacy padded kernel)
_BATCH_BLOCK_ELEMENTS = 1 << 22

try:  # numba is an optional extra; its absence selects the numpy backend
    import numba as _numba
    from numba import prange as _prange

    _NUMBA_AVAILABLE = True
except Exception:  # pragma: no cover - exercised in CI's without-numba job
    _numba = None
    _prange = range
    _NUMBA_AVAILABLE = False


def _maybe_njit(**options):
    """``numba.njit`` when numba is installed, identity otherwise.

    The fallback keeps the kernel bodies importable — and directly testable
    as pure Python — in environments without numba, which is exactly how the
    CI parity job verifies that the compiled and interpreted kernels perform
    the same arithmetic.
    """

    def decorate(func):
        if _NUMBA_AVAILABLE:
            return _numba.njit(**options)(func)
        return func

    return decorate


# --------------------------------------------------------------------- #
# backend registry
# --------------------------------------------------------------------- #
def numba_available() -> bool:
    """Whether the optional numba package imported successfully."""
    return _NUMBA_AVAILABLE


def available_backends() -> tuple[str, ...]:
    """Backends usable in this process, ladder order (preferred first)."""
    if _NUMBA_AVAILABLE:
        return ("numba", "numpy")
    return ("numpy",)


def default_backend() -> str:
    """Backend used when no explicit choice is supplied.

    ``REPRO_KERNEL_BACKEND`` wins when set (subject to the numba-availability
    fallback); otherwise ``"numba"`` when importable, else ``"numpy"``.
    """
    return resolve_backend(None)


def resolve_backend(requested: Optional[str]) -> str:
    """Resolve a backend request through the fallback ladder.

    ``requested`` (an explicit argument or config value) takes precedence,
    then the ``REPRO_KERNEL_BACKEND`` environment variable, then the best
    available backend.  ``"numba"`` degrades silently to ``"numpy"`` when
    numba is not importable — selection never changes results, so the
    fallback is always safe.  Unknown names raise :class:`ValueError`
    regardless of where they came from.
    """
    choice = requested
    if choice is None:
        choice = os.environ.get(KERNEL_BACKEND_ENV) or None
    if choice is None:
        return "numba" if _NUMBA_AVAILABLE else "numpy"
    if choice not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {choice!r}; expected one of {KERNEL_BACKENDS}"
        )
    if choice == "numba" and not _NUMBA_AVAILABLE:
        return "numpy"
    return choice


def kernel_environment() -> dict:
    """Environment metadata for benchmark reports.

    Records what a ``BENCH_*.json`` number was measured *with* — CPU count,
    numpy/numba versions and the backend the ladder resolves to — so
    trajectory comparisons across machines are interpretable.
    """
    numba_version = None
    if _NUMBA_AVAILABLE:
        numba_version = getattr(_numba, "__version__", "unknown")
    return {
        "cpu_count": os.cpu_count(),
        "numpy_version": np.__version__,
        "numba_version": numba_version,
        "available_backends": list(available_backends()),
        "default_backend": default_backend(),
        "kernel_backend_env": os.environ.get(KERNEL_BACKEND_ENV),
    }


# --------------------------------------------------------------------- #
# timing counters (process-local, read as deltas by the executor)
# --------------------------------------------------------------------- #
_KERNEL_SECONDS: dict[str, float] = {"numpy": 0.0, "numba": 0.0}
_KERNEL_CALLS: dict[str, int] = {"numpy": 0, "numba": 0}


def _record_kernel_time(backend: str, seconds: float) -> None:
    _KERNEL_SECONDS[backend] += seconds
    _KERNEL_CALLS[backend] += 1


def total_kernel_seconds() -> float:
    """Wall-clock spent inside :func:`pdom_bounds_csr` since process start."""
    return sum(_KERNEL_SECONDS.values())


def kernel_stats() -> dict:
    """Per-backend cumulative call counts and seconds (process-local)."""
    return {
        "kernel_seconds": total_kernel_seconds(),
        "kernel_calls": sum(_KERNEL_CALLS.values()),
        "per_backend_seconds": dict(_KERNEL_SECONDS),
        "per_backend_calls": dict(_KERNEL_CALLS),
    }


# --------------------------------------------------------------------- #
# validation
# --------------------------------------------------------------------- #
def validate_partition_grids(
    target_regions: np.ndarray,
    reference_regions: np.ndarray,
    dimensions: Optional[int] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Validate the target/reference partition grids up front.

    Both grids must be ``(n, d, 2)`` float arrays over the same ``d`` (and
    over ``dimensions`` when the candidate tensors pin it).  Without this
    check a transposed ``(d, n, 2)`` grid broadcasts through the kernels
    into silently wrong bounds instead of raising like the candidate tensors
    always did.
    """
    target_regions = np.asarray(target_regions, dtype=float)
    reference_regions = np.asarray(reference_regions, dtype=float)
    for name, grid in (
        ("target_regions", target_regions),
        ("reference_regions", reference_regions),
    ):
        if grid.ndim != 3 or grid.shape[-1] != 2:
            raise ValueError(
                f"{name} must have shape (n, d, 2), got {grid.shape}"
            )
    if target_regions.shape[1] != reference_regions.shape[1]:
        raise ValueError(
            "target_regions and reference_regions disagree on the dimension "
            f"count: {target_regions.shape[1]} != {reference_regions.shape[1]}"
        )
    if dimensions is not None and target_regions.shape[1] != dimensions:
        raise ValueError(
            f"partition grids are {target_regions.shape[1]}-dimensional but the "
            f"candidate partitions are {dimensions}-dimensional"
        )
    return target_regions, reference_regions


def _validate_csr(
    regions: np.ndarray, masses: np.ndarray, offsets: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    regions = np.asarray(regions, dtype=float)
    masses = np.asarray(masses, dtype=float)
    offsets = np.asarray(offsets, dtype=np.int64)
    if regions.ndim != 3 or regions.shape[-1] != 2:
        raise ValueError(
            f"CSR regions must have shape (total_partitions, d, 2), got {regions.shape}"
        )
    if masses.ndim != 1 or masses.shape[0] != regions.shape[0]:
        raise ValueError("CSR masses must be one row weight per regions row")
    if offsets.ndim != 1 or offsets.shape[0] < 1:
        raise ValueError("CSR offsets must be a (num_candidates + 1,) array")
    if offsets[0] != 0 or offsets[-1] != masses.shape[0]:
        raise ValueError("CSR offsets must start at 0 and end at total_partitions")
    if np.any(np.diff(offsets) < 0):
        raise ValueError("CSR offsets must be non-decreasing")
    return regions, masses, offsets


# --------------------------------------------------------------------- #
# numpy backend: broadcast verdicts + sequential segment fold
# --------------------------------------------------------------------- #
def _pdom_csr_numpy(
    regions: np.ndarray,
    masses: np.ndarray,
    offsets: np.ndarray,
    target_regions: np.ndarray,
    reference_regions: np.ndarray,
    p: float,
    criterion: DominationCriterion,
) -> tuple[np.ndarray, np.ndarray]:
    """CSR pair bounds on the broadcast :func:`domination_bulk` path.

    Verdicts are computed exactly as the padded kernel computed them (same
    elementwise operations, minus the pad rows); the mass reduction is the
    canonical sequential left fold over each candidate's own segment, which
    is what makes this path bit-identical to the numba backend.
    """
    num_target = target_regions.shape[0]
    num_reference = reference_regions.shape[0]
    num_candidates = offsets.shape[0] - 1
    total = regions.shape[0]

    cand = regions[None, None]                      # (1, 1, T, d, 2)
    targets = target_regions[:, None, None]         # (n_b, 1, 1, d, 2)
    refs = reference_regions[None, :, None]         # (1, n_r, 1, d, 2)

    dominating = np.empty((num_target, num_reference, total), dtype=bool)
    dominated = np.empty_like(dominating)
    per_target = num_reference * total * max(regions.shape[1], 1)
    block = max(1, _BATCH_BLOCK_ELEMENTS // max(per_target, 1))
    for start in range(0, num_target, block):
        slab = slice(start, start + block)
        dominating[slab] = domination_bulk(cand, targets[slab], refs, p, criterion)
        dominated[slab] = domination_bulk(targets[slab], cand, refs, p, criterion)

    # verdict-gated contributions; the fold below fixes the summation order
    contrib_lower = np.where(dominating, masses, 0.0)
    contrib_dominated = np.where(dominated, masses, 0.0)

    starts = offsets[:-1]
    counts = offsets[1:] - offsets[:-1]
    lower = np.zeros((num_target, num_reference, num_candidates))
    dominated_mass = np.zeros_like(lower)
    totals = np.zeros(num_candidates)
    # strict left fold, segment position by segment position: step j adds
    # every candidate's j-th own row, so each candidate accumulates its rows
    # in order with plain elementwise IEEE additions (no pairwise blocking)
    for j in range(int(counts.max()) if num_candidates else 0):
        active = np.flatnonzero(counts > j)
        columns = starts[active] + j
        lower[..., active] += contrib_lower[..., columns]
        dominated_mass[..., active] += contrib_dominated[..., columns]
        totals[active] += masses[columns]

    # same probability clamps as the scalar and padded paths
    np.clip(lower, 0.0, 1.0, out=lower)
    upper = np.minimum(np.maximum(totals - dominated_mass, lower), 1.0)
    num_pairs = num_target * num_reference
    return (
        lower.reshape(num_pairs, num_candidates),
        upper.reshape(num_pairs, num_candidates),
    )


# --------------------------------------------------------------------- #
# numba backend: fused verdict + segment-sum kernel
# --------------------------------------------------------------------- #
@_maybe_njit(cache=True)
def _pow_like_numpy(x: float, p: float) -> float:
    """``x ** p`` mirroring numpy's power-ufunc fast paths.

    numpy computes ``x ** 2.0`` as ``x * x`` and ``x ** 1.0`` as ``x``;
    libm ``pow`` does not bit-match those, so the fast paths must be
    replicated for the fused kernel to agree with ``domination_bulk``.
    """
    if p == 2.0:
        return x * x
    if p == 1.0:
        return x
    return x ** p


@_maybe_njit(cache=True)
def _rect_dominates(a, b, r, p: float, optimal: bool) -> bool:
    """Row-level complete-domination test on ``(d, 2)`` rectangle views.

    Operation-for-operation the arithmetic of the vectorised
    ``repro.geometry.domination_bulk`` criteria; the per-dimension
    accumulation is sequential, matching numpy's ``sum(axis=-1)`` for the
    small ``d`` of every workload in this repository (numpy switches to
    pairwise blocking only at ``d >= 8``).
    """
    d = a.shape[0]
    if optimal:
        total = 0.0
        for i in range(d):
            a_lo = a[i, 0]
            a_hi = a[i, 1]
            b_lo = b[i, 0]
            b_hi = b[i, 1]
            worst = -np.inf
            for corner in range(2):
                rc = r[i, corner]
                max_a = max(abs(rc - a_lo), abs(rc - a_hi))
                min_b = max(max(b_lo - rc, rc - b_hi), 0.0)
                value = _pow_like_numpy(max_a, p) - _pow_like_numpy(min_b, p)
                if value > worst:
                    worst = value
            total += worst
        return total < 0.0
    max_a_dist = 0.0
    min_b_dist = 0.0
    for i in range(d):
        r_lo = r[i, 0]
        r_hi = r[i, 1]
        max_a = max(abs(r_hi - a[i, 0]), abs(a[i, 1] - r_lo))
        min_b = max(max(r_lo - b[i, 1], b[i, 0] - r_hi), 0.0)
        max_a_dist += _pow_like_numpy(max_a, p)
        min_b_dist += _pow_like_numpy(min_b, p)
    return max_a_dist < min_b_dist


@_maybe_njit(parallel=True, cache=True)
def _csr_pair_bounds_kernel(
    regions, masses, offsets, target_regions, reference_regions,
    p: float, optimal: bool, lower, upper,
):  # pragma: no cover - covered via the wrapper (compiled or interpreted)
    """Fused CSR kernel: domination tests + mass segment fold, per pair.

    One ``prange`` iteration owns one (target, reference) pair and walks
    every candidate's own segment rows exactly once, accumulating the
    dominating / dominated masses sequentially — the canonical fold order —
    without ever materialising the ``(num_pairs, total_partitions)`` verdict
    arrays the broadcast backend builds.
    """
    num_target = target_regions.shape[0]
    num_reference = reference_regions.shape[0]
    num_candidates = offsets.shape[0] - 1
    for pair in _prange(num_target * num_reference):
        b_idx = pair // num_reference
        r_idx = pair - b_idx * num_reference
        target = target_regions[b_idx]
        reference = reference_regions[r_idx]
        for c in range(num_candidates):
            lower_acc = 0.0
            dominated_acc = 0.0
            total_mass = 0.0
            for row in range(offsets[c], offsets[c + 1]):
                mass = masses[row]
                total_mass += mass
                if _rect_dominates(regions[row], target, reference, p, optimal):
                    lower_acc += mass
                if _rect_dominates(target, regions[row], reference, p, optimal):
                    dominated_acc += mass
            # same probability clamps as the scalar and padded paths
            if lower_acc < 0.0:
                lower_acc = 0.0
            elif lower_acc > 1.0:
                lower_acc = 1.0
            upper_c = total_mass - dominated_acc
            if upper_c < lower_acc:
                upper_c = lower_acc
            if upper_c > 1.0:
                upper_c = 1.0
            lower[pair, c] = lower_acc
            upper[pair, c] = upper_c


def _pdom_csr_numba(
    regions: np.ndarray,
    masses: np.ndarray,
    offsets: np.ndarray,
    target_regions: np.ndarray,
    reference_regions: np.ndarray,
    p: float,
    criterion: DominationCriterion,
) -> tuple[np.ndarray, np.ndarray]:
    """Wrapper allocating outputs and invoking the fused kernel.

    Runs compiled under numba; without numba the identical body executes as
    pure Python (the parity tests call it that way), so both CI legs assert
    the same arithmetic.
    """
    num_pairs = target_regions.shape[0] * reference_regions.shape[0]
    num_candidates = offsets.shape[0] - 1
    lower = np.empty((num_pairs, num_candidates))
    upper = np.empty_like(lower)
    _csr_pair_bounds_kernel(
        np.ascontiguousarray(regions),
        np.ascontiguousarray(masses),
        np.ascontiguousarray(offsets),
        np.ascontiguousarray(target_regions),
        np.ascontiguousarray(reference_regions),
        float(p),
        criterion == "optimal",
        lower,
        upper,
    )
    return lower, upper


# --------------------------------------------------------------------- #
# public entry point
# --------------------------------------------------------------------- #
def pdom_bounds_csr(
    regions: np.ndarray,
    masses: np.ndarray,
    offsets: np.ndarray,
    target_regions: np.ndarray,
    reference_regions: np.ndarray,
    p: float = 2.0,
    criterion: DominationCriterion = "optimal",
    backend: Optional[str] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched ``PDom`` bounds over a ragged CSR candidate batch.

    The CSR successor of :func:`repro.core.domination.pdom_bounds_batch`:
    candidate ``i`` owns rows ``offsets[i]:offsets[i + 1]`` of ``regions`` /
    ``masses`` (see ``repro.uncertain.decomposition.csr_partitions_batch``),
    so candidates at different adaptive depths batch together without pad
    rows.  An empty segment (``offsets[i] == offsets[i + 1]``) is legal and
    yields the ``(0, 0)`` bounds the scalar path produces for empty
    partition arrays.

    Parameters
    ----------
    regions, masses, offsets:
        CSR candidate batch: ``(total_partitions, d, 2)`` rectangles,
        ``(total_partitions,)`` probability masses and ``(c + 1,)``
        monotone row offsets.
    target_regions, reference_regions:
        Partition grids ``(n_b, d, 2)`` and ``(n_r, d, 2)``; validated up
        front (a transposed grid raises instead of broadcasting into wrong
        bounds).
    p, criterion:
        Finite ``Lp`` norm parameter and domination criterion, as everywhere.
    backend:
        ``"numpy"``, ``"numba"`` or ``None`` (resolve through the ladder —
        explicit argument, then ``REPRO_KERNEL_BACKEND``, then best
        available).  Backends are bit-identical by construction; see the
        module docstring for the determinism argument.

    Returns
    -------
    (lower, upper):
        ``(n_b * n_r, c)`` bound matrices in row-major (target-major) pair
        order, clamped to probabilities exactly like the scalar path.  Each
        column depends only on its own candidate's segment and the two
        grids, so columns remain cacheable across batch compositions.
    """
    if p < 1:
        raise ValueError(f"Lp norms require p >= 1, got {p}")
    if math.isinf(p):
        raise ValueError("pdom_bounds_csr requires a finite p")
    if criterion not in ("optimal", "minmax"):
        raise ValueError(f"unknown domination criterion: {criterion!r}")
    regions, masses, offsets = _validate_csr(regions, masses, offsets)
    target_regions, reference_regions = validate_partition_grids(
        target_regions,
        reference_regions,
        regions.shape[1] if regions.shape[0] else None,
    )
    resolved = resolve_backend(backend)
    num_pairs = target_regions.shape[0] * reference_regions.shape[0]
    num_candidates = offsets.shape[0] - 1
    if num_candidates == 0:
        empty = np.empty((num_pairs, 0), dtype=float)
        return empty, empty.copy()

    start = time.perf_counter()
    if resolved == "numba":
        result = _pdom_csr_numba(
            regions, masses, offsets, target_regions, reference_regions, p, criterion
        )
    else:
        result = _pdom_csr_numpy(
            regions, masses, offsets, target_regions, reference_regions, p, criterion
        )
    _record_kernel_time(resolved, time.perf_counter() - start)
    return result
