"""Stop criteria for the iterative refinement loop of IDCA (Algorithm 1).

The main loop of Algorithm 1 runs "until a domain- and user-specific stop
criterion is satisfied".  Different query types need different criteria —
threshold queries can stop as soon as the predicate is decidable, ranking
queries once the remaining uncertainty is below a budget — so criteria are
modelled as small strategy objects sharing a single interface.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

from .domination_count import DominationCountBounds

__all__ = [
    "StopCriterion",
    "NeverStop",
    "MaxIterations",
    "UncertaintyBelow",
    "ThresholdDecision",
    "AnyOf",
]


class StopCriterion(abc.ABC):
    """Decides after each IDCA iteration whether refinement may stop."""

    @abc.abstractmethod
    def should_stop(self, bounds: DominationCountBounds, iteration: int) -> bool:
        """Return True when the current bounds are good enough."""


class NeverStop(StopCriterion):
    """Refine until the iteration budget of the IDCA driver is exhausted."""

    def should_stop(self, bounds: DominationCountBounds, iteration: int) -> bool:
        return False


class MaxIterations(StopCriterion):
    """Stop after a fixed number of refinement iterations."""

    def __init__(self, iterations: int):
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        self.iterations = iterations

    def should_stop(self, bounds: DominationCountBounds, iteration: int) -> bool:
        return iteration >= self.iterations


class UncertaintyBelow(StopCriterion):
    """Stop once the accumulated bound width drops below a budget.

    The accumulated uncertainty ``sum_k (UB_k - LB_k)`` is the quality measure
    of Figures 6(b) and 7; a budget of 0 therefore demands full convergence.
    """

    def __init__(self, budget: float):
        if budget < 0:
            raise ValueError("budget must be non-negative")
        self.budget = budget

    def should_stop(self, bounds: DominationCountBounds, iteration: int) -> bool:
        return bounds.uncertainty() <= self.budget


class ThresholdDecision(StopCriterion):
    """Stop once a probabilistic threshold predicate is decidable.

    The predicate is ``P(DomCount < k) >= tau`` (Corollaries 4 and 5: "is the
    object a k-nearest neighbour of the reference with probability at least
    ``tau``?").  Refinement can stop as soon as the lower bound of
    ``P(DomCount < k)`` reaches ``tau`` (the object is a true hit) or its
    upper bound falls below ``tau`` (true drop).

    After the loop, :attr:`decision` holds ``True`` / ``False`` when the
    predicate was decided and ``None`` when the iteration budget ran out
    first — in that case the caller may still report the probability bounds
    as a confidence interval, as discussed at the end of Section V.
    """

    def __init__(self, k: int, tau: float, strict: bool = False):
        if k <= 0:
            raise ValueError("k must be positive")
        if not 0.0 <= tau <= 1.0:
            raise ValueError("tau must be a probability")
        self.k = k
        self.tau = tau
        self.strict = strict
        self.decision: Optional[bool] = None
        self.last_bounds: Optional[tuple[float, float]] = None

    def should_stop(self, bounds: DominationCountBounds, iteration: int) -> bool:
        lower, upper = bounds.less_than(self.k)
        self.last_bounds = (lower, upper)
        if (lower > self.tau) or (not self.strict and lower >= self.tau):
            self.decision = True
            return True
        if (upper < self.tau) or (self.strict and upper <= self.tau):
            self.decision = False
            return True
        self.decision = None
        return False


class AnyOf(StopCriterion):
    """Composite criterion: stop when any member criterion is satisfied."""

    def __init__(self, criteria: Sequence[StopCriterion]):
        if not criteria:
            raise ValueError("at least one criterion is required")
        self.criteria = list(criteria)

    def should_stop(self, bounds: DominationCountBounds, iteration: int) -> bool:
        return any(criterion.should_stop(bounds, iteration) for criterion in self.criteria)
