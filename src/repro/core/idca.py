"""IDCA — Iterative Domination Count Approximation (Algorithm 1).

This is the paper's main algorithm.  Given an uncertain database, a target
object ``B`` and a reference object ``R``, it

1. classifies every database object with the complete-domination filter
   (objects that always dominate ``B``, objects that never do, and the
   *influence objects* whose relation is uncertain);
2. iteratively decomposes ``B``, ``R`` and the influence objects one kd-tree
   level at a time;
3. in every iteration computes the per-influence-object domination bounds of
   *all* pairs of partitions ``(B', R')`` with one batched kernel call on the
   ragged CSR candidate layout
   (:func:`~repro.core.kernels.pdom_bounds_csr`), expands the uncertain
   generating functions of all pairs in one vectorised pass, and combines the
   per-pair domination-count bounds weighted by ``P(B') * P(R')``
   (Section IV-E);
4. stops as soon as the supplied stop criterion is satisfied (e.g. a threshold
   predicate became decidable) or the iteration budget is exhausted.

The result carries the final conservative/progressive PMF bounds of
``DomCount(B, R)`` plus per-iteration statistics used by the experiments.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from ..geometry import DominationCriterion
from ..uncertain import DecompositionTree, UncertainDatabase, UncertainObject
from ..uncertain.decomposition import AxisPolicy, csr_partitions_batch
from .domination import complete_domination_filter
from .kernels import pdom_bounds_csr, resolve_backend
from .domination_count import (
    DominationCountBounds,
    combine_weighted_bounds_arrays,
    domination_count_bounds,
    domination_count_bounds_batch,
)
from .stop_criteria import StopCriterion

__all__ = ["IDCA", "IDCARun", "IDCAResult", "IterationStats"]

ObjectOrIndex = Union[UncertainObject, int, np.integer]


@dataclass(frozen=True)
class IterationStats:
    """Statistics of one refinement iteration.

    ``elapsed_seconds`` is the total wall-clock time of the iteration;
    ``cache_seconds`` is the share of it spent looking up and storing entries
    of the shared pair-bounds cache.  ``elapsed_seconds - cache_seconds`` is
    therefore the kernel-plus-aggregation time, so profiling can attribute a
    regression to the memo layer or to the arithmetic.

    ``shared_hits``/``shared_misses``/``shared_publishes`` describe the
    cross-worker shared bounds store (``repro/engine/boundstore.py``) during
    this iteration: columns served from / missed in / published to the store.
    They stay zero when no store is attached — e.g. on the serial path.

    ``kernel_backend`` names the pair-bounds kernel backend the iteration
    resolved to (``"numpy"`` or ``"numba"``); ``kernel_seconds`` is the
    wall-clock spent inside the CSR kernel itself, zero when every candidate
    column was served from the memo.  Backends are bit-identical, so these
    fields only attribute time — they never explain a result difference.
    """

    iteration: int
    uncertainty: float
    elapsed_seconds: float
    num_pairs: int
    candidate_partitions: int
    cache_seconds: float = 0.0
    shared_hits: int = 0
    shared_misses: int = 0
    shared_publishes: int = 0
    kernel_backend: str = ""
    kernel_seconds: float = 0.0


@dataclass
class IDCAResult:
    """Outcome of one IDCA run.

    Attributes
    ----------
    bounds:
        Final PMF bounds of ``DomCount(B, R)``.
    complete_count:
        Number of objects that dominate the target in every possible world.
    influence_indices:
        Database indices of the influence objects that were refined.
    pruned_count:
        Number of objects that can never dominate the target.
    iterations:
        Per-iteration statistics (entry 0 describes the filter-only state).
    decision:
        Outcome of a threshold stop criterion, when one was supplied:
        ``True`` (predicate holds), ``False`` (predicate violated) or ``None``
        (undecided within the iteration budget).
    """

    bounds: DominationCountBounds
    complete_count: int
    influence_indices: np.ndarray
    pruned_count: int
    iterations: list[IterationStats] = field(default_factory=list)
    decision: Optional[bool] = None

    @property
    def num_influence(self) -> int:
        """Number of influence objects."""
        return int(self.influence_indices.shape[0])

    @property
    def num_iterations(self) -> int:
        """Number of refinement iterations actually executed."""
        return max(0, len(self.iterations) - 1)

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time spent (filter step plus refinement)."""
        return float(sum(stat.elapsed_seconds for stat in self.iterations))

    def uncertainty(self) -> float:
        """Accumulated uncertainty of the final bounds."""
        return self.bounds.uncertainty()


class IDCA:
    """Iterative Domination Count Approximation driver.

    Parameters
    ----------
    database:
        The uncertain database the domination counts are computed against.
    p:
        ``Lp`` norm parameter of the distance function (finite, ``>= 1``).
    criterion:
        Complete-domination criterion: ``"optimal"`` (Corollary 1, default) or
        ``"minmax"`` — the latter is the baseline of Figure 6.
    axis_policy:
        Split-axis policy of the kd-tree decomposition.
    max_target_depth, max_reference_depth:
        Caps on the decomposition depth of the target and reference objects;
        the number of partition pairs per iteration is bounded by
        ``2^max_target_depth * 2^max_reference_depth``.
    max_candidate_depth:
        Optional cap on the decomposition depth of influence objects
        (the kd-tree height ``h`` of Section V).  ``None`` lets the depth grow
        with the iteration number.
    k_cap:
        Optional truncation bound for kNN/RkNN predicates (Section VI): PMF
        bounds are only maintained exactly for counts ``<= k_cap``.
    adaptive_candidate_refinement:
        When True, an influence object is only decomposed further while its
        aggregated domination-probability bound width still exceeds
        ``adaptive_width_threshold``.  This is the refinement heuristic the
        paper lists as future work: effort concentrates on the objects that
        still contribute uncertainty instead of splitting every object every
        iteration.
    adaptive_width_threshold:
        Bound-width budget per influence object below which adaptive
        refinement stops splitting that object.
    tree_cache:
        Optional externally-owned decomposition-tree cache (keyed by object
        identity).  Passing the same mapping to several IDCA instances — as
        the query engine's shared refinement context does — lets them reuse
        each other's decompositions.
    pair_bounds_cache:
        Optional externally-owned memo of domination-bound matrix columns,
        shared the same way.  Each entry is keyed by *(candidate tree token,
        candidate depth, target key, reference key, config)* and stores the
        whole ``(num_pairs,)`` lower/upper column of that candidate across
        every (target partition, reference partition) pair, so a hit skips an
        entire kernel column instead of a single scalar.  Entries are
        deterministic functions of their key, so sharing never changes
        results.  The key deliberately excludes the kernel backend: backends
        are bit-identical by construction, so columns computed under one
        backend are valid under every other.
    kernel_backend:
        Pair-bounds kernel backend: ``"numpy"``, ``"numba"`` or ``None`` to
        resolve through the fallback ladder (``REPRO_KERNEL_BACKEND``
        environment variable, then the best available backend).  The
        *request* is stored and re-resolved at every use, so a pickled IDCA
        resolves against whatever is importable in the receiving worker.
    """

    def __init__(
        self,
        database: UncertainDatabase,
        p: float = 2.0,
        criterion: DominationCriterion = "optimal",
        axis_policy: AxisPolicy = "round_robin",
        max_target_depth: int = 3,
        max_reference_depth: int = 3,
        max_candidate_depth: Optional[int] = None,
        k_cap: Optional[int] = None,
        adaptive_candidate_refinement: bool = False,
        adaptive_width_threshold: float = 0.01,
        tree_cache: Optional[dict] = None,
        pair_bounds_cache: Optional[dict] = None,
        kernel_backend: Optional[str] = None,
    ):
        if max_target_depth < 0 or max_reference_depth < 0:
            raise ValueError("decomposition depth caps must be non-negative")
        if max_candidate_depth is not None and max_candidate_depth < 1:
            raise ValueError("max_candidate_depth must be at least 1")
        if adaptive_width_threshold < 0:
            raise ValueError("adaptive_width_threshold must be non-negative")
        # validate the name eagerly but store the request: resolution happens
        # per use, so pickled instances re-resolve in the receiving worker
        resolve_backend(kernel_backend)
        self.kernel_backend = kernel_backend
        self.database = database
        self.p = p
        self.criterion = criterion
        self.axis_policy = axis_policy
        self.max_target_depth = max_target_depth
        self.max_reference_depth = max_reference_depth
        self.max_candidate_depth = max_candidate_depth
        self.k_cap = k_cap
        self.adaptive_candidate_refinement = adaptive_candidate_refinement
        self.adaptive_width_threshold = adaptive_width_threshold
        self._trees: dict[int, DecompositionTree] = (
            tree_cache if tree_cache is not None else {}
        )
        self._pair_bounds: Optional[dict] = pair_bounds_cache

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _tree_for(self, obj: UncertainObject) -> DecompositionTree:
        """Decomposition tree of ``obj``, cached per object identity.

        The cache is bounded: long-lived shared caches would otherwise grow
        by one tree per transient query object.  Eviction is safe because
        memoised pair bounds key trees by their process-unique token, never
        by a reusable ``id()``.
        """
        key = id(obj)
        tree = self._trees.get(key)
        if tree is None:
            _evict_oldest_tenth(self._trees, _TREE_CACHE_MAX)
            tree = DecompositionTree(obj, axis_policy=self.axis_policy)
            self._trees[key] = tree
        return tree

    def _resolve(
        self, spec: ObjectOrIndex, exclude: set[int]
    ) -> UncertainObject:
        """Turn an object-or-index specification into an object.

        Database indices are added to the exclusion set so an object never
        counts towards its own domination count.
        """
        if isinstance(spec, (int, np.integer)):
            index = int(spec)
            if not 0 <= index < len(self.database):
                raise IndexError(f"object index {index} out of range")
            exclude.add(index)
            return self.database[index]
        return spec

    def _store_pair_bounds(self, key: tuple, value: tuple[np.ndarray, np.ndarray]) -> None:
        """Insert one bounds-matrix column into the shared memo, bounded.

        ``key`` identifies the column positionally — (candidate tree token,
        candidate depth, target key, reference key, config).  Partition
        arrays are deterministic and cached per (tree, depth), so the
        positional key determines the whole column without hashing region
        coordinates.  ``value`` is the ``(lower, upper)`` pair of
        ``(num_pairs,)`` arrays for every (target, reference) partition pair,
        in row-major pair order.
        """
        cache = self._pair_bounds
        _evict_oldest_tenth(cache, _PAIR_BOUNDS_CACHE_MAX)
        cache[key] = value

    # ------------------------------------------------------------------ #
    # main entry points
    # ------------------------------------------------------------------ #
    def start_run(
        self,
        target: ObjectOrIndex,
        reference: ObjectOrIndex,
        stop: Optional[StopCriterion] = None,
        max_iterations: int = 10,
        exclude_indices: Optional[Sequence[int]] = None,
    ) -> "IDCARun":
        """Begin an incremental IDCA run (filter step executed eagerly).

        The returned :class:`IDCARun` has completed iteration 0 (the
        complete-domination filter).  Callers advance it one refinement
        iteration at a time via :meth:`IDCARun.step` — the query engine's
        scheduler uses this to interleave iterations across many candidates —
        or drain it with :meth:`IDCARun.run`.
        """
        return IDCARun(self, target, reference, stop, max_iterations, exclude_indices)

    def domination_count(
        self,
        target: ObjectOrIndex,
        reference: ObjectOrIndex,
        stop: Optional[StopCriterion] = None,
        max_iterations: int = 10,
        exclude_indices: Optional[Sequence[int]] = None,
    ) -> IDCAResult:
        """Approximate the PMF of ``DomCount(target, reference)``.

        Parameters
        ----------
        target, reference:
            Uncertain objects, or integer positions of database members.
        stop:
            Optional stop criterion evaluated after every iteration.
        max_iterations:
            Hard budget on the number of refinement iterations.
        exclude_indices:
            Additional database positions to ignore (on top of the positions
            of ``target`` / ``reference`` when given as indices).
        """
        return self.start_run(
            target,
            reference,
            stop=stop,
            max_iterations=max_iterations,
            exclude_indices=exclude_indices,
        ).run()


# entries are whole bounds-matrix columns (two (num_pairs,) arrays), i.e. up
# to ~1 KiB each at the default depth caps — far fewer, larger entries than
# the scalar-per-pair memo this cache replaced
_PAIR_BOUNDS_CACHE_MAX = 50_000
_TREE_CACHE_MAX = 4096


def _evict_oldest_tenth(mapping: dict, limit: int) -> None:
    """FIFO-evict a tenth of a bounded memo once it reaches ``limit``.

    The single eviction policy of every engine-side cache (tree caches and
    both tiers of the pair-bounds memo): dict iteration order is insertion
    order, so dropping the first tenth removes the oldest entries.  Uses
    ``del`` so dict subclasses with ``__delitem__`` hooks (the context's
    registering tree cache) see the eviction.
    """
    if len(mapping) >= limit:
        for stale in list(itertools.islice(iter(mapping), limit // 10)):
            del mapping[stale]


class IDCARun:
    """Incremental execution state of one IDCA invocation.

    Construction performs the resolution and complete-domination filter step
    (iteration 0) exactly as the monolithic algorithm did; every
    :meth:`step` call then executes one refinement iteration.  The run
    finishes when the stop criterion fires, the bounds converge, the
    iteration budget is exhausted, or there is nothing to refine.
    :attr:`result` is valid at every point in between, so schedulers can
    inspect the current bounds to prioritise refinement across candidates.
    """

    def __init__(
        self,
        idca: IDCA,
        target: ObjectOrIndex,
        reference: ObjectOrIndex,
        stop: Optional[StopCriterion] = None,
        max_iterations: int = 10,
        exclude_indices: Optional[Sequence[int]] = None,
    ):
        if max_iterations < 0:
            raise ValueError("max_iterations must be non-negative")
        self.idca = idca
        self.stop = stop
        self.max_iterations = max_iterations
        exclude: set[int] = (
            set(int(i) for i in exclude_indices) if exclude_indices else set()
        )
        self.target_obj = idca._resolve(target, exclude)
        self.reference_obj = idca._resolve(reference, exclude)
        self.exclude = exclude

        start = time.perf_counter()
        filter_result = complete_domination_filter(
            idca.database,
            self.target_obj,
            self.reference_obj,
            exclude_indices=exclude,
            p=idca.p,
            criterion=idca.criterion,
        )
        self._complete_count = filter_result.complete_count
        self._influence = filter_result.influence_indices
        self._total_objects = len(idca.database) - len(exclude)

        bounds = domination_count_bounds(
            np.zeros(self._influence.shape[0]),
            np.ones(self._influence.shape[0]),
            complete_count=self._complete_count,
            total_objects=self._total_objects,
            k_cap=idca.k_cap,
        )
        self.result = IDCAResult(
            bounds=bounds,
            complete_count=self._complete_count,
            influence_indices=self._influence,
            pruned_count=int(filter_result.pruned_indices.shape[0]),
            iterations=[
                IterationStats(
                    iteration=0,
                    uncertainty=bounds.uncertainty(),
                    elapsed_seconds=time.perf_counter() - start,
                    num_pairs=1,
                    candidate_partitions=1,
                )
            ],
        )

        self._iteration = 0
        self._finished = False
        if stop is not None and stop.should_stop(bounds, 0):
            self._finished = True
        elif self._influence.shape[0] == 0 or max_iterations == 0:
            self._finished = True
        self.result.decision = getattr(stop, "decision", None)

        self._influence_trees: Optional[list[DecompositionTree]] = None
        self._candidate_depths: Optional[np.ndarray] = None
        self._previous_widths: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #
    @property
    def finished(self) -> bool:
        """True when no further refinement iteration will be executed."""
        return self._finished

    @property
    def iteration(self) -> int:
        """Number of refinement iterations executed so far."""
        return self._iteration

    @property
    def iterations_left(self) -> int:
        """Remaining iteration budget."""
        return 0 if self._finished else self.max_iterations - self._iteration

    def _materialise_trees(self) -> None:
        idca = self.idca
        self._target_tree = idca._tree_for(self.target_obj)
        self._reference_tree = idca._tree_for(self.reference_obj)
        self._influence_trees = [
            idca._tree_for(idca.database[int(i)]) for i in self._influence
        ]
        num_candidates = len(self._influence_trees)
        self._candidate_depths = np.zeros(num_candidates, dtype=int)
        self._previous_widths = np.full(num_candidates, np.inf)

    # ------------------------------------------------------------------ #
    # stepping
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Execute one refinement iteration; returns False when finished."""
        if self._finished:
            return False
        idca = self.idca
        if self._influence_trees is None:
            self._materialise_trees()
        iteration = self._iteration + 1
        iter_start = time.perf_counter()
        target_depth = min(iteration, idca.max_target_depth)
        reference_depth = min(iteration, idca.max_reference_depth)
        candidate_depths = self._candidate_depths
        if idca.adaptive_candidate_refinement:
            # only objects that still contribute bound width get refined
            candidate_depths[self._previous_widths > idca.adaptive_width_threshold] += 1
        else:
            candidate_depths[:] = iteration
        if idca.max_candidate_depth is not None:
            np.minimum(candidate_depths, idca.max_candidate_depth, out=candidate_depths)

        target_regions, target_masses = self._target_tree.partitions_arrays(target_depth)
        reference_regions, reference_masses = self._reference_tree.partitions_arrays(
            reference_depth
        )
        candidate_parts = [
            tree.partitions_arrays(int(depth))
            for tree, depth in zip(self._influence_trees, candidate_depths)
        ]
        max_candidate_partitions = max(parts[0].shape[0] for parts in candidate_parts)

        num_candidates = len(self._influence_trees)
        num_pairs = target_regions.shape[0] * reference_regions.shape[0]
        lower_matrix = np.empty((num_pairs, num_candidates))
        upper_matrix = np.empty((num_pairs, num_candidates))

        # positional memo keys: cached partition arrays are deterministic per
        # (tree, depth), so bounds-matrix columns are identified without
        # hashing coordinates.  Tree tokens are process-unique (never reused
        # after eviction or GC) and change with the axis policy, so a shared
        # pair-bounds cache can never serve bounds computed from a different
        # partitioning.
        cache = idca._pair_bounds
        cache_seconds = 0.0
        shared_before = (
            getattr(cache, "shared_hits", 0),
            getattr(cache, "shared_misses", 0),
            getattr(cache, "shared_publishes", 0),
        )
        missing: list[int] = []
        keys: Optional[list[tuple]] = None
        if cache is not None:
            target_key = (self._target_tree.token, target_depth)
            reference_key = (self._reference_tree.token, reference_depth)
            config_key = (idca.p, idca.criterion)
            keys = [
                ((tree.token, int(depth)), target_key, reference_key, config_key)
                for tree, depth in zip(self._influence_trees, candidate_depths)
            ]
            lookup_start = time.perf_counter()
            for c_idx, key in enumerate(keys):
                value = cache.get(key)
                if value is None:
                    missing.append(c_idx)
                else:
                    lower_matrix[:, c_idx] = value[0]
                    upper_matrix[:, c_idx] = value[1]
            cache_seconds += time.perf_counter() - lookup_start
        else:
            missing = list(range(num_candidates))

        kernel_backend = resolve_backend(idca.kernel_backend)
        kernel_seconds = 0.0
        if missing:
            # one batched kernel call covers every uncached candidate column;
            # the ragged CSR batch concatenates the cached base arrays with
            # no pad rows and is itself cached per depth-set, so an unchanged
            # frontier reuses the previous iteration's concatenation outright
            batch = csr_partitions_batch(
                [self._influence_trees[c_idx] for c_idx in missing],
                [int(candidate_depths[c_idx]) for c_idx in missing],
            )
            kernel_start = time.perf_counter()
            fresh_lower, fresh_upper = pdom_bounds_csr(
                batch.regions,
                batch.masses,
                batch.offsets,
                target_regions,
                reference_regions,
                p=idca.p,
                criterion=idca.criterion,
                backend=kernel_backend,
            )
            kernel_seconds = time.perf_counter() - kernel_start
            lower_matrix[:, missing] = fresh_lower
            upper_matrix[:, missing] = fresh_upper
            if cache is not None:
                store_start = time.perf_counter()
                for j, c_idx in enumerate(missing):
                    idca._store_pair_bounds(
                        keys[c_idx],
                        (fresh_lower[:, j].copy(), fresh_upper[:, j].copy()),
                    )
                cache_seconds += time.perf_counter() - store_start

        # pair weights in the same row-major (target-major) order as the
        # matrix rows; zero-mass pairs carry no possible worlds and are
        # dropped exactly as the scalar loop skipped them
        pair_weights = (target_masses[:, None] * reference_masses[None, :]).ravel()
        active: list[int] = []
        widths = np.zeros(num_candidates)
        for pair_idx in range(num_pairs):
            weight = float(pair_weights[pair_idx])
            if weight <= 0.0:
                continue
            widths += weight * (upper_matrix[pair_idx] - lower_matrix[pair_idx])
            active.append(pair_idx)
        self._previous_widths = widths

        pmf_lower, pmf_upper = domination_count_bounds_batch(
            lower_matrix[active],
            upper_matrix[active],
            complete_count=self._complete_count,
            total_objects=self._total_objects,
            k_cap=idca.k_cap,
        )
        bounds = combine_weighted_bounds_arrays(
            pair_weights[active], pmf_lower, pmf_upper, k_cap=idca.k_cap
        )
        self.result.bounds = bounds
        self.result.iterations.append(
            IterationStats(
                iteration=iteration,
                uncertainty=bounds.uncertainty(),
                elapsed_seconds=time.perf_counter() - iter_start,
                num_pairs=len(active),
                candidate_partitions=max_candidate_partitions,
                cache_seconds=cache_seconds,
                shared_hits=getattr(cache, "shared_hits", 0) - shared_before[0],
                shared_misses=getattr(cache, "shared_misses", 0) - shared_before[1],
                shared_publishes=getattr(cache, "shared_publishes", 0)
                - shared_before[2],
                kernel_backend=kernel_backend,
                kernel_seconds=kernel_seconds,
            )
        )
        self._iteration = iteration

        if self.stop is not None and self.stop.should_stop(bounds, iteration):
            self._finished = True
        elif bounds.is_exact():
            self._finished = True
        elif iteration >= self.max_iterations:
            self._finished = True
        self.result.decision = getattr(self.stop, "decision", None)
        return True

    def run(self) -> IDCAResult:
        """Drain the run: step until finished, then return the result."""
        while self.step():
            pass
        return self.result
