"""IDCA — Iterative Domination Count Approximation (Algorithm 1).

This is the paper's main algorithm.  Given an uncertain database, a target
object ``B`` and a reference object ``R``, it

1. classifies every database object with the complete-domination filter
   (objects that always dominate ``B``, objects that never do, and the
   *influence objects* whose relation is uncertain);
2. iteratively decomposes ``B``, ``R`` and the influence objects one kd-tree
   level at a time;
3. in every iteration builds, for each pair of partitions ``(B', R')``, an
   uncertain generating function over the per-influence-object domination
   bounds, and combines the per-pair domination-count bounds weighted by
   ``P(B') * P(R')`` (Section IV-E);
4. stops as soon as the supplied stop criterion is satisfied (e.g. a threshold
   predicate became decidable) or the iteration budget is exhausted.

The result carries the final conservative/progressive PMF bounds of
``DomCount(B, R)`` plus per-iteration statistics used by the experiments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from ..geometry import DominationCriterion
from ..uncertain import DecompositionTree, UncertainDatabase, UncertainObject
from ..uncertain.decomposition import AxisPolicy
from .domination import complete_domination_filter, pdom_bounds_from_partitions
from .domination_count import (
    DominationCountBounds,
    combine_weighted_bounds,
    domination_count_bounds,
)
from .stop_criteria import StopCriterion

__all__ = ["IDCA", "IDCAResult", "IterationStats"]

ObjectOrIndex = Union[UncertainObject, int, np.integer]


@dataclass(frozen=True)
class IterationStats:
    """Statistics of one refinement iteration."""

    iteration: int
    uncertainty: float
    elapsed_seconds: float
    num_pairs: int
    candidate_partitions: int


@dataclass
class IDCAResult:
    """Outcome of one IDCA run.

    Attributes
    ----------
    bounds:
        Final PMF bounds of ``DomCount(B, R)``.
    complete_count:
        Number of objects that dominate the target in every possible world.
    influence_indices:
        Database indices of the influence objects that were refined.
    pruned_count:
        Number of objects that can never dominate the target.
    iterations:
        Per-iteration statistics (entry 0 describes the filter-only state).
    decision:
        Outcome of a threshold stop criterion, when one was supplied:
        ``True`` (predicate holds), ``False`` (predicate violated) or ``None``
        (undecided within the iteration budget).
    """

    bounds: DominationCountBounds
    complete_count: int
    influence_indices: np.ndarray
    pruned_count: int
    iterations: list[IterationStats] = field(default_factory=list)
    decision: Optional[bool] = None

    @property
    def num_influence(self) -> int:
        """Number of influence objects."""
        return int(self.influence_indices.shape[0])

    @property
    def num_iterations(self) -> int:
        """Number of refinement iterations actually executed."""
        return max(0, len(self.iterations) - 1)

    @property
    def total_seconds(self) -> float:
        """Total wall-clock time spent (filter step plus refinement)."""
        return float(sum(stat.elapsed_seconds for stat in self.iterations))

    def uncertainty(self) -> float:
        """Accumulated uncertainty of the final bounds."""
        return self.bounds.uncertainty()


class IDCA:
    """Iterative Domination Count Approximation driver.

    Parameters
    ----------
    database:
        The uncertain database the domination counts are computed against.
    p:
        ``Lp`` norm parameter of the distance function (finite, ``>= 1``).
    criterion:
        Complete-domination criterion: ``"optimal"`` (Corollary 1, default) or
        ``"minmax"`` — the latter is the baseline of Figure 6.
    axis_policy:
        Split-axis policy of the kd-tree decomposition.
    max_target_depth, max_reference_depth:
        Caps on the decomposition depth of the target and reference objects;
        the number of partition pairs per iteration is bounded by
        ``2^max_target_depth * 2^max_reference_depth``.
    max_candidate_depth:
        Optional cap on the decomposition depth of influence objects
        (the kd-tree height ``h`` of Section V).  ``None`` lets the depth grow
        with the iteration number.
    k_cap:
        Optional truncation bound for kNN/RkNN predicates (Section VI): PMF
        bounds are only maintained exactly for counts ``<= k_cap``.
    adaptive_candidate_refinement:
        When True, an influence object is only decomposed further while its
        aggregated domination-probability bound width still exceeds
        ``adaptive_width_threshold``.  This is the refinement heuristic the
        paper lists as future work: effort concentrates on the objects that
        still contribute uncertainty instead of splitting every object every
        iteration.
    adaptive_width_threshold:
        Bound-width budget per influence object below which adaptive
        refinement stops splitting that object.
    """

    def __init__(
        self,
        database: UncertainDatabase,
        p: float = 2.0,
        criterion: DominationCriterion = "optimal",
        axis_policy: AxisPolicy = "round_robin",
        max_target_depth: int = 3,
        max_reference_depth: int = 3,
        max_candidate_depth: Optional[int] = None,
        k_cap: Optional[int] = None,
        adaptive_candidate_refinement: bool = False,
        adaptive_width_threshold: float = 0.01,
    ):
        if max_target_depth < 0 or max_reference_depth < 0:
            raise ValueError("decomposition depth caps must be non-negative")
        if max_candidate_depth is not None and max_candidate_depth < 1:
            raise ValueError("max_candidate_depth must be at least 1")
        if adaptive_width_threshold < 0:
            raise ValueError("adaptive_width_threshold must be non-negative")
        self.database = database
        self.p = p
        self.criterion = criterion
        self.axis_policy = axis_policy
        self.max_target_depth = max_target_depth
        self.max_reference_depth = max_reference_depth
        self.max_candidate_depth = max_candidate_depth
        self.k_cap = k_cap
        self.adaptive_candidate_refinement = adaptive_candidate_refinement
        self.adaptive_width_threshold = adaptive_width_threshold
        self._trees: dict[int, DecompositionTree] = {}

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _tree_for(self, obj: UncertainObject) -> DecompositionTree:
        """Decomposition tree of ``obj``, cached per object identity."""
        key = id(obj)
        tree = self._trees.get(key)
        if tree is None:
            tree = DecompositionTree(obj, axis_policy=self.axis_policy)
            self._trees[key] = tree
        return tree

    def _resolve(
        self, spec: ObjectOrIndex, exclude: set[int]
    ) -> UncertainObject:
        """Turn an object-or-index specification into an object.

        Database indices are added to the exclusion set so an object never
        counts towards its own domination count.
        """
        if isinstance(spec, (int, np.integer)):
            index = int(spec)
            if not 0 <= index < len(self.database):
                raise IndexError(f"object index {index} out of range")
            exclude.add(index)
            return self.database[index]
        return spec

    # ------------------------------------------------------------------ #
    # main entry point
    # ------------------------------------------------------------------ #
    def domination_count(
        self,
        target: ObjectOrIndex,
        reference: ObjectOrIndex,
        stop: Optional[StopCriterion] = None,
        max_iterations: int = 10,
        exclude_indices: Optional[Sequence[int]] = None,
    ) -> IDCAResult:
        """Approximate the PMF of ``DomCount(target, reference)``.

        Parameters
        ----------
        target, reference:
            Uncertain objects, or integer positions of database members.
        stop:
            Optional stop criterion evaluated after every iteration.
        max_iterations:
            Hard budget on the number of refinement iterations.
        exclude_indices:
            Additional database positions to ignore (on top of the positions
            of ``target`` / ``reference`` when given as indices).
        """
        if max_iterations < 0:
            raise ValueError("max_iterations must be non-negative")
        exclude: set[int] = set(int(i) for i in exclude_indices) if exclude_indices else set()
        target_obj = self._resolve(target, exclude)
        reference_obj = self._resolve(reference, exclude)

        start = time.perf_counter()
        filter_result = complete_domination_filter(
            self.database,
            target_obj,
            reference_obj,
            exclude_indices=exclude,
            p=self.p,
            criterion=self.criterion,
        )
        complete_count = filter_result.complete_count
        influence = filter_result.influence_indices
        total_objects = len(self.database) - len(exclude)

        bounds = domination_count_bounds(
            np.zeros(influence.shape[0]),
            np.ones(influence.shape[0]),
            complete_count=complete_count,
            total_objects=total_objects,
            k_cap=self.k_cap,
        )
        iterations = [
            IterationStats(
                iteration=0,
                uncertainty=bounds.uncertainty(),
                elapsed_seconds=time.perf_counter() - start,
                num_pairs=1,
                candidate_partitions=1,
            )
        ]
        result = IDCAResult(
            bounds=bounds,
            complete_count=complete_count,
            influence_indices=influence,
            pruned_count=int(filter_result.pruned_indices.shape[0]),
            iterations=iterations,
        )

        decision_stop = stop
        if decision_stop is not None and decision_stop.should_stop(bounds, 0):
            result.decision = getattr(decision_stop, "decision", None)
            return result
        if influence.shape[0] == 0 or max_iterations == 0:
            result.decision = getattr(decision_stop, "decision", None)
            return result

        target_tree = self._tree_for(target_obj)
        reference_tree = self._tree_for(reference_obj)
        influence_trees = [self._tree_for(self.database[int(i)]) for i in influence]
        num_candidates = len(influence_trees)
        candidate_depths = np.zeros(num_candidates, dtype=int)
        previous_widths = np.full(num_candidates, np.inf)

        for iteration in range(1, max_iterations + 1):
            iter_start = time.perf_counter()
            target_depth = min(iteration, self.max_target_depth)
            reference_depth = min(iteration, self.max_reference_depth)
            if self.adaptive_candidate_refinement:
                # only objects that still contribute bound width get refined
                candidate_depths[previous_widths > self.adaptive_width_threshold] += 1
            else:
                candidate_depths[:] = iteration
            if self.max_candidate_depth is not None:
                np.minimum(candidate_depths, self.max_candidate_depth, out=candidate_depths)

            target_regions, target_masses = target_tree.partitions_arrays(target_depth)
            reference_regions, reference_masses = reference_tree.partitions_arrays(
                reference_depth
            )
            candidate_parts = [
                tree.partitions_arrays(int(depth))
                for tree, depth in zip(influence_trees, candidate_depths)
            ]
            max_candidate_partitions = max(
                parts[0].shape[0] for parts in candidate_parts
            )

            pair_results: list[tuple[float, DominationCountBounds]] = []
            widths = np.zeros(num_candidates)
            for b_idx in range(target_regions.shape[0]):
                for r_idx in range(reference_regions.shape[0]):
                    weight = float(target_masses[b_idx] * reference_masses[r_idx])
                    if weight <= 0.0:
                        continue
                    lower = np.empty(num_candidates)
                    upper = np.empty(num_candidates)
                    for c_idx, (regions, masses) in enumerate(candidate_parts):
                        lower[c_idx], upper[c_idx] = pdom_bounds_from_partitions(
                            regions,
                            masses,
                            target_regions[b_idx],
                            reference_regions[r_idx],
                            p=self.p,
                            criterion=self.criterion,
                        )
                    widths += weight * (upper - lower)
                    pair_results.append(
                        (
                            weight,
                            domination_count_bounds(
                                lower,
                                upper,
                                complete_count=complete_count,
                                total_objects=total_objects,
                                k_cap=self.k_cap,
                            ),
                        )
                    )
            previous_widths = widths

            bounds = combine_weighted_bounds(pair_results, k_cap=self.k_cap)
            result.bounds = bounds
            result.iterations.append(
                IterationStats(
                    iteration=iteration,
                    uncertainty=bounds.uncertainty(),
                    elapsed_seconds=time.perf_counter() - iter_start,
                    num_pairs=len(pair_results),
                    candidate_partitions=max_candidate_partitions,
                )
            )

            if decision_stop is not None and decision_stop.should_stop(bounds, iteration):
                break
            if bounds.is_exact():
                break

        result.decision = getattr(decision_stop, "decision", None)
        return result
