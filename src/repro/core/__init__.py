"""Core contribution: domination bounds, uncertain generating functions, IDCA."""

from .domination import (
    CompleteDominationResult,
    complete_domination_filter,
    complete_domination_scan,
    pdom_bounds,
    pdom_bounds_batch,
    pdom_bounds_from_partitions,
    probabilistic_domination_bounds,
)
from .domination_count import (
    DominationCountBounds,
    combine_weighted_bounds,
    combine_weighted_bounds_arrays,
    domination_count_bounds,
    domination_count_bounds_batch,
)
from .generating_functions import (
    UncertainGeneratingFunction,
    poisson_binomial_pmf,
    regular_gf_bounds,
    ugf_pmf_bounds_batch,
)
from .idca import IDCA, IDCAResult, IDCARun, IterationStats
from .kernels import (
    available_backends,
    default_backend,
    kernel_environment,
    kernel_stats,
    numba_available,
    pdom_bounds_csr,
    resolve_backend,
    total_kernel_seconds,
)
from .stop_criteria import (
    AnyOf,
    MaxIterations,
    NeverStop,
    StopCriterion,
    ThresholdDecision,
    UncertaintyBelow,
)

__all__ = [
    "CompleteDominationResult",
    "complete_domination_filter",
    "complete_domination_scan",
    "pdom_bounds",
    "pdom_bounds_batch",
    "pdom_bounds_from_partitions",
    "probabilistic_domination_bounds",
    "DominationCountBounds",
    "combine_weighted_bounds",
    "combine_weighted_bounds_arrays",
    "domination_count_bounds",
    "domination_count_bounds_batch",
    "UncertainGeneratingFunction",
    "poisson_binomial_pmf",
    "regular_gf_bounds",
    "ugf_pmf_bounds_batch",
    "IDCA",
    "IDCAResult",
    "IDCARun",
    "IterationStats",
    "available_backends",
    "default_backend",
    "kernel_environment",
    "kernel_stats",
    "numba_available",
    "pdom_bounds_csr",
    "resolve_backend",
    "total_kernel_seconds",
    "AnyOf",
    "MaxIterations",
    "NeverStop",
    "StopCriterion",
    "ThresholdDecision",
    "UncertaintyBelow",
]
