"""Generating functions for sums of independent Bernoulli variables.

Three tools are provided, mirroring Section IV-C/D of the paper:

* :func:`poisson_binomial_pmf` — the classical (regular) generating-function
  expansion: the exact PMF of a sum of independent, non-identically
  distributed Bernoulli variables with *known* success probabilities.
* :class:`UncertainGeneratingFunction` (UGF) — the paper's extension to
  Bernoulli variables whose success probabilities are only known by a lower
  and an upper bound.  The expansion of

  .. math::

      F^N = \\prod_i \\big( P_{LB}(X_i)\\,x
              + (P_{UB}(X_i) - P_{LB}(X_i))\\,y
              + (1 - P_{UB}(X_i)) \\big) = \\sum_{i,j} c_{i,j} x^i y^j

  yields coefficients ``c_{i,j}`` = probability that the sum is *definitely*
  at least ``i`` and *possibly* up to ``i + j``.  Lemma 4 then gives lower and
  upper bounds for ``P(sum = k)``.
* :func:`regular_gf_bounds` — the alternative discussed in the paper's
  technical report: two regular generating functions evaluated at the lower
  and upper probability vectors.  Kept for the ablation benchmark comparing
  bound tightness and runtime against the UGF.

The ``k_cap`` parameter implements the Section VI optimisation for kNN/RkNN
predicates: coefficients that can only influence ``P(sum = x)`` for
``x > k_cap`` are merged, reducing the cost per multiplication step from
``O(N^2)`` to ``O(k^2)`` while the bounds for all ``x <= k_cap`` stay exact.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "poisson_binomial_pmf",
    "UncertainGeneratingFunction",
    "ugf_pmf_bounds_batch",
    "regular_gf_bounds",
]


def _as_prob_array(values: Sequence[float], name: str) -> np.ndarray:
    arr = np.atleast_1d(np.asarray(values, dtype=float))
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional")
    if np.any(arr < -1e-12) or np.any(arr > 1.0 + 1e-12):
        raise ValueError(f"{name} must contain probabilities in [0, 1]")
    return np.clip(arr, 0.0, 1.0)


def poisson_binomial_pmf(
    probabilities: Sequence[float], k_cap: Optional[int] = None
) -> np.ndarray:
    """Exact PMF of a sum of independent Bernoulli variables.

    Implemented as the iterative expansion of the regular generating function
    ``prod_i (1 - p_i + p_i x)`` (equivalently, the Poisson-binomial
    recurrence), which is ``O(N^2)`` — or ``O(N * k_cap)`` when only the
    probabilities of sums ``<= k_cap`` are required.

    Parameters
    ----------
    probabilities:
        Success probabilities ``p_i``.
    k_cap:
        When given, coefficients for sums greater than ``k_cap`` are merged
        into the last entry of the returned array, whose length becomes
        ``k_cap + 2`` (entries ``0..k_cap`` exact, entry ``k_cap + 1`` =
        ``P(sum > k_cap)``).

    Returns
    -------
    numpy.ndarray
        ``pmf[k] = P(sum = k)``; length ``N + 1`` without ``k_cap``.
    """
    probs = _as_prob_array(probabilities, "probabilities")
    n = probs.shape[0]
    if k_cap is not None and k_cap < 0:
        raise ValueError("k_cap must be non-negative")
    size = n + 1 if k_cap is None else min(n, k_cap + 1) + 1
    pmf = np.zeros(size, dtype=float)
    pmf[0] = 1.0
    top = 0
    for p in probs:
        top = min(top + 1, size - 1)
        # multiply the polynomial by (1 - p + p*x); the overflow into the last
        # bucket keeps total mass 1 when k_cap truncates the expansion
        shifted = np.zeros_like(pmf)
        shifted[1 : top + 1] = pmf[:top]
        shifted[top] += pmf[top]
        pmf = pmf * (1.0 - p) + shifted * p
    return pmf


class UncertainGeneratingFunction:
    """Uncertain generating function over probability bounds (Section IV-C).

    Parameters
    ----------
    lower, upper:
        Per-variable lower and upper bounds of the Bernoulli success
        probabilities, with ``0 <= lower[i] <= upper[i] <= 1``.
    k_cap:
        Optional truncation bound (Section VI).  Bounds queried for counts
        larger than ``k_cap`` raise :class:`ValueError`.

    Attributes
    ----------
    coefficients:
        2-D array ``c[i, j]`` — probability that the sum is definitely at
        least ``i`` and possibly up to ``i + j``.  With truncation, index
        ``k_cap + 1`` acts as an absorbing bucket.
    """

    def __init__(
        self,
        lower: Sequence[float],
        upper: Sequence[float],
        k_cap: Optional[int] = None,
    ):
        lower_arr = _as_prob_array(lower, "lower")
        upper_arr = _as_prob_array(upper, "upper")
        if lower_arr.shape != upper_arr.shape:
            raise ValueError("lower and upper must have the same length")
        if np.any(lower_arr > upper_arr + 1e-12):
            raise ValueError("lower bounds must not exceed upper bounds")
        upper_arr = np.maximum(lower_arr, upper_arr)
        if k_cap is not None and k_cap < 0:
            raise ValueError("k_cap must be non-negative")

        self.lower = lower_arr
        self.upper = upper_arr
        self.n = lower_arr.shape[0]
        self.k_cap = k_cap

        cap = self.n if k_cap is None else min(self.n, k_cap + 1)
        self._cap = cap
        self.coefficients = self._expand(cap)

    # ------------------------------------------------------------------ #
    # expansion
    # ------------------------------------------------------------------ #
    def _expand(self, cap: int) -> np.ndarray:
        """Iteratively multiply the per-variable trinomials.

        ``cap`` is the largest index kept exactly; larger ``i`` or ``i + j``
        are clamped onto the boundary, which preserves total probability mass
        and the exactness of all coefficients with ``i + j <= cap``
        (coefficients with ``i <= cap < i + j`` keep an exact ``i`` but a
        merged ``j``, exactly as described in Section VI).
        """
        size = cap + 1
        coeff = np.zeros((size, size), dtype=float)
        coeff[0, 0] = 1.0
        for p_lb, p_ub in zip(self.lower, self.upper):
            p_none = 1.0 - p_ub
            p_maybe = p_ub - p_lb
            new = coeff * p_none
            if p_lb > 0.0:
                shifted = np.zeros_like(coeff)
                shifted[1:size, :] += coeff[: size - 1, :]
                # definite hits beyond the cap collapse onto the last row
                shifted[size - 1, :] += coeff[size - 1, :]
                new += shifted * p_lb
            if p_maybe > 0.0:
                shifted = np.zeros_like(coeff)
                shifted[:, 1:size] += coeff[:, : size - 1]
                shifted[:, size - 1] += coeff[:, size - 1]
                new += shifted * p_maybe
            coeff = new
        return coeff

    # ------------------------------------------------------------------ #
    # bound queries (Lemma 4)
    # ------------------------------------------------------------------ #
    def _check_k(self, k: int) -> None:
        if k < 0:
            raise ValueError("k must be non-negative")
        if self.k_cap is not None and k > self.k_cap:
            raise ValueError(
                f"count {k} exceeds the truncation bound k_cap={self.k_cap}"
            )

    def count_lower_bound(self, k: int) -> float:
        """Lower bound of ``P(sum = k)`` — the coefficient ``c_{k,0}``."""
        self._check_k(k)
        if k >= self.coefficients.shape[0]:
            return 0.0
        if k == self._cap and self.n > self._cap:
            # the last row also holds mass of definite counts > cap
            return 0.0
        return float(self.coefficients[k, 0])

    def count_upper_bound(self, k: int) -> float:
        """Upper bound of ``P(sum = k)`` — ``sum_{i <= k, i + j >= k} c_{i,j}``."""
        self._check_k(k)
        size = self.coefficients.shape[0]
        total = 0.0
        for i in range(0, min(k, size - 1) + 1):
            j_min = max(0, k - i)
            total += float(self.coefficients[i, j_min:].sum())
        return min(total, 1.0)

    def cdf_lower_bound(self, k: int) -> float:
        """Lower bound of ``P(sum <= k)`` — mass with ``i + j <= k``."""
        self._check_k(k)
        size = self.coefficients.shape[0]
        total = 0.0
        for i in range(0, min(k, size - 1) + 1):
            j_max = k - i
            if i == size - 1 and self.n > self._cap:
                # absorbing row: definite count may exceed the cap
                continue
            total += float(self.coefficients[i, : j_max + 1].sum())
        return min(total, 1.0)

    def cdf_upper_bound(self, k: int) -> float:
        """Upper bound of ``P(sum <= k)`` — mass with ``i <= k``."""
        self._check_k(k)
        size = self.coefficients.shape[0]
        if k >= size - 1 and self.n <= self._cap:
            return 1.0
        total = float(self.coefficients[: min(k, size - 1) + 1, :].sum())
        if k >= size - 1 and self.n > self._cap:
            # cannot include the absorbing row, it may hold counts > k
            total = float(self.coefficients[: size - 1, :].sum())
        return min(total, 1.0)

    def pmf_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Lower/upper bounds for ``P(sum = k)`` for all representable ``k``.

        Without truncation the arrays have length ``n + 1``; with truncation
        length ``k_cap + 1``.
        """
        top = self.n if self.k_cap is None else min(self.n, self.k_cap)
        lower = np.array([self.count_lower_bound(k) for k in range(top + 1)])
        upper = np.array([self.count_upper_bound(k) for k in range(top + 1)])
        return lower, upper

    # ------------------------------------------------------------------ #
    # conveniences
    # ------------------------------------------------------------------ #
    @classmethod
    def from_exact(cls, probabilities: Sequence[float], k_cap: Optional[int] = None):
        """UGF degenerating to a regular generating function (lower == upper)."""
        return cls(probabilities, probabilities, k_cap=k_cap)

    def total_mass(self) -> float:
        """Total probability mass of the expansion (should be 1)."""
        return float(self.coefficients.sum())


def ugf_pmf_bounds_batch(
    lower: np.ndarray,
    upper: np.ndarray,
    k_cap: Optional[int] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """UGF PMF bounds for a whole batch of probability-bound vectors at once.

    Expands ``num_batches`` uncertain generating functions — one per row of
    ``lower`` / ``upper``, shape ``(num_batches, n)`` — in a single pass: the
    trinomial-multiplication loop runs once over the ``n`` variables with
    every polynomial operation vectorised across the batch axis.  IDCA uses
    this to turn the ``(num_pairs, num_candidates)`` bound matrices of the
    batched pair-bounds kernel into per-pair domination-count PMF bounds
    without constructing one :class:`UncertainGeneratingFunction` per pair.

    The arithmetic is element-for-element the sequence of operations the
    scalar class performs (the scalar path's skipped ``p == 0`` branches add
    exact zeros here), so each row of the result is bit-identical to
    ``UncertainGeneratingFunction(lower[i], upper[i], k_cap).pmf_bounds()``.

    Returns ``(pmf_lower, pmf_upper)`` of shape ``(num_batches, top + 1)``
    with ``top = n`` (or ``min(n, k_cap)`` under truncation).
    """
    lower_arr = np.atleast_2d(np.asarray(lower, dtype=float))
    upper_arr = np.atleast_2d(np.asarray(upper, dtype=float))
    if lower_arr.ndim != 2 or lower_arr.shape != upper_arr.shape:
        raise ValueError("lower and upper must be 2-D arrays of identical shape")
    for name, arr in (("lower", lower_arr), ("upper", upper_arr)):
        if np.any(arr < -1e-12) or np.any(arr > 1.0 + 1e-12):
            raise ValueError(f"{name} must contain probabilities in [0, 1]")
    if np.any(lower_arr > upper_arr + 1e-12):
        raise ValueError("lower bounds must not exceed upper bounds")
    lower_arr = np.clip(lower_arr, 0.0, 1.0)
    upper_arr = np.maximum(lower_arr, np.clip(upper_arr, 0.0, 1.0))
    if k_cap is not None and k_cap < 0:
        raise ValueError("k_cap must be non-negative")

    num_batches, n = lower_arr.shape
    cap = n if k_cap is None else min(n, k_cap + 1)
    size = cap + 1
    coeff = np.zeros((num_batches, size, size), dtype=float)
    coeff[:, 0, 0] = 1.0
    for i in range(n):
        p_lb = lower_arr[:, i, None, None]
        p_ub = upper_arr[:, i, None, None]
        new = coeff * (1.0 - p_ub)
        shifted = np.zeros_like(coeff)
        shifted[:, 1:size, :] += coeff[:, : size - 1, :]
        shifted[:, size - 1, :] += coeff[:, size - 1, :]
        new += shifted * p_lb
        shifted = np.zeros_like(coeff)
        shifted[:, :, 1:size] += coeff[:, :, : size - 1]
        shifted[:, :, size - 1] += coeff[:, :, size - 1]
        new += shifted * (p_ub - p_lb)
        coeff = new

    top = n if k_cap is None else min(n, k_cap)
    pmf_lower = np.zeros((num_batches, top + 1), dtype=float)
    pmf_upper = np.empty((num_batches, top + 1), dtype=float)
    for k in range(top + 1):
        if not (k == cap and n > cap):
            # the last row also holds mass of definite counts > cap
            pmf_lower[:, k] = coeff[:, k, 0]
        total = np.zeros(num_batches, dtype=float)
        for i in range(0, min(k, size - 1) + 1):
            total += coeff[:, i, max(0, k - i) :].sum(axis=-1)
        pmf_upper[:, k] = np.minimum(total, 1.0)
    return pmf_lower, pmf_upper


def regular_gf_bounds(
    lower: Sequence[float],
    upper: Sequence[float],
    k_cap: Optional[int] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Domination-count bounds derived from two *regular* generating functions.

    One expansion uses the progressive (lower) probability bounds, one the
    conservative (upper) bounds; PMF bounds are then recovered from the two
    CDFs.  This is the alternative discussed in Section IV-D ("Discussion")
    and in the paper's technical report; the UGF is preferred because it
    produces the bounds directly and never yields looser brackets — the
    property the ablation benchmark and the property-based tests verify.

    Returns ``(pmf_lower, pmf_upper)`` arrays covering counts
    ``0 .. len(lower)`` (or ``0 .. k_cap``).
    """
    lower_arr = _as_prob_array(lower, "lower")
    upper_arr = _as_prob_array(upper, "upper")
    if lower_arr.shape != upper_arr.shape:
        raise ValueError("lower and upper must have the same length")
    n = lower_arr.shape[0]
    top = n if k_cap is None else min(n, k_cap)

    pmf_from_lower = poisson_binomial_pmf(lower_arr, k_cap=k_cap)
    pmf_from_upper = poisson_binomial_pmf(upper_arr, k_cap=k_cap)
    # with k_cap, the final overflow bucket is excluded from the CDFs below
    cdf_from_lower = np.cumsum(pmf_from_lower[: top + 1])
    cdf_from_upper = np.cumsum(pmf_from_upper[: top + 1])

    pmf_lower = np.zeros(top + 1)
    pmf_upper = np.zeros(top + 1)
    for k in range(top + 1):
        cdf_ub_k = cdf_from_lower[k]  # stochastically smallest sum
        cdf_lb_k = cdf_from_upper[k]  # stochastically largest sum
        prev_ub = cdf_from_lower[k - 1] if k > 0 else 0.0
        prev_lb = cdf_from_upper[k - 1] if k > 0 else 0.0
        pmf_upper[k] = min(1.0, max(0.0, cdf_ub_k - prev_lb))
        pmf_lower[k] = max(0.0, cdf_lb_k - prev_ub)
    return pmf_lower, pmf_upper
