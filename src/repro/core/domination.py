"""Probabilistic similarity domination (Section III of the paper).

Given uncertain objects ``A``, ``B`` and a reference object ``R``, this module
computes

* *complete domination* — whether ``PDom(A, B, R) = 1`` holds regardless of
  the object PDFs, decided by the optimal rectangle criterion (Corollary 1);
* *probabilistic domination bounds* — a conservative lower bound
  ``PDomLB(A, B, R)`` and a progressive upper bound ``PDomUB(A, B, R)`` of the
  probability that ``A`` dominates ``B`` w.r.t. ``R``, obtained from
  disjunctive decompositions of the uncertainty regions (Lemmas 1 and 2)
  without integrating any PDF.

The functions come in two flavours: an object-level API working on
:class:`~repro.uncertain.base.UncertainObject` instances (the public entry
point, used by the examples and the per-pair ``PDom`` queries) and low-level
vectorised kernels on partition arrays (used inside the IDCA loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..geometry import DominationCriterion, Rectangle, domination_bulk
from ..uncertain import DecompositionTree, UncertainDatabase, UncertainObject
from .kernels import validate_partition_grids

__all__ = [
    "CompleteDominationResult",
    "complete_domination_scan",
    "complete_domination_filter",
    "pdom_bounds_from_partitions",
    "pdom_bounds_batch",
    "pdom_bounds",
    "probabilistic_domination_bounds",
]

# cap on the number of broadcast elements materialised at once by the batched
# kernel; larger grids are processed in slabs along the target-partition axis
_BATCH_BLOCK_ELEMENTS = 1 << 22


# ---------------------------------------------------------------------- #
# complete domination
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class CompleteDominationResult:
    """Outcome of the complete-domination filter step for one target object.

    Attributes
    ----------
    complete_count:
        Number of database objects that dominate the target in *every*
        possible world (``PDom = 1``).
    influence_indices:
        Database indices of the objects whose domination relation to the
        target is uncertain (``0 < PDom < 1``); only these objects need to be
        refined by IDCA.
    pruned_indices:
        Indices of objects that dominate the target in *no* possible world
        (``PDom = 0``); they never contribute to the domination count.
    """

    complete_count: int
    influence_indices: np.ndarray
    pruned_indices: np.ndarray

    @property
    def num_influence(self) -> int:
        """Number of influence objects."""
        return int(self.influence_indices.shape[0])


def complete_domination_scan(
    candidate_mbrs: np.ndarray,
    target_mbr: np.ndarray,
    reference_mbr: np.ndarray,
    p: float = 2.0,
    criterion: DominationCriterion = "optimal",
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised complete-domination scan over candidate MBRs.

    Parameters
    ----------
    candidate_mbrs:
        Array of shape ``(n, d, 2)`` with the MBRs of the candidate objects.
    target_mbr, reference_mbr:
        MBRs (shape ``(d, 2)``) of the target object ``B`` and the reference
        object ``R``.

    Returns
    -------
    (dominating, dominated):
        Two boolean arrays of length ``n``: ``dominating[i]`` is True when
        candidate ``i`` completely dominates ``B`` w.r.t. ``R``;
        ``dominated[i]`` when ``B`` completely dominates candidate ``i``
        (candidate ``i`` can then never contribute to the domination count).
    """
    dominating = domination_bulk(candidate_mbrs, target_mbr, reference_mbr, p, criterion)
    dominated = domination_bulk(target_mbr, candidate_mbrs, reference_mbr, p, criterion)
    return dominating, dominated


def complete_domination_filter(
    database: UncertainDatabase,
    target: UncertainObject,
    reference: UncertainObject,
    exclude_indices: Optional[set[int]] = None,
    p: float = 2.0,
    criterion: DominationCriterion = "optimal",
) -> CompleteDominationResult:
    """Filter step of Algorithm 1: classify every database object.

    ``exclude_indices`` removes database positions from consideration — e.g.
    the position of ``target`` or ``reference`` themselves when they are
    database members (an object never dominates itself).
    """
    mbrs = database.mbrs()
    target_mbr = target.mbr.to_array()
    reference_mbr = reference.mbr.to_array()
    dominating, dominated = complete_domination_scan(
        mbrs, target_mbr, reference_mbr, p=p, criterion=criterion
    )

    mask = np.ones(len(database), dtype=bool)
    if exclude_indices:
        for idx in exclude_indices:
            if 0 <= idx < len(database):
                mask[idx] = False

    complete_count = int(np.count_nonzero(dominating & mask))
    pruned = np.flatnonzero(dominated & ~dominating & mask)
    influence = np.flatnonzero(~dominating & ~dominated & mask)
    return CompleteDominationResult(
        complete_count=complete_count,
        influence_indices=influence,
        pruned_indices=pruned,
    )


# ---------------------------------------------------------------------- #
# probabilistic domination bounds
# ---------------------------------------------------------------------- #
def pdom_bounds_from_partitions(
    candidate_regions: np.ndarray,
    candidate_masses: np.ndarray,
    target_region: np.ndarray,
    reference_region: np.ndarray,
    p: float = 2.0,
    criterion: DominationCriterion = "optimal",
) -> tuple[float, float]:
    """Bounds of ``PDom(A, B', R')`` with only ``A`` decomposed (Lemma 3 setting).

    Parameters
    ----------
    candidate_regions, candidate_masses:
        Partition rectangles (``(m, d, 2)``) and their probability masses of
        the candidate object ``A``.
    target_region, reference_region:
        Fixed rectangles ``B'`` and ``R'`` (shape ``(d, 2)``), e.g. whole
        objects or partitions of the disjunctive-world refinement.

    Returns
    -------
    (lower, upper):
        ``lower`` accumulates the masses of partitions of ``A`` that
        completely dominate ``B'``; ``upper`` is ``1`` minus the mass of the
        partitions that are completely dominated by ``B'`` (Lemma 2).
    """
    dominating = domination_bulk(
        candidate_regions, target_region, reference_region, p, criterion
    )
    dominated = domination_bulk(
        target_region, candidate_regions, reference_region, p, criterion
    )
    total = float(candidate_masses.sum())
    lower = float(candidate_masses[dominating].sum())
    upper = total - float(candidate_masses[dominated].sum())
    # guard against floating point drift; bounds are probabilities
    lower = min(max(lower, 0.0), 1.0)
    upper = min(max(upper, lower), 1.0)
    return lower, upper


def pdom_bounds_batch(
    candidate_regions: np.ndarray,
    candidate_masses: np.ndarray,
    target_regions: np.ndarray,
    reference_regions: np.ndarray,
    p: float = 2.0,
    criterion: DominationCriterion = "optimal",
    partition_counts: Optional[np.ndarray] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched ``PDom`` bounds: all candidates against all partition pairs.

    This is the vectorised generalisation of
    :func:`pdom_bounds_from_partitions` — the four spatial-domination tests of
    every *(target partition, reference partition, candidate, candidate
    partition)* combination are evaluated by one broadcast
    :func:`~repro.geometry.domination_bulk` dispatch instead of one tiny call
    per triple, which is what the IDCA hot path spends its time on otherwise.

    This padded-dense layout is the **legacy** batched kernel: the hot path
    now batches candidates in the ragged CSR layout consumed by
    :func:`repro.core.kernels.pdom_bounds_csr`, which carries no pad rows and
    supports pluggable backends.  This function is retained as a reference
    implementation and compatibility surface for external callers.

    Parameters
    ----------
    candidate_regions, candidate_masses:
        Dense stacked partition tensors of shape ``(c, m, d, 2)`` and
        ``(c, m)``.  Candidates at different adaptive decomposition depths are
        padded to the common width ``m`` with zero-mass rows (see
        ``DecompositionTree.partitions_arrays(depth, pad_to=...)``); padding
        can never influence a bound because every mass reduction below only
        runs over a candidate's own ``partition_counts[i]`` leading rows.
    target_regions, reference_regions:
        Partition grids ``(n_b, d, 2)`` and ``(n_r, d, 2)`` of the target
        object ``B`` and the reference object ``R``.
    partition_counts:
        Number of real (non-padding) partitions per candidate; defaults to
        ``m`` for every candidate (no padding).  A count of 0 is legal — an
        object whose decomposition carries no probability mass (e.g. a
        negligible existence probability) gets the same ``(0, 0)`` bounds the
        scalar path produces for empty partition arrays.

    Returns
    -------
    (lower, upper):
        Arrays of shape ``(n_b * n_r, c)``; row ``b_idx * n_r + r_idx`` holds
        the per-candidate ``PDom(A_i, B', R')`` bounds of that partition pair,
        clamped to probabilities exactly like the scalar path.  Each column
        depends only on its own candidate's partitions and the two grids, so
        columns are cacheable and independent of which candidates happened to
        be batched together.
    """
    candidate_regions = np.asarray(candidate_regions, dtype=float)
    candidate_masses = np.asarray(candidate_masses, dtype=float)
    if candidate_regions.ndim != 4 or candidate_masses.ndim != 2:
        raise ValueError("candidate tensors must have shapes (c, m, d, 2) and (c, m)")
    if candidate_regions.shape[:2] != candidate_masses.shape:
        raise ValueError("candidate_regions and candidate_masses disagree on (c, m)")
    # a transposed (d, n, 2) grid would broadcast into silently wrong bounds,
    # so the grids are validated up front like the candidate tensors
    target_regions, reference_regions = validate_partition_grids(
        target_regions,
        reference_regions,
        candidate_regions.shape[2] if candidate_regions.shape[0] else None,
    )
    num_candidates, max_partitions = candidate_masses.shape
    num_target = target_regions.shape[0]
    num_reference = reference_regions.shape[0]
    num_pairs = num_target * num_reference
    if partition_counts is None:
        counts = np.full(num_candidates, max_partitions, dtype=int)
    else:
        counts = np.asarray(partition_counts, dtype=int)
        if counts.shape != (num_candidates,):
            raise ValueError("partition_counts must have one entry per candidate")
        if np.any(counts < 0) or np.any(counts > max_partitions):
            raise ValueError("partition_counts must lie in [0, m]")
    if num_candidates == 0:
        empty = np.empty((num_pairs, 0), dtype=float)
        return empty, empty.copy()

    cand = candidate_regions[None, None]            # (1, 1, c, m, d, 2)
    targets = target_regions[:, None, None, None]   # (n_b, 1, 1, 1, d, 2)
    refs = reference_regions[None, :, None, None]   # (1, n_r, 1, 1, d, 2)

    dominating = np.empty((num_target, num_reference, num_candidates, max_partitions), dtype=bool)
    dominated = np.empty_like(dominating)
    per_target = num_reference * num_candidates * max_partitions * candidate_regions.shape[2]
    block = max(1, _BATCH_BLOCK_ELEMENTS // max(per_target, 1))
    for start in range(0, num_target, block):
        slab = slice(start, start + block)
        dominating[slab] = domination_bulk(cand, targets[slab], refs, p, criterion)
        dominated[slab] = domination_bulk(targets[slab], cand, refs, p, criterion)

    lower = np.empty((num_target, num_reference, num_candidates), dtype=float)
    upper = np.empty_like(lower)
    for c in range(num_candidates):
        m = int(counts[c])
        masses = candidate_masses[c, :m]
        total = float(masses.sum())
        lower_c = np.where(dominating[:, :, c, :m], masses, 0.0).sum(axis=-1)
        dominated_mass = np.where(dominated[:, :, c, :m], masses, 0.0).sum(axis=-1)
        # same probability clamps as the scalar path
        np.clip(lower_c, 0.0, 1.0, out=lower_c)
        upper_c = np.minimum(np.maximum(total - dominated_mass, lower_c), 1.0)
        lower[:, :, c] = lower_c
        upper[:, :, c] = upper_c
    return lower.reshape(num_pairs, num_candidates), upper.reshape(num_pairs, num_candidates)


def pdom_bounds(
    candidate: UncertainObject,
    target: UncertainObject,
    reference: UncertainObject,
    candidate_depth: int = 4,
    target_depth: int = 0,
    reference_depth: int = 0,
    p: float = 2.0,
    criterion: DominationCriterion = "optimal",
    candidate_tree: Optional[DecompositionTree] = None,
    target_tree: Optional[DecompositionTree] = None,
    reference_tree: Optional[DecompositionTree] = None,
) -> tuple[float, float]:
    """Bounds of ``PDom(candidate, target, reference)`` via Lemmas 1 and 2.

    All three objects may be decomposed; with ``target_depth`` and
    ``reference_depth`` left at 0 this reduces to the Lemma 3 setting used
    inside IDCA (only the candidate is decomposed).  Deeper decompositions
    yield tighter — still correct — bounds at higher cost.

    Decomposition trees can be passed in to reuse cached partitions across
    repeated calls.
    """
    candidate_tree = candidate_tree or DecompositionTree(candidate)
    cand_regions, cand_masses = candidate_tree.partitions_arrays(candidate_depth)

    target_parts = _partitions_of(target, target_depth, target_tree)
    reference_parts = _partitions_of(reference, reference_depth, reference_tree)

    lower_total = 0.0
    upper_total = 0.0
    for target_region, target_mass in target_parts:
        for reference_region, reference_mass in reference_parts:
            weight = target_mass * reference_mass
            if weight <= 0.0:
                continue
            lower, upper = pdom_bounds_from_partitions(
                cand_regions,
                cand_masses,
                target_region,
                reference_region,
                p=p,
                criterion=criterion,
            )
            lower_total += weight * lower
            upper_total += weight * upper
    lower_total = min(max(lower_total, 0.0), 1.0)
    upper_total = min(max(upper_total, lower_total), 1.0)
    return lower_total, upper_total


def probabilistic_domination_bounds(
    candidate: UncertainObject,
    target: UncertainObject,
    reference: UncertainObject,
    depth: int = 4,
    p: float = 2.0,
    criterion: DominationCriterion = "optimal",
) -> tuple[float, float]:
    """Symmetric convenience wrapper: decompose all three objects to ``depth``.

    This is the direct implementation of Lemma 1 / Lemma 2 and the function a
    library user calls to ask "with which probability is ``A`` closer to ``R``
    than ``B``?" without running a full domination-count query.
    """
    return pdom_bounds(
        candidate,
        target,
        reference,
        candidate_depth=depth,
        target_depth=depth,
        reference_depth=depth,
        p=p,
        criterion=criterion,
    )


def _partitions_of(
    obj: UncertainObject, depth: int, tree: Optional[DecompositionTree]
) -> list[tuple[np.ndarray, float]]:
    """Partition rectangles (as arrays) and masses of ``obj`` at ``depth``."""
    if depth <= 0:
        return [(obj.mbr.to_array(), obj.existence_probability)]
    tree = tree or DecompositionTree(obj)
    regions, masses = tree.partitions_arrays(depth)
    return [(regions[i], float(masses[i])) for i in range(regions.shape[0])]
