"""Synthetic dataset generators matching the paper's experimental setup.

The paper's synthetic workload (Section VII) consists of 10,000 objects
modelled as 2-D rectangles whose relative extents per dimension are drawn
uniformly at random up to a maximum value (0.004 by default, varied between
0 and 0.01 in Figure 6(a) and set to 0.002 for the scalability experiments of
Figure 9).  Object centres are uniform in the unit square.

Additional generators (clustered centres, Gaussian objects, discrete-sample
objects) are provided for the examples and for stress-testing the library on
distributions other than box-uniform.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..geometry import Rectangle
from ..uncertain import (
    BoxUniformObject,
    DiscreteObject,
    TruncatedGaussianObject,
    UncertainDatabase,
)

__all__ = [
    "uniform_rectangle_database",
    "clustered_rectangle_database",
    "gaussian_object_database",
    "discrete_sample_database",
]


def uniform_rectangle_database(
    num_objects: int = 10_000,
    dimensions: int = 2,
    max_extent: float = 0.004,
    seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> UncertainDatabase:
    """The paper's synthetic dataset: uniform rectangles in the unit cube.

    Parameters
    ----------
    num_objects:
        Database size (the paper uses 10,000 for most experiments and
        20,000–100,000 for the scalability study).
    dimensions:
        Dimensionality of the data space.
    max_extent:
        Maximum relative extent of an object per dimension; individual extents
        are uniform in ``(0, max_extent]``.
    seed, rng:
        Seed of a fresh RNG, or an explicit generator.
    """
    if num_objects <= 0:
        raise ValueError("num_objects must be positive")
    if max_extent < 0:
        raise ValueError("max_extent must be non-negative")
    rng = rng if rng is not None else np.random.default_rng(seed)
    centers = rng.uniform(0.0, 1.0, size=(num_objects, dimensions))
    extents = rng.uniform(0.0, max_extent, size=(num_objects, dimensions))
    objects = [
        BoxUniformObject(
            Rectangle.from_center_extent(centers[i], extents[i]), label=f"syn-{i}"
        )
        for i in range(num_objects)
    ]
    return UncertainDatabase(objects)


def clustered_rectangle_database(
    num_objects: int = 10_000,
    num_clusters: int = 10,
    cluster_std: float = 0.05,
    dimensions: int = 2,
    max_extent: float = 0.004,
    seed: int = 0,
) -> UncertainDatabase:
    """Clustered variant of the synthetic dataset.

    Cluster centres are uniform in the unit cube; object centres are Gaussian
    around their cluster centre (clipped to the unit cube).  Clustered data
    stresses the pruning criteria harder because many objects share similar
    distances to the reference object.
    """
    if num_clusters <= 0:
        raise ValueError("num_clusters must be positive")
    rng = np.random.default_rng(seed)
    cluster_centers = rng.uniform(0.0, 1.0, size=(num_clusters, dimensions))
    assignment = rng.integers(0, num_clusters, size=num_objects)
    centers = cluster_centers[assignment] + rng.normal(
        0.0, cluster_std, size=(num_objects, dimensions)
    )
    centers = np.clip(centers, 0.0, 1.0)
    extents = rng.uniform(0.0, max_extent, size=(num_objects, dimensions))
    objects = [
        BoxUniformObject(
            Rectangle.from_center_extent(centers[i], extents[i]), label=f"clu-{i}"
        )
        for i in range(num_objects)
    ]
    return UncertainDatabase(objects)


def gaussian_object_database(
    num_objects: int = 1_000,
    dimensions: int = 2,
    max_std: float = 0.002,
    truncation_sigmas: float = 3.0,
    seed: int = 0,
) -> UncertainDatabase:
    """Database of truncated-Gaussian objects with uniform centres."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, 1.0, size=(num_objects, dimensions))
    stds = rng.uniform(0.0, max_std, size=(num_objects, dimensions))
    objects = [
        TruncatedGaussianObject(
            centers[i],
            np.maximum(stds[i], 1e-6),
            truncation_sigmas=truncation_sigmas,
            label=f"gauss-{i}",
        )
        for i in range(num_objects)
    ]
    return UncertainDatabase(objects)


def discrete_sample_database(
    num_objects: int = 100,
    samples_per_object: int = 20,
    dimensions: int = 2,
    max_extent: float = 0.05,
    seed: int = 0,
) -> UncertainDatabase:
    """Database of discrete objects with uniformly scattered alternatives.

    Alternatives are uniform within a per-object box of the given maximum
    extent, with uniform random weights — the model under which the
    possible-world oracle is exact.
    """
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, 1.0, size=(num_objects, dimensions))
    objects = []
    for i in range(num_objects):
        extent = rng.uniform(0.0, max_extent, size=dimensions)
        points = centers[i] + rng.uniform(-0.5, 0.5, size=(samples_per_object, dimensions)) * extent
        weights = rng.uniform(0.1, 1.0, size=samples_per_object)
        objects.append(DiscreteObject(points, weights / weights.sum(), label=f"disc-{i}"))
    return UncertainDatabase(objects)
