"""Persistence of uncertain databases (JSON-based interchange format).

Real deployments need to move uncertain databases between systems; this module
defines a small, self-describing JSON format and symmetric ``save_database`` /
``load_database`` functions covering every object model shipped with the
library (box-uniform, truncated Gaussian, discrete, histogram and mixtures
thereof).  The format stores distribution *parameters*, not samples, so a
round-trip is loss-free.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..geometry import Rectangle
from ..uncertain import (
    BoxUniformObject,
    DiscreteObject,
    HistogramObject,
    MixtureObject,
    TruncatedGaussianObject,
    UncertainDatabase,
    UncertainObject,
)

__all__ = ["object_to_dict", "object_from_dict", "save_database", "load_database"]

FORMAT_VERSION = 1


def object_to_dict(obj: UncertainObject) -> dict[str, Any]:
    """Serialise one uncertain object into a JSON-compatible dictionary."""
    common = {
        "label": obj.label,
        "existence_probability": obj.existence_probability,
    }
    if isinstance(obj, DiscreteObject):
        return {
            "type": "discrete",
            "points": obj.points.tolist(),
            "weights": (obj.weights / obj.weights.sum()).tolist(),
            **common,
        }
    if isinstance(obj, BoxUniformObject):
        return {
            "type": "box_uniform",
            "lows": obj.mbr.lows.tolist(),
            "highs": obj.mbr.highs.tolist(),
            **common,
        }
    if isinstance(obj, TruncatedGaussianObject):
        return {
            "type": "truncated_gaussian",
            "mean": obj._mean.tolist(),
            "std": obj._std.tolist(),
            "lows": obj.mbr.lows.tolist(),
            "highs": obj.mbr.highs.tolist(),
            **common,
        }
    if isinstance(obj, HistogramObject):
        return {
            "type": "histogram",
            "edges": [marginal.edges.tolist() for marginal in obj._marginals],
            "masses": [marginal.masses.tolist() for marginal in obj._marginals],
            **common,
        }
    if isinstance(obj, MixtureObject):
        return {
            "type": "mixture",
            "weights": obj.weights.tolist(),
            "components": [object_to_dict(component) for component in obj.components],
            **common,
        }
    raise TypeError(f"cannot serialise objects of type {type(obj).__name__}")


def object_from_dict(data: dict[str, Any]) -> UncertainObject:
    """Reconstruct an uncertain object from its dictionary representation."""
    kind = data.get("type")
    label = data.get("label")
    existence = float(data.get("existence_probability", 1.0))
    if kind == "discrete":
        return DiscreteObject(
            data["points"],
            data["weights"],
            label=label,
            existence_probability=existence,
        )
    if kind == "box_uniform":
        return BoxUniformObject(
            Rectangle.from_bounds(data["lows"], data["highs"]),
            label=label,
            existence_probability=existence,
        )
    if kind == "truncated_gaussian":
        return TruncatedGaussianObject(
            data["mean"],
            data["std"],
            bounds=Rectangle.from_bounds(data["lows"], data["highs"]),
            label=label,
            existence_probability=existence,
        )
    if kind == "histogram":
        return HistogramObject(
            data["edges"],
            data["masses"],
            label=label,
            existence_probability=existence,
        )
    if kind == "mixture":
        return MixtureObject(
            [object_from_dict(component) for component in data["components"]],
            data["weights"],
            label=label,
            existence_probability=existence,
        )
    raise ValueError(f"unknown object type {kind!r}")


def save_database(database: UncertainDatabase, path: str | Path) -> None:
    """Write a database to a JSON file."""
    payload = {
        "format_version": FORMAT_VERSION,
        "dimensions": database.dimensions,
        "objects": [object_to_dict(obj) for obj in database],
    }
    Path(path).write_text(json.dumps(payload))


def load_database(path: str | Path) -> UncertainDatabase:
    """Read a database previously written by :func:`save_database`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported database format version: {version!r}")
    objects = [object_from_dict(entry) for entry in payload.get("objects", [])]
    if not objects:
        raise ValueError("the database file contains no objects")
    return UncertainDatabase(objects)
