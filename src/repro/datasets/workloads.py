"""Query workload generation helpers.

The paper's experiments fix a particular workload shape: "for 100 queries, we
chose B to be the object with the 10th smallest MinDist to the reference
object R".  These helpers generate reference objects and select target objects
by MinDist rank so every experiment in :mod:`repro.experiments` (and every
benchmark) uses the same, reproducible workload construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..geometry import Rectangle, min_dist_arrays
from ..uncertain import BoxUniformObject, UncertainDatabase, UncertainObject

__all__ = [
    "QueryPair",
    "target_by_mindist_rank",
    "random_reference_object",
    "generate_query_workload",
]


@dataclass(frozen=True)
class QueryPair:
    """One workload entry: a reference object and the index of the target."""

    reference: UncertainObject
    target_index: int


def target_by_mindist_rank(
    database: UncertainDatabase,
    reference: UncertainObject,
    rank: int = 10,
    p: float = 2.0,
    exclude: Optional[set[int]] = None,
) -> int:
    """Index of the object with the ``rank``-th smallest MinDist to ``reference``.

    ``rank`` is 1-based; the paper uses rank 10 ("the object with the 10th
    smallest MinDist to the reference object").
    """
    if rank < 1:
        raise ValueError("rank must be at least 1")
    dists = min_dist_arrays(database.mbrs(), reference.mbr.to_array(), p)
    if exclude:
        dists = dists.copy()
        for idx in exclude:
            dists[idx] = np.inf
    order = np.argsort(dists, kind="stable")
    if rank > order.shape[0]:
        raise ValueError("rank exceeds the number of eligible objects")
    return int(order[rank - 1])


def random_reference_object(
    dimensions: int = 2,
    extent: float = 0.004,
    rng: Optional[np.random.Generator] = None,
    seed: int = 0,
    label: Optional[str] = None,
) -> UncertainObject:
    """A random box-uniform reference (query) object in the unit cube."""
    rng = rng if rng is not None else np.random.default_rng(seed)
    center = rng.uniform(0.0, 1.0, size=dimensions)
    extents = rng.uniform(0.0, extent, size=dimensions)
    return BoxUniformObject(Rectangle.from_center_extent(center, extents), label=label)


def generate_query_workload(
    database: UncertainDatabase,
    num_queries: int = 100,
    target_rank: int = 10,
    reference_extent: float = 0.004,
    p: float = 2.0,
    seed: int = 0,
) -> list[QueryPair]:
    """Generate the paper's standard workload.

    Each entry pairs a random uncertain reference object with the database
    object at the requested MinDist rank (default: the 10th closest).
    """
    if num_queries <= 0:
        raise ValueError("num_queries must be positive")
    rng = np.random.default_rng(seed)
    workload = []
    for q in range(num_queries):
        reference = random_reference_object(
            dimensions=database.dimensions,
            extent=reference_extent,
            rng=rng,
            label=f"query-{q}",
        )
        target = target_by_mindist_rank(database, reference, rank=target_rank, p=p)
        workload.append(QueryPair(reference=reference, target_index=target))
    return workload
