"""Simulated International Ice Patrol (IIP) iceberg sightings dataset.

The paper's real-world evaluation uses the IIP Iceberg Sightings dataset
(NSIDC G00807, season 2009): 6,216 sighted icebergs in the North Atlantic.
The latitude/longitude of the latest sighting provides a certain 2-D mean per
object, and Gaussian noise whose magnitude grows with the time passed since
the sighting turns each sighting into an uncertain object; extents are
normalised so the maximum extent per dimension is 0.0004 of the data space.

The raw dataset is not redistributable here, so this module *simulates* it:
sighting locations follow the seasonal iceberg distribution along the
Labrador Current / Grand Banks region (a mixture of along-current clusters),
and the days-since-sighting value is drawn from an exponential distribution —
which reproduces the property the experiments rely on: a heavily skewed
distribution of object extents with a fixed maximum, embedded in a normalised
unit data space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..uncertain import TruncatedGaussianObject, UncertainDatabase

__all__ = ["IIPSimulationConfig", "iip_iceberg_database"]

#: Cluster centres (normalised coordinates) roughly tracing the iceberg drift
#: corridor from the Labrador coast down to the Grand Banks tail.
_DRIFT_CORRIDOR = np.array(
    [
        [0.15, 0.85],
        [0.25, 0.72],
        [0.35, 0.60],
        [0.45, 0.50],
        [0.55, 0.42],
        [0.65, 0.35],
        [0.75, 0.30],
        [0.85, 0.28],
    ]
)


@dataclass(frozen=True)
class IIPSimulationConfig:
    """Parameters of the simulated IIP dataset.

    The defaults mirror the paper's setup: 6,216 objects, maximum per-dimension
    extent of 0.0004 in the normalised data space, uncertainty proportional to
    the time passed since the latest sighting.
    """

    num_objects: int = 6_216
    max_extent: float = 0.0004
    corridor_std: float = 0.06
    mean_days_since_sighting: float = 12.0
    truncation_sigmas: float = 3.0
    seed: int = 2009


def iip_iceberg_database(config: IIPSimulationConfig | None = None) -> UncertainDatabase:
    """Generate the simulated IIP iceberg sightings database.

    Every object is a :class:`TruncatedGaussianObject` whose standard
    deviation is proportional to the simulated days since the latest sighting
    and whose truncated extent never exceeds ``config.max_extent`` per
    dimension, matching the construction described in Section VII.
    """
    config = config or IIPSimulationConfig()
    if config.num_objects <= 0:
        raise ValueError("num_objects must be positive")
    rng = np.random.default_rng(config.seed)

    # sighting locations along the drift corridor
    cluster = rng.integers(0, _DRIFT_CORRIDOR.shape[0], size=config.num_objects)
    means = _DRIFT_CORRIDOR[cluster] + rng.normal(
        0.0, config.corridor_std, size=(config.num_objects, 2)
    )
    means = np.clip(means, 0.0, 1.0)

    # uncertainty grows with the days since the latest sighting
    days = rng.exponential(config.mean_days_since_sighting, size=config.num_objects)
    days = np.maximum(days, 0.25)
    # normalise so the *largest* object has the paper's maximum extent; the
    # full truncated extent of an object is 2 * truncation_sigmas * std
    max_days = days.max()
    stds = (days / max_days) * (config.max_extent / (2.0 * config.truncation_sigmas))
    stds = np.maximum(stds, 1e-9)

    objects = [
        TruncatedGaussianObject(
            means[i],
            stds[i],
            truncation_sigmas=config.truncation_sigmas,
            label=f"iceberg-{i}",
        )
        for i in range(config.num_objects)
    ]
    return UncertainDatabase(objects)
