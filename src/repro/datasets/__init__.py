"""Dataset and workload generators used by examples, tests and benchmarks."""

from .iip import IIPSimulationConfig, iip_iceberg_database
from .io import load_database, object_from_dict, object_to_dict, save_database
from .synthetic import (
    clustered_rectangle_database,
    discrete_sample_database,
    gaussian_object_database,
    uniform_rectangle_database,
)
from .workloads import (
    QueryPair,
    generate_query_workload,
    random_reference_object,
    target_by_mindist_rank,
)

__all__ = [
    "IIPSimulationConfig",
    "iip_iceberg_database",
    "load_database",
    "object_from_dict",
    "object_to_dict",
    "save_database",
    "clustered_rectangle_database",
    "discrete_sample_database",
    "gaussian_object_database",
    "uniform_rectangle_database",
    "QueryPair",
    "generate_query_workload",
    "random_reference_object",
    "target_by_mindist_rank",
]
