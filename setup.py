"""Setuptools shim for legacy editable installs (environments without wheel).

All project metadata lives in ``pyproject.toml``; this file only exists so
``pip install -e . --no-use-pep517`` works in offline environments where the
``wheel`` package is unavailable.
"""

from setuptools import setup

setup()
