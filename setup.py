"""Setuptools shim for legacy editable installs (environments without wheel).

All project metadata lives in ``pyproject.toml``; this file only exists so
``pip install -e . --no-use-pep517`` works in offline environments where the
``wheel`` package is unavailable.
"""

from setuptools import setup

setup(
    # Optional compiled kernel backend for the pair-bounds hot path
    # (src/repro/core/kernels.py).  Without it the engine transparently
    # uses the numpy backend; results are bit-identical either way.
    extras_require={"numba": ["numba"]},
)
