"""Property-based tests (hypothesis) for the geometric substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.geometry import (
    Interval,
    Rectangle,
    dominates_minmax,
    dominates_optimal,
    lp_distance,
    max_dist,
    max_dist_point,
    min_dist,
    min_dist_point,
)

finite = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)
small_positive = st.floats(min_value=0.0, max_value=10.0, allow_nan=False, allow_infinity=False)


@st.composite
def intervals(draw):
    lo = draw(finite)
    length = draw(small_positive)
    return Interval(lo, lo + length)


@st.composite
def rectangles(draw, dims=2):
    lows = [draw(finite) for _ in range(dims)]
    lengths = [draw(small_positive) for _ in range(dims)]
    return Rectangle.from_bounds(lows, [lo + ln for lo, ln in zip(lows, lengths)])


@st.composite
def points(draw, dims=2):
    return [draw(finite) for _ in range(dims)]


class TestIntervalProperties:
    @given(intervals(), finite)
    def test_min_dist_at_most_max_dist(self, iv, x):
        assert iv.min_dist_to_point(x) <= iv.max_dist_to_point(x) + 1e-9

    @given(intervals(), finite)
    def test_clamped_point_has_zero_min_dist(self, iv, x):
        assert iv.min_dist_to_point(iv.clamp(x)) == 0.0

    @given(intervals(), intervals())
    def test_interval_distance_symmetry(self, a, b):
        assert abs(a.min_dist_to_interval(b) - b.min_dist_to_interval(a)) < 1e-9
        assert abs(a.max_dist_to_interval(b) - b.max_dist_to_interval(a)) < 1e-9

    @given(intervals(), intervals())
    def test_union_contains_both(self, a, b):
        union = a.union(b)
        assert union.contains_interval(a)
        assert union.contains_interval(b)

    @given(intervals())
    def test_split_preserves_extent(self, iv):
        if iv.is_degenerate:
            return
        left, right = iv.split()
        assert abs((left.length + right.length) - iv.length) < 1e-9


class TestRectangleProperties:
    @given(rectangles(), points())
    def test_min_max_dist_ordering(self, rect, point):
        assert min_dist_point(rect, point) <= max_dist_point(rect, point) + 1e-9

    @given(rectangles(), points())
    def test_contained_point_has_zero_min_dist(self, rect, point):
        clamped = rect.clamp_point(point)
        assert min_dist_point(rect, clamped) < 1e-9

    @given(rectangles(), rectangles())
    def test_rect_distance_symmetry(self, a, b):
        assert abs(min_dist(a, b) - min_dist(b, a)) < 1e-9
        assert abs(max_dist(a, b) - max_dist(b, a)) < 1e-9

    @given(rectangles(), rectangles())
    def test_min_dist_lower_bounds_center_distance(self, a, b):
        center_dist = lp_distance(a.center, b.center)
        assert min_dist(a, b) <= center_dist + 1e-9
        assert max_dist(a, b) >= center_dist - 1e-9

    @given(rectangles())
    def test_split_preserves_volume(self, rect):
        axis = rect.widest_axis()
        if rect.extents[axis] == 0.0:
            return
        left, right = rect.split(axis)
        assert abs(left.volume + right.volume - rect.volume) < 1e-6 * max(rect.volume, 1.0)

    @given(rectangles(), rectangles())
    def test_intersection_contained_in_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains_rectangle(inter)
            assert b.contains_rectangle(inter)


class TestDominationProperties:
    @settings(max_examples=150)
    @given(rectangles(), rectangles(), rectangles())
    def test_minmax_implies_optimal(self, a, b, r):
        if dominates_minmax(a, b, r):
            assert dominates_optimal(a, b, r)

    @settings(max_examples=150)
    @given(rectangles(), rectangles(), rectangles())
    def test_domination_is_antisymmetric(self, a, b, r):
        assert not (dominates_optimal(a, b, r) and dominates_optimal(b, a, r))

    @settings(max_examples=100)
    @given(rectangles(), rectangles(), rectangles(), st.integers(min_value=0, max_value=1000))
    def test_optimal_domination_sound_on_sampled_worlds(self, a, b, r, seed):
        """If complete domination is claimed, random possible worlds confirm it."""
        if not dominates_optimal(a, b, r):
            return
        rng = np.random.default_rng(seed)
        pa = rng.uniform(a.lows, a.highs, size=(20, 2))
        pb = rng.uniform(b.lows, b.highs, size=(20, 2))
        pr = rng.uniform(r.lows, r.highs, size=(20, 2))
        for i in range(20):
            da = np.linalg.norm(pa[i] - pr[i])
            db = np.linalg.norm(pb[i] - pr[i])
            assert da < db + 1e-12

    @settings(max_examples=100)
    @given(rectangles(), rectangles(), rectangles())
    def test_domination_invariant_under_translation(self, a, b, r):
        shift = np.array([13.7, -4.2])
        translate = lambda rect: Rectangle.from_bounds(rect.lows + shift, rect.highs + shift)
        assert dominates_optimal(a, b, r) == dominates_optimal(
            translate(a), translate(b), translate(r)
        )
