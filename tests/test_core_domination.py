"""Unit tests for complete / probabilistic domination (Section III)."""

import numpy as np
import pytest

from repro.baselines import exact_pdom, monte_carlo_pdom
from repro.core import (
    complete_domination_filter,
    complete_domination_scan,
    pdom_bounds,
    pdom_bounds_from_partitions,
    probabilistic_domination_bounds,
)
from repro.geometry import Rectangle
from repro.uncertain import (
    BoxUniformObject,
    DecompositionTree,
    DiscreteObject,
    UncertainDatabase,
)


def _box(lo, hi, **kwargs):
    return BoxUniformObject(Rectangle.from_bounds(lo, hi), **kwargs)


class TestCompleteDominationScan:
    def test_scan_classification(self):
        reference = Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0]).to_array()
        target = Rectangle.from_bounds([5.0, 0.0], [6.0, 1.0]).to_array()
        candidates = np.stack(
            [
                Rectangle.from_bounds([1.5, 0.0], [2.0, 1.0]).to_array(),  # dominates
                Rectangle.from_bounds([20.0, 0.0], [21.0, 1.0]).to_array(),  # dominated
                Rectangle.from_bounds([4.0, 0.0], [7.0, 1.0]).to_array(),  # uncertain
            ]
        )
        dominating, dominated = complete_domination_scan(candidates, target, reference)
        np.testing.assert_array_equal(dominating, [True, False, False])
        np.testing.assert_array_equal(dominated, [False, True, False])

    def test_scan_minmax_weaker_or_equal(self):
        rng = np.random.default_rng(0)
        candidates = rng.uniform(0, 1, size=(100, 2, 1))
        candidates = np.concatenate(
            [candidates, candidates + rng.uniform(0.01, 0.2, size=(100, 2, 1))], axis=2
        )
        target = candidates[0]
        reference = candidates[1]
        opt_dom, _ = complete_domination_scan(candidates, target, reference, criterion="optimal")
        mm_dom, _ = complete_domination_scan(candidates, target, reference, criterion="minmax")
        # the optimal criterion detects at least every MinMax detection
        assert np.all(opt_dom[mm_dom])


class TestCompleteDominationFilter:
    def setup_method(self):
        self.reference = _box([0.0, 0.0], [1.0, 1.0], label="R")
        objects = [
            _box([1.5, 0.0], [2.0, 1.0], label="close"),      # always dominates target
            _box([20.0, 0.0], [21.0, 1.0], label="far"),       # never dominates target
            _box([4.0, 0.0], [7.0, 1.0], label="overlapping"),  # uncertain
            _box([5.0, 0.0], [6.0, 1.0], label="target"),
        ]
        self.database = UncertainDatabase(objects)
        self.target_index = 3

    def test_counts(self):
        result = complete_domination_filter(
            self.database,
            self.database[self.target_index],
            self.reference,
            exclude_indices={self.target_index},
        )
        assert result.complete_count == 1
        assert list(result.influence_indices) == [2]
        assert list(result.pruned_indices) == [1]
        assert result.num_influence == 1

    def test_exclusion_of_target(self):
        result = complete_domination_filter(
            self.database,
            self.database[self.target_index],
            self.reference,
            exclude_indices={self.target_index},
        )
        assert self.target_index not in result.influence_indices
        assert self.target_index not in result.pruned_indices

    def test_without_exclusion_target_participates(self):
        result = complete_domination_filter(
            self.database, self.database[self.target_index], self.reference
        )
        # the target never dominates itself, but it is not excluded either
        assert self.target_index in np.concatenate(
            [result.influence_indices, result.pruned_indices]
        )

    def test_partition_of_database(self):
        result = complete_domination_filter(
            self.database,
            self.database[self.target_index],
            self.reference,
            exclude_indices={self.target_index},
        )
        total = (
            result.complete_count
            + result.num_influence
            + len(result.pruned_indices)
        )
        assert total == len(self.database) - 1


class TestPDomBoundsFromPartitions:
    def test_complete_domination_gives_one_one(self):
        candidate = _box([1.5, 0.0], [2.0, 1.0])
        target = Rectangle.from_bounds([5.0, 0.0], [6.0, 1.0]).to_array()
        reference = Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0]).to_array()
        regions, masses = DecompositionTree(candidate).partitions_arrays(0)
        lower, upper = pdom_bounds_from_partitions(regions, masses, target, reference)
        assert lower == pytest.approx(1.0)
        assert upper == pytest.approx(1.0)

    def test_complete_dominated_gives_zero_zero(self):
        candidate = _box([20.0, 0.0], [21.0, 1.0])
        target = Rectangle.from_bounds([5.0, 0.0], [6.0, 1.0]).to_array()
        reference = Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0]).to_array()
        regions, masses = DecompositionTree(candidate).partitions_arrays(2)
        lower, upper = pdom_bounds_from_partitions(regions, masses, target, reference)
        assert lower == pytest.approx(0.0)
        assert upper == pytest.approx(0.0)

    def test_uncertain_case_gives_wide_bounds_at_depth_zero(self):
        candidate = _box([4.0, 0.0], [7.0, 1.0])
        target = Rectangle.from_bounds([5.0, 0.0], [6.0, 1.0]).to_array()
        reference = Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0]).to_array()
        regions, masses = DecompositionTree(candidate).partitions_arrays(0)
        lower, upper = pdom_bounds_from_partitions(regions, masses, target, reference)
        assert lower == pytest.approx(0.0)
        assert upper == pytest.approx(1.0)

    def test_bounds_tighten_with_depth(self):
        candidate = _box([4.0, 0.0], [7.0, 1.0])
        target = Rectangle.from_bounds([5.5, 0.2], [5.6, 0.3]).to_array()
        reference = Rectangle.from_bounds([0.0, 0.0], [0.1, 0.1]).to_array()
        tree = DecompositionTree(candidate)
        widths = []
        for depth in (0, 2, 4, 6):
            regions, masses = tree.partitions_arrays(depth)
            lower, upper = pdom_bounds_from_partitions(regions, masses, target, reference)
            widths.append(upper - lower)
        assert widths == sorted(widths, reverse=True)
        assert widths[-1] < widths[0]


class TestPDomBoundsObjects:
    def test_bounds_bracket_exact_discrete_probability(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            a = DiscreteObject(rng.uniform(0, 1, size=(6, 2)), rng.uniform(0.1, 1, size=6))
            b = DiscreteObject(rng.uniform(0, 1, size=(5, 2)), rng.uniform(0.1, 1, size=5))
            r = DiscreteObject(rng.uniform(0, 1, size=(4, 2)), rng.uniform(0.1, 1, size=4))
            exact = exact_pdom(a, b, r)
            lower, upper = pdom_bounds(
                a, b, r, candidate_depth=4, target_depth=4, reference_depth=4
            )
            assert lower <= exact + 1e-9
            assert upper >= exact - 1e-9

    def test_bounds_bracket_monte_carlo_estimate_continuous(self):
        rng = np.random.default_rng(4)
        a = _box([0.2, 0.2], [0.5, 0.6])
        b = _box([0.4, 0.1], [0.9, 0.5])
        r = _box([0.0, 0.0], [0.3, 0.3])
        estimate = monte_carlo_pdom(a, b, r, samples=20000, rng=rng)
        lower, upper = probabilistic_domination_bounds(a, b, r, depth=5)
        assert lower - 0.02 <= estimate <= upper + 0.02

    def test_deeper_decomposition_never_loosens_bounds(self):
        a = _box([0.2, 0.2], [0.5, 0.6])
        b = _box([0.4, 0.1], [0.9, 0.5])
        r = _box([0.0, 0.0], [0.3, 0.3])
        previous_width = np.inf
        for depth in (0, 2, 4):
            lower, upper = probabilistic_domination_bounds(a, b, r, depth=depth)
            width = upper - lower
            assert width <= previous_width + 1e-9
            previous_width = width

    def test_upper_bound_complement_symmetry(self):
        """PDomUB(A, B, R) = 1 - PDomLB(B, A, R) (Lemma 2) at equal depths."""
        a = _box([0.1, 0.1], [0.4, 0.5])
        b = _box([0.3, 0.2], [0.8, 0.6])
        r = _box([0.0, 0.7], [0.2, 0.9])
        lower_ab, upper_ab = probabilistic_domination_bounds(a, b, r, depth=3)
        lower_ba, upper_ba = probabilistic_domination_bounds(b, a, r, depth=3)
        assert upper_ab <= 1.0 - lower_ba + 1e-9

    def test_certain_points_give_exact_zero_or_one(self):
        a = _box([1.0, 0.0], [1.0, 0.0])
        b = _box([2.0, 0.0], [2.0, 0.0])
        r = _box([0.0, 0.0], [0.0, 0.0])
        assert probabilistic_domination_bounds(a, b, r, depth=0) == (1.0, 1.0)
        assert probabilistic_domination_bounds(b, a, r, depth=0) == (0.0, 0.0)
