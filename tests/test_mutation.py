"""Versioned mutable databases: snapshots, epochs, and the mutation path.

The contract under test (PR 9, threaded through
``uncertain/base.py`` → ``engine/boundstore.py`` → ``engine/service.py`` →
``gateway/server.py``):

* :meth:`UncertainDatabase.apply` returns a **new snapshot** at epoch + 1
  that shares every untouched object with its parent; the parent stays
  fully usable, and generations never alias two different contents within
  a lineage;
* the **equivalence invariant** — a query against a mutated database is
  bit-identical to the same query against a freshly built database with
  identical content — at every worker count, with the shared bounds store
  on and off;
* the service's **snapshot barrier**: a batch admitted at epoch E sees
  exactly snapshot E, mutations and batches being sequenced through one
  dispatcher queue;
* **warm caches**: after mutating a small fraction of the objects, the
  shared store keeps serving the untouched columns (hit rate >= 0.5) and
  never serves a stale one (any staleness would break bit-identity);
* worker lanes follow the parent across epochs by replaying **mutation
  deltas** — including lanes respawned after a crash;
* the gateway applies mutations behind the barrier and keeps **standing
  queries** equal to a from-scratch evaluation, whether it re-evaluates
  them or takes the incremental patch/skip path.

The CI ``mutation`` job matrixes this module over both pool start methods
(``REPRO_TEST_START_METHOD``) and the no-shared-memory fallback
(``REPRO_DISABLE_SHARED_MEMORY=1``).
"""

from __future__ import annotations

import json
import os
import urllib.request

import numpy as np
import pytest

from repro.datasets import random_reference_object, uniform_rectangle_database
from repro.engine import (
    ExecutorConfig,
    InverseRankingQuery,
    KNNQuery,
    QueryEngine,
    QueryService,
    RangeQuery,
    RankingQuery,
    RKNNQuery,
)
from repro.engine.boundstore import bound_store_available, stable_object_key
from repro.geometry import Rectangle
from repro.index import RTree
from repro.uncertain import (
    BoxUniformObject,
    Delete,
    DiscreteObject,
    Insert,
    UncertainDatabase,
    Update,
)
from repro.uncertain.sharedmem import MutationDeltaExport, load_delta_mutations

# The CI job matrixes the suite over start methods through this variable;
# locally it is unset and the platform default applies.
START_METHOD = os.environ.get("REPRO_TEST_START_METHOD") or None

needs_shm = pytest.mark.skipif(
    not bound_store_available(),
    reason="shared-memory bounds store unavailable on this platform/config",
)


def _box(center, extent=0.02, label=None):
    return BoxUniformObject(
        Rectangle.from_center_extent(np.asarray(center, dtype=float), extent),
        label=label,
    )


def _service(database, workers=2, **kwargs):
    return QueryService(
        QueryEngine(database),
        ExecutorConfig(workers=workers, start_method=START_METHOD, **kwargs),
    )


def _snapshot(results) -> list:
    """Timing-free result snapshot — bit-level comparison material."""
    snap = []
    for result in results:
        if hasattr(result, "matches"):
            snap.append(
                [
                    (m.index, m.probability_lower, m.probability_upper,
                     m.decision, m.iterations, m.sequence)
                    for bucket in (result.matches, result.undecided, result.rejected)
                    for m in bucket
                ]
                + [result.pruned]
            )
        elif hasattr(result, "ranking"):
            snap.append(
                [
                    (e.index, e.expected_rank_lower, e.expected_rank_upper, e.iterations)
                    for e in result.ranking
                ]
            )
        else:
            snap.append((list(map(float, result.lower)), list(map(float, result.upper))))
    return snap


def _fresh_snapshot(database, requests) -> list:
    """Serial evaluation over a freshly constructed copy of ``database``."""
    rebuilt = UncertainDatabase(list(database.objects))
    return _snapshot(QueryEngine(rebuilt).evaluate_many(requests))


@pytest.fixture(scope="module")
def database():
    return uniform_rectangle_database(num_objects=30, max_extent=0.05, seed=3)


@pytest.fixture(scope="module")
def reference():
    return random_reference_object(extent=0.05, seed=4, label="query")


@pytest.fixture(scope="module")
def requests(reference):
    return [
        KNNQuery(reference, k=3, tau=0.5, max_iterations=4),
        KNNQuery(7, k=2, tau=0.3, max_iterations=4),
        RKNNQuery(reference, k=2, tau=0.5, max_iterations=3, candidate_indices=range(12)),
        RangeQuery(reference, epsilon=0.3, tau=0.5, max_depth=3),
        RankingQuery(reference, max_iterations=2, candidate_indices=range(10)),
        InverseRankingQuery(5, reference, max_iterations=3),
    ]


def _mutation_steps(rng) -> list[list]:
    """Three seeded mutation batches: updates, insert+delete, a mixed one."""
    return [
        [
            Update(int(position), _box(rng.uniform(0.1, 0.9, size=2)))
            for position in rng.choice(25, size=3, replace=False)
        ],
        [
            Insert(_box(rng.uniform(0.1, 0.9, size=2), label="new-a")),
            Delete(int(rng.integers(13, 25))),
            Insert(_box(rng.uniform(0.1, 0.9, size=2), label="new-b")),
        ],
        [
            Update(int(rng.integers(0, 12)), _box(rng.uniform(0.1, 0.9, size=2))),
            Insert(_box(rng.uniform(0.1, 0.9, size=2), label="new-c")),
            Update(int(rng.integers(0, 12)), _box(rng.uniform(0.1, 0.9, size=2))),
        ],
    ]


# --------------------------------------------------------------------- #
# snapshot semantics: epochs, generations, structural sharing
# --------------------------------------------------------------------- #
def test_apply_returns_sharing_snapshot_and_leaves_parent_untouched(database):
    replacement = _box([0.5, 0.5], label="replacement")
    addition = _box([0.2, 0.8], label="addition")
    snapshot = database.apply([Update(3, replacement), Insert(addition), Delete(0)])

    # the parent is untouched: same epoch, content and generations
    assert database.epoch == 0
    assert len(database) == 30
    assert database.generations() == tuple(range(30))

    assert snapshot.epoch == 1
    assert len(snapshot) == 30  # 30 + 1 insert - 1 delete
    # delete(0) compacts positions; untouched objects are the same instances
    shared = sum(1 for obj in snapshot if database.position_of(obj) is not None)
    assert shared == 28  # everything except the replacement and the addition
    assert snapshot[2] is replacement  # position 3 shifted down by the delete
    assert snapshot[29] is addition

    # generations: untouched objects keep theirs, touched ones draw fresh
    # values above the parent's clock, and no counter ever repeats
    generations = snapshot.generations()
    assert len(set(generations)) == len(generations)
    fresh = set(generations) - set(database.generations())
    assert len(fresh) == 2
    assert all(g >= 30 for g in fresh)


def test_apply_interprets_batch_positions_sequentially():
    objects = [_box([0.1 * i + 0.05, 0.5], label=f"o{i}") for i in range(4)]
    database = UncertainDatabase(objects)
    # after Delete(0), position 0 addresses the former objects[1]
    replacement = _box([0.9, 0.9], label="replacement")
    snapshot = database.apply([Delete(0), Update(0, replacement)])
    assert snapshot[0] is replacement
    assert snapshot[1] is objects[2]


def test_apply_rejects_invalid_batches(database):
    with pytest.raises(IndexError):
        database.apply([Update(len(database), _box([0.5, 0.5]))])
    with pytest.raises(IndexError):
        database.apply([Delete(len(database))])
    with pytest.raises(ValueError, match="dimension"):
        database.apply([Insert(BoxUniformObject(
            Rectangle.from_bounds([0.0, 0.0, 0.0], [0.1, 0.1, 0.1])))])
    single = UncertainDatabase([_box([0.5, 0.5])])
    with pytest.raises(ValueError, match="at least one"):
        single.apply([Delete(0)])


def test_resolved_batches_replay_identically(database):
    mutations = [Update(2, _box([0.3, 0.3])), Insert(_box([0.6, 0.6]))]
    resolved = database.resolve_mutations(mutations)
    assert all(m.generation is not None for m in resolved)
    once = database.apply(resolved)
    again = database.apply(resolved)
    assert once.generations() == again.generations()
    # resolving is what apply() does internally, so contents agree too
    assert database.apply(mutations).generations() == once.generations()


def test_epoch_advances_once_per_apply(database):
    snapshot = database
    for expected in (1, 2, 3):
        snapshot = snapshot.apply([Update(0, _box([0.4, 0.4]))])
        assert snapshot.epoch == expected


# --------------------------------------------------------------------- #
# satellite: position_of is O(1) off a maintained identity index
# --------------------------------------------------------------------- #
def test_position_of_index_is_maintained_across_snapshots(database):
    snapshot = database.apply(
        [Update(3, _box([0.5, 0.5])), Delete(0), Insert(_box([0.2, 0.2]))]
    )
    # apply() hands the snapshot a maintained index instead of deferring a
    # full rebuild to the first lookup (the regression this test pins)
    assert snapshot._position_by_id is not None
    for position, obj in enumerate(snapshot):
        assert snapshot.position_of(obj) == position
    # the replaced object and the deleted object are not members
    assert snapshot.position_of(database[3]) is None
    assert snapshot.position_of(database[0]) is None
    # non-members stay non-members
    assert snapshot.position_of(_box([0.9, 0.9])) is None


# --------------------------------------------------------------------- #
# stable keys fold generations: staleness is structurally impossible
# --------------------------------------------------------------------- #
def test_stable_object_key_folds_generations(database):
    replacement = _box([0.5, 0.5])
    snapshot = database.apply([Update(3, replacement)])
    # untouched object at an unshifted position: the key survives the epoch,
    # which is exactly what keeps its shared-store columns warm
    assert stable_object_key(snapshot, snapshot[7]) == stable_object_key(
        database, database[7]
    )
    # the new content never reuses the old content's key
    old_key = stable_object_key(database, database[3])
    new_key = stable_object_key(snapshot, replacement)
    assert old_key != new_key
    assert old_key == ("db", 3, 3)
    assert new_key == ("db", 3, 30)


def test_stable_object_key_never_aliases_after_delete(database):
    snapshot = database.apply([Delete(5)])
    # positions behind the deletion point shift, so their keys change — a
    # cache miss, never a wrong hit: the shifted key carries the object's
    # own generation, which the old occupant of that position never had
    shifted = stable_object_key(snapshot, snapshot[5])
    assert shifted == ("db", 5, 6)
    assert shifted != stable_object_key(database, database[5])


# --------------------------------------------------------------------- #
# the equivalence gate: mutated database == freshly built database,
# bit for bit, at every worker count, store on and off
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("workers", [1, 2, 4])
@pytest.mark.parametrize("shared_bounds", [None, False], ids=["store", "no-store"])
def test_mutated_equals_fresh_at_every_worker_count(
    database, requests, workers, shared_bounds
):
    steps = _mutation_steps(np.random.default_rng(91))
    with QueryService(
        QueryEngine(database),
        ExecutorConfig(
            workers=workers, start_method=START_METHOD, shared_bounds=shared_bounds
        ),
    ) as service:
        assert _snapshot(service.evaluate_many(requests)) == _fresh_snapshot(
            database, requests
        )
        for epoch, step in enumerate(steps, start=1):
            assert service.apply(step) == epoch
            current = service.engine.database
            assert current.epoch == epoch
            assert _snapshot(service.evaluate_many(requests)) == _fresh_snapshot(
                current, requests
            )
            assert service.last_batch_report.epoch == epoch


def test_engine_apply_mutations_matches_fresh_build(database, requests):
    engine = QueryEngine(database)
    engine.evaluate_many(requests)  # warm the caches at epoch 0
    for step in _mutation_steps(np.random.default_rng(92)):
        engine.apply_mutations(step)
        assert _snapshot(engine.evaluate_many(requests)) == _fresh_snapshot(
            engine.database, requests
        )


def test_rtree_engine_advances_incrementally(database, requests):
    engine = QueryEngine(database, rtree=RTree(database.mbrs()))
    engine.evaluate_many(requests)  # build + exercise the tree at epoch 0
    for step in _mutation_steps(np.random.default_rng(93)):
        engine.apply_mutations(step)
        # same engine, incrementally maintained tree vs a fresh bulk load
        rebuilt = UncertainDatabase(list(engine.database.objects))
        fresh = QueryEngine(rebuilt, rtree=RTree(rebuilt.mbrs()))
        assert _snapshot(engine.evaluate_many(requests)) == _snapshot(
            fresh.evaluate_many(requests)
        )


# --------------------------------------------------------------------- #
# incremental R-tree maintenance: parity with a fresh bulk load
# --------------------------------------------------------------------- #
def test_rtree_incremental_matches_bulk_load(database):
    rng = np.random.default_rng(7)
    mbrs = database.mbrs().copy()
    tree = RTree(mbrs, leaf_capacity=4, fanout=4)
    rows = [mbrs[i] for i in range(len(mbrs))]
    for round_index in range(3):
        new_row = np.stack(
            [rng.uniform(0.0, 0.9, size=2), rng.uniform(0.0, 0.9, size=2)], axis=1
        )
        new_row.sort(axis=1)
        rows.append(new_row.copy())
        assert tree.insert(new_row) == len(rows) - 1
        victim = int(rng.integers(0, len(rows) - 1))
        tree.delete(victim)
        del rows[victim]
        moved = int(rng.integers(0, len(rows)))
        shifted = rows[moved] + 0.05 * (round_index + 1)
        tree.update(moved, shifted)
        rows[moved] = shifted

        fresh = RTree(np.stack(rows), leaf_capacity=4, fanout=4)
        assert len(tree) == len(rows)
        window = Rectangle.from_bounds([0.1, 0.1], [0.7, 0.8])
        assert sorted(tree.range_query(window)) == sorted(fresh.range_query(window))
        query = Rectangle.from_center_extent([0.45, 0.5], 0.02)
        assert sorted(tree.knn_candidates(query, 4)) == sorted(
            fresh.knn_candidates(query, 4)
        )
        # structural invariant: every node MBR contains its children
        for node in tree.iter_nodes():
            children = (
                [child.mbr for child in node.children]
                if not node.is_leaf
                else [rows[i] for i in node.entries]
            )
            for child in children:
                assert np.all(node.mbr[:, 0] <= child[:, 0] + 1e-12)
                assert np.all(node.mbr[:, 1] >= child[:, 1] - 1e-12)


# --------------------------------------------------------------------- #
# mutation deltas: the worker transport
# --------------------------------------------------------------------- #
def test_mutation_delta_roundtrip(database):
    rng = np.random.default_rng(11)
    points = rng.uniform(0.0, 1.0, size=(64, 2))  # big enough for extraction
    weights = np.full(64, 1.0 / 64)
    resolved = database.resolve_mutations(
        [Update(2, DiscreteObject(points, weights)), Insert(_box([0.6, 0.6]))]
    )
    export = MutationDeltaExport(database, resolved)
    try:
        delta = export.delta
        assert (delta.base_epoch, delta.new_epoch) == (0, 1)
        loaded = load_delta_mutations(delta)
        assert database.apply(loaded).generations() == database.apply(
            resolved
        ).generations()
        rebuilt = loaded[0].obj
        np.testing.assert_array_equal(rebuilt.mbr.to_array(),
                                      resolved[0].obj.mbr.to_array())
    finally:
        export.close()


def test_workers_follow_epochs_and_respawn_replays_history(database, requests):
    from repro.testing.faults import kill_worker

    steps = _mutation_steps(np.random.default_rng(94))
    with _service(database, workers=2) as service:
        service.evaluate_many(requests)
        for step in steps:
            service.apply(step)
        probe = service.probe_workers()
        assert probe["epoch"] == len(steps)
        expected = _fresh_snapshot(service.engine.database, requests)
        assert _snapshot(service.evaluate_many(requests)) == expected
        # a respawned lane must replay the whole delta history before
        # serving chunks — kill a worker and check nothing drifts
        victim = service.last_batch_report.worker_pids[0]
        kill_worker(victim)
        assert _snapshot(service.evaluate_many(requests)) == expected
        assert service.worker_respawns >= 1
        assert service.probe_workers()["epoch"] == len(steps)


# --------------------------------------------------------------------- #
# the service barrier: a batch admitted at epoch E sees snapshot E
# --------------------------------------------------------------------- #
def test_mutations_and_batches_sequence_through_one_queue(database, requests):
    step = [Update(4, _box([0.42, 0.58], label="moved"))]
    before = _fresh_snapshot(database, requests)
    after = _fresh_snapshot(database.apply(step), requests)
    with _service(database, workers=2) as service:
        first = service.submit(requests)
        ticket = service.submit_mutations(step)
        second = service.submit(requests)
        # FIFO dispatch: the pre-mutation batch sees epoch 0, the ticket
        # resolves to epoch 1, the post-mutation batch sees epoch 1
        assert _snapshot(first.result(timeout=120)) == before
        assert first.report().epoch == 0
        assert ticket.result(timeout=120) == 1
        assert ticket.done() and ticket.exception() is None
        assert _snapshot(second.result(timeout=120)) == after
        assert second.report().epoch == 1
        assert service.epoch == 1


def test_apply_surfaces_validation_errors_and_service_survives(database, requests):
    with _service(database, workers=1) as service:
        with pytest.raises(IndexError):
            service.apply([Delete(len(database))])
        # the failed batch left no trace: epoch unchanged, queries still run
        assert service.epoch == 0
        assert _snapshot(service.evaluate_many(requests)) == _fresh_snapshot(
            database, requests
        )


# --------------------------------------------------------------------- #
# satellite: adaptive chunk sizing forgets cost history across epochs
# --------------------------------------------------------------------- #
def test_cost_ewma_resets_when_the_epoch_changes(database, requests):
    with _service(database, workers=1) as service:
        service.evaluate_many(requests)
        assert service.observed_request_seconds is not None
        assert service.adaptive_chunk_size(64) is not None
        service.apply([Update(0, _box([0.51, 0.49]))])
        # the old snapshot's cost profile does not transfer to the new one
        assert service.observed_request_seconds is None
        assert service.adaptive_chunk_size(64) is None
        service.evaluate_many(requests)
        assert service.observed_request_seconds is not None


# --------------------------------------------------------------------- #
# warm caches: untouched columns survive a small mutation, never stale
# --------------------------------------------------------------------- #
@needs_shm
def test_shared_store_stays_warm_across_small_mutations(database):
    rng = np.random.default_rng(23)
    distinct = [
        random_reference_object(extent=0.05, rng=rng, label=f"query-{i}")
        for i in range(8)
    ]
    batch = [
        KNNQuery(query, k=3, tau=0.5, max_iterations=4)
        for _ in range(3)
        for query in distinct
    ]
    # mutate <= 10% of the objects (3 of 30), updates only so positions of
    # the untouched objects — and therefore their store keys — are stable
    step = [
        Update(int(position), _box(rng.uniform(0.1, 0.9, size=2)))
        for position in rng.choice(len(database), size=3, replace=False)
    ]
    with _service(database, workers=4) as service:
        if not service.shared_bounds:
            pytest.skip("shared bounds store disabled in this configuration")
        service.evaluate_many(batch)  # publish the epoch-0 columns
        service.apply(step)
        results = service.evaluate_many(batch)
        report = service.last_batch_report
        # zero stale hits: bit-identity with a fresh build is only possible
        # if no column computed against the old snapshot was served
        assert _snapshot(results) == _fresh_snapshot(service.engine.database, batch)
        # warm columns: of the lookups the worker-local tier missed, at
        # least half are served by the store even though the epoch changed
        assert report.shared_hits + report.shared_misses > 0
        assert report.shared_hit_rate >= 0.5, str(report)


# --------------------------------------------------------------------- #
# gateway: /v1/mutate behind the barrier, standing queries stay exact
# --------------------------------------------------------------------- #
def _http(method, url, document=None):
    data = None if document is None else json.dumps(document).encode()
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}, method=method
    )
    with urllib.request.urlopen(request) as response:
        return response.status, response.read()


def _query_payload(server, document) -> bytes:
    """Raw result bytes of a one-shot /v1/query evaluation."""
    status, body = _http("POST", f"{server.url}/v1/query", document)
    assert status == 200, body
    assert body.startswith(b'{"result":') and body.endswith(b"}")
    return body[len(b'{"result":'):-1]


def _standing_payload(server, standing_id) -> bytes:
    status, body = _http("GET", f"{server.url}/v1/standing/{standing_id}")
    assert status == 200, body
    marker = b',"result":'
    assert marker in body and body.endswith(b"}")
    return body[body.index(marker) + len(marker):-1]


def test_gateway_mutations_keep_standing_queries_exact(database):
    from repro.gateway import GatewayServer

    knn_doc = {"type": "knn", "query": {"box": {"lower": [0.4, 0.4],
                                                "upper": [0.45, 0.45]}},
               "k": 3, "tau": 0.5, "max_iterations": 4}
    range_doc = {"type": "range", "query": {"box": {"lower": [0.4, 0.4],
                                                    "upper": [0.45, 0.45]}},
                 "epsilon": 0.05, "tau": 0.3, "max_depth": 3}
    with _service(database, workers=2) as service:
        with GatewayServer(service) as server:
            registered = {}
            for doc in (knn_doc, range_doc):
                status, body = _http(
                    "POST", f"{server.url}/v1/standing", {"query": doc}
                )
                assert status == 200, body
                entry = json.loads(body)
                assert entry["epoch"] == 0
                registered[entry["kind"]] = entry["id"]

            # a batch touching the neighbourhood of both queries: every
            # standing entry re-evaluates, and each equals a from-scratch
            # evaluation of the same document at the new epoch
            status, body = _http(
                "POST",
                f"{server.url}/v1/mutate",
                {"mutations": [
                    {"op": "update", "position": 3,
                     "object": {"box": {"lower": [0.41, 0.41],
                                        "upper": [0.44, 0.44]}}},
                    {"op": "insert",
                     "object": {"gaussian": {"mean": [0.43, 0.42],
                                             "std": [0.004, 0.004]}}},
                ]},
            )
            assert status == 200, body
            outcome = json.loads(body)
            assert outcome["applied"] == 2
            assert outcome["epoch"] == 1
            assert outcome["size"] == len(database) + 1
            assert outcome["standing"]["reevaluated"] == 2
            for doc, kind in ((knn_doc, "knn"), (range_doc, "range")):
                assert _standing_payload(server, registered[kind]) == _query_payload(
                    server, doc
                )

            # a far-away insert cannot enter the range result: the gateway
            # patches that entry instead of re-evaluating it — and the
            # patched payload still equals a from-scratch evaluation
            status, body = _http(
                "POST",
                f"{server.url}/v1/mutate",
                {"mutations": [{"op": "insert",
                                "object": {"box": {"lower": [0.94, 0.94],
                                                   "upper": [0.96, 0.96]}}}]},
            )
            assert status == 200, body
            outcome = json.loads(body)
            assert outcome["standing"]["reevaluated"] == 1  # the knn entry
            assert outcome["standing"]["patched"] == 1      # the range entry
            for doc, kind in ((knn_doc, "knn"), (range_doc, "range")):
                assert _standing_payload(server, registered[kind]) == _query_payload(
                    server, doc
                )

            # registry listing and removal
            status, body = _http("GET", f"{server.url}/v1/standing")
            listing = json.loads(body)
            assert listing["epoch"] == 2
            assert {e["id"] for e in listing["standing"]} == set(registered.values())
            status, body = _http(
                "DELETE", f"{server.url}/v1/standing/{registered['range']}"
            )
            assert status == 200 and json.loads(body)["removed"]


def test_gateway_rejects_malformed_mutations(database):
    from repro.gateway import GatewayServer

    bad_batches = [
        [],  # empty
        [{"op": "teleport", "position": 0}],  # unknown op
        [{"op": "update", "position": len(database),  # out of range
          "object": {"box": {"lower": [0.1, 0.1], "upper": [0.2, 0.2]}}}],
        [{"op": "update", "position": 0, "object": 3}],  # position as content
        [{"op": "delete", "position": 0, "extra": True}],  # unknown field
    ]
    with _service(database, workers=1) as service:
        with GatewayServer(service) as server:
            for mutations in bad_batches:
                try:
                    status, body = _http(
                        "POST", f"{server.url}/v1/mutate", {"mutations": mutations}
                    )
                except urllib.error.HTTPError as error:
                    status, body = error.code, error.read()
                assert status == 400, (mutations, body)
            # nothing was applied along the way
            assert service.epoch == 0

            # standing registration rejects non-standing kinds
            try:
                status, body = _http(
                    "POST", f"{server.url}/v1/standing",
                    {"query": {"type": "inverse_ranking", "target": 1,
                               "reference": 2}},
                )
            except urllib.error.HTTPError as error:
                status, body = error.code, error.read()
            assert status == 400, body


def test_decode_mutations_tracks_sequential_positions(database):
    from repro.gateway import CodecError, decode_mutations

    literal = {"box": {"lower": [0.1, 0.1], "upper": [0.2, 0.2]}}
    # after an insert the appended position becomes addressable...
    decoded = decode_mutations(
        [{"op": "insert", "object": literal},
         {"op": "update", "position": len(database), "object": literal}],
        database,
    )
    assert isinstance(decoded[0], Insert) and isinstance(decoded[1], Update)
    # ...and after a delete the shrunken length is enforced
    with pytest.raises(CodecError, match="out of range"):
        decode_mutations(
            [{"op": "delete", "position": 0},
             {"op": "update", "position": len(database) - 1, "object": literal}],
            database,
        )
    with pytest.raises(CodecError, match="last remaining"):
        decode_mutations(
            [{"op": "delete", "position": 0}],
            UncertainDatabase([_box([0.5, 0.5])]),
        )
