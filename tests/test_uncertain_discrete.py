"""Unit tests for discrete uncertain objects."""

import numpy as np
import pytest

from repro.geometry import Rectangle
from repro.uncertain import DiscreteObject, PointObject


class TestConstruction:
    def test_basic(self):
        obj = DiscreteObject([[0.0, 0.0], [1.0, 1.0]], [0.3, 0.7])
        assert obj.points.shape == (2, 2)
        np.testing.assert_allclose(obj.weights, [0.3, 0.7])

    def test_default_uniform_weights(self):
        obj = DiscreteObject([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        np.testing.assert_allclose(obj.weights, [1 / 3, 1 / 3, 1 / 3])

    def test_weights_are_normalised(self):
        obj = DiscreteObject([[0.0], [1.0]], [2.0, 6.0])
        np.testing.assert_allclose(obj.weights, [0.25, 0.75])

    def test_single_point_reshaped(self):
        obj = DiscreteObject([1.0, 2.0])
        assert obj.points.shape == (1, 2)

    def test_empty_points_raises(self):
        with pytest.raises(ValueError):
            DiscreteObject(np.empty((0, 2)))

    def test_negative_weights_raise(self):
        with pytest.raises(ValueError):
            DiscreteObject([[0.0], [1.0]], [-0.5, 1.5])

    def test_zero_weights_raise(self):
        with pytest.raises(ValueError):
            DiscreteObject([[0.0], [1.0]], [0.0, 0.0])

    def test_weight_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            DiscreteObject([[0.0], [1.0]], [1.0])

    def test_mbr_bounds_points(self):
        obj = DiscreteObject([[0.0, 5.0], [2.0, 1.0]])
        assert obj.mbr == Rectangle.from_bounds([0.0, 1.0], [2.0, 5.0])

    def test_existence_probability_scales_weights(self):
        obj = DiscreteObject([[0.0], [1.0]], existence_probability=0.5)
        assert obj.weights.sum() == pytest.approx(0.5)


class TestMassAndMedian:
    def setup_method(self):
        self.obj = DiscreteObject(
            [[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [3.0, 0.0]],
            [0.1, 0.2, 0.3, 0.4],
        )

    def test_mass_total(self):
        assert self.obj.mass_in(self.obj.mbr) == pytest.approx(1.0)

    def test_mass_subregion(self):
        sub = Rectangle.from_bounds([0.5, -1.0], [2.5, 1.0])
        assert self.obj.mass_in(sub) == pytest.approx(0.5)

    def test_mass_boundary_points_included(self):
        sub = Rectangle.from_bounds([1.0, 0.0], [2.0, 0.0])
        assert self.obj.mass_in(sub) == pytest.approx(0.5)

    def test_mass_empty_region(self):
        assert self.obj.mass_in(Rectangle.from_bounds([10.0, 10.0], [11.0, 11.0])) == 0.0

    def test_conditional_median_not_on_alternative(self):
        median = self.obj.conditional_median(self.obj.mbr, axis=0)
        assert median not in {0.0, 1.0, 2.0, 3.0}

    def test_conditional_median_raises_on_empty_region(self):
        with pytest.raises(ValueError):
            self.obj.conditional_median(
                Rectangle.from_bounds([10.0, 10.0], [11.0, 11.0]), axis=0
            )

    def test_mean_is_weighted_average(self):
        expected_x = 0.1 * 0 + 0.2 * 1 + 0.3 * 2 + 0.4 * 3
        np.testing.assert_allclose(self.obj.mean(), [expected_x, 0.0])


class TestDecompose:
    def setup_method(self):
        self.obj = DiscreteObject(
            [[0.0, 0.0], [1.0, 0.5], [2.0, 1.0], [3.0, 1.5]],
            [0.1, 0.2, 0.3, 0.4],
        )

    def test_decompose_masses_sum_to_parent(self):
        result = self.obj.decompose(self.obj.mbr, axis=0)
        assert result is not None
        _, _, left_mass, right_mass = result
        assert left_mass + right_mass == pytest.approx(1.0)

    def test_decompose_children_are_tight(self):
        result = self.obj.decompose(self.obj.mbr, axis=0)
        left, right, _, _ = result
        # children must only cover alternatives, not the full parent extent
        assert left.highs[0] < right.lows[0]

    def test_decompose_children_disjoint_alternatives(self):
        left, right, left_mass, right_mass = self.obj.decompose(self.obj.mbr, axis=0)
        assert self.obj.mass_in(left) == pytest.approx(left_mass)
        assert self.obj.mass_in(right) == pytest.approx(right_mass)

    def test_decompose_single_point_region_returns_none(self):
        region = Rectangle.from_bounds([0.0, 0.0], [0.5, 0.2])
        assert self.obj.decompose(region, axis=0) is None

    def test_decompose_degenerate_axis_returns_none(self):
        collinear = DiscreteObject([[0.0, 0.0], [0.0, 1.0], [0.0, 2.0]])
        assert collinear.decompose(collinear.mbr, axis=0) is None
        assert collinear.decompose(collinear.mbr, axis=1) is not None

    def test_recursive_decomposition_reaches_singletons(self):
        region = self.obj.mbr
        result = self.obj.decompose(region, axis=0)
        left, right, _, _ = result
        # one more split of each side yields regions containing single points
        for sub in (left, right):
            deeper = self.obj.decompose(sub, axis=0)
            if deeper is not None:
                sub_left, sub_right, ml, mr = deeper
                assert ml > 0 and mr > 0


class TestSampling:
    def test_samples_are_alternatives(self):
        obj = DiscreteObject([[0.0, 0.0], [1.0, 1.0]], [0.5, 0.5])
        rng = np.random.default_rng(0)
        samples = obj.sample(200, rng)
        for sample in samples:
            assert tuple(sample) in {(0.0, 0.0), (1.0, 1.0)}

    def test_sample_frequencies_match_weights(self):
        obj = DiscreteObject([[0.0], [1.0]], [0.2, 0.8])
        rng = np.random.default_rng(1)
        samples = obj.sample(5000, rng)
        assert np.mean(samples[:, 0]) == pytest.approx(0.8, abs=0.03)


class TestPointObject:
    def test_point_object_is_certain(self):
        obj = PointObject([0.5, 0.5])
        assert obj.is_certain()
        assert obj.mbr.is_degenerate

    def test_point_object_mass(self):
        obj = PointObject([0.5, 0.5])
        assert obj.mass_in(Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0])) == 1.0
        assert obj.mass_in(Rectangle.from_bounds([0.6, 0.6], [1.0, 1.0])) == 0.0

    def test_point_object_sampling(self):
        obj = PointObject([0.25, 0.75])
        rng = np.random.default_rng(2)
        samples = obj.sample(10, rng)
        assert np.all(samples == np.array([0.25, 0.75]))

    def test_point_object_cannot_be_decomposed(self):
        obj = PointObject([0.25, 0.75])
        assert obj.decompose(obj.mbr, axis=0) is None
