"""Tests for probabilistic distance-range queries."""

import numpy as np
import pytest

from repro.datasets import uniform_rectangle_database
from repro.geometry import Rectangle
from repro.queries import probabilistic_range_query, probability_within_range
from repro.uncertain import (
    BoxUniformObject,
    DiscreteObject,
    PointObject,
    UncertainDatabase,
)


def _box(lo, hi, **kwargs):
    return BoxUniformObject(Rectangle.from_bounds(lo, hi), **kwargs)


class TestProbabilityWithinRange:
    def test_certainly_inside(self):
        obj = _box([0.0, 0.0], [0.1, 0.1])
        query = PointObject([0.05, 0.05])
        lower, upper = probability_within_range(obj, query, epsilon=1.0)
        assert lower == pytest.approx(1.0)
        assert upper == pytest.approx(1.0)

    def test_certainly_outside(self):
        obj = _box([5.0, 5.0], [5.1, 5.1])
        query = PointObject([0.0, 0.0])
        lower, upper = probability_within_range(obj, query, epsilon=1.0)
        assert lower == pytest.approx(0.0)
        assert upper == pytest.approx(0.0)

    def test_uniform_box_analytic_probability(self):
        """For a 1-extent box and a point query the in-range mass is the overlap."""
        obj = _box([0.0, 0.0], [1.0, 0.0])  # a 1-D segment embedded in 2-D
        query = PointObject([0.0, 0.0])
        lower, upper = probability_within_range(obj, query, epsilon=0.25, max_depth=10)
        assert lower <= 0.25 + 1e-6
        assert upper >= 0.25 - 1e-6
        assert upper - lower < 0.05

    def test_bounds_bracket_monte_carlo(self):
        rng = np.random.default_rng(0)
        obj = _box([0.2, 0.3], [0.6, 0.8])
        query = _box([0.5, 0.5], [0.9, 0.9])
        epsilon = 0.3
        samples_a = obj.sample(20000, rng)
        samples_q = query.sample(20000, rng)
        estimate = float(np.mean(np.linalg.norm(samples_a - samples_q, axis=1) <= epsilon))
        lower, upper = probability_within_range(obj, query, epsilon, max_depth=6)
        assert lower - 0.02 <= estimate <= upper + 0.02

    def test_bounds_tighten_with_depth(self):
        obj = _box([0.0, 0.0], [1.0, 1.0])
        query = PointObject([0.5, 0.5])
        widths = []
        for depth in (0, 2, 4, 6):
            lower, upper = probability_within_range(obj, query, 0.4, max_depth=depth)
            widths.append(upper - lower)
        assert widths == sorted(widths, reverse=True)
        assert widths[-1] < widths[0]

    def test_exact_for_discrete_objects(self):
        obj = DiscreteObject([[0.0, 0.0], [1.0, 0.0]], [0.3, 0.7])
        query = PointObject([0.0, 0.0])
        lower, upper = probability_within_range(obj, query, epsilon=0.5, max_depth=4)
        assert lower == pytest.approx(0.3)
        assert upper == pytest.approx(0.3)

    def test_negative_epsilon_raises(self):
        obj = _box([0.0, 0.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            probability_within_range(obj, obj, epsilon=-0.1)


class TestProbabilisticRangeQuery:
    def test_certain_data_matches_classic_range_query(self):
        rng = np.random.default_rng(1)
        points = rng.uniform(0, 1, size=(50, 2))
        database = UncertainDatabase([PointObject(p) for p in points])
        query = PointObject([0.5, 0.5])
        epsilon = 0.3
        result = probabilistic_range_query(database, query, epsilon=epsilon, tau=0.5)
        expected = set(np.flatnonzero(np.linalg.norm(points - 0.5, axis=1) <= epsilon))
        assert set(result.result_indices()) == expected
        assert not result.undecided

    def test_result_accounting(self):
        database = uniform_rectangle_database(80, max_extent=0.05, seed=2)
        query = PointObject([0.5, 0.5])
        result = probabilistic_range_query(database, query, epsilon=0.2, tau=0.5)
        assert result.candidate_count() + result.pruned == len(database)

    def test_monotone_in_epsilon(self):
        database = uniform_rectangle_database(80, max_extent=0.05, seed=3)
        query = PointObject([0.5, 0.5])
        small = probabilistic_range_query(database, query, epsilon=0.1, tau=0.5)
        large = probabilistic_range_query(database, query, epsilon=0.3, tau=0.5)
        assert set(small.result_indices()) <= set(
            large.result_indices() + [m.index for m in large.undecided]
        )

    def test_query_as_index_is_excluded(self):
        database = uniform_rectangle_database(30, max_extent=0.05, seed=4)
        result = probabilistic_range_query(database, 5, epsilon=0.5, tau=0.5)
        assert 5 not in [m.index for m in result.all_evaluated()]

    def test_uncertain_matches_have_bracketing_bounds(self):
        database = uniform_rectangle_database(80, max_extent=0.2, seed=5)
        query = _box([0.45, 0.45], [0.55, 0.55])
        result = probabilistic_range_query(database, query, epsilon=0.15, tau=0.5)
        for match in result.all_evaluated():
            assert 0.0 <= match.probability_lower <= match.probability_upper <= 1.0
        for match in result.matches:
            assert match.probability_lower >= 0.5 - 1e-9
        for match in result.rejected:
            assert match.probability_upper <= 0.5 + 1e-9

    def test_invalid_parameters_raise(self):
        database = uniform_rectangle_database(10, seed=6)
        query = PointObject([0.5, 0.5])
        with pytest.raises(ValueError):
            probabilistic_range_query(database, query, epsilon=-1.0, tau=0.5)
        with pytest.raises(ValueError):
            probabilistic_range_query(database, query, epsilon=0.1, tau=1.5)
