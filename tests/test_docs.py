"""Documentation is executable: snippets run, links resolve, API documented.

Three guarantees, enforced in CI by the docs job:

1. every fenced ``python`` code block in ``README.md`` and ``docs/*.md``
   executes without error (so the quickstart and the worked examples can be
   pasted verbatim);
2. every relative markdown link in those files points at a path that exists
   in the repository;
3. every public name exported by the ``repro.engine`` package — and every
   public method those classes define — carries a docstring stating its
   contract.
"""

from __future__ import annotations

import inspect
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: path.name,
)

PYTHON_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)
MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _python_blocks(path: Path) -> list[tuple[int, str]]:
    text = path.read_text()
    blocks = []
    for match in PYTHON_BLOCK.finditer(text):
        line = text[: match.start()].count("\n") + 1
        blocks.append((line, match.group(1)))
    return blocks


def _doc_file_ids():
    return [path.relative_to(REPO_ROOT).as_posix() for path in DOC_FILES]


# --------------------------------------------------------------------- #
# 1. snippets import and run
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("path", DOC_FILES, ids=_doc_file_ids())
def test_python_snippets_run(path):
    blocks = _python_blocks(path)
    for line, code in blocks:
        namespace = {"__name__": f"doc_snippet_{path.stem}_line{line}"}
        try:
            exec(compile(code, f"{path.name}:{line}", "exec"), namespace)
        except Exception as error:  # pragma: no cover - failure reporting
            pytest.fail(f"snippet at {path.name}:{line} failed: {error!r}")


def test_readme_has_runnable_snippets():
    assert _python_blocks(REPO_ROOT / "README.md"), "README lost its quickstart"
    assert _python_blocks(REPO_ROOT / "docs" / "api.md"), "api.md lost its example"


# --------------------------------------------------------------------- #
# 2. relative links resolve
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("path", DOC_FILES, ids=_doc_file_ids())
def test_relative_links_resolve(path):
    broken = []
    for target in MARKDOWN_LINK.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#")[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"broken relative links in {path.name}: {broken}"


# --------------------------------------------------------------------- #
# 3. the engine layer is fully documented
# --------------------------------------------------------------------- #
def _public_methods(cls):
    for name, member in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(member, property):
            yield name, member.fget
        elif inspect.isfunction(member):
            yield name, member


def test_engine_public_api_has_docstrings():
    import repro.engine as engine_pkg

    undocumented = []
    for export in engine_pkg.__all__:
        obj = getattr(engine_pkg, export)
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue  # typing aliases (e.g. the QueryRequest union) hold no doc
        if not inspect.getdoc(obj):
            undocumented.append(export)
        if inspect.isclass(obj):
            for name, member in _public_methods(obj):
                if not inspect.getdoc(member):
                    undocumented.append(f"{export}.{name}")
    assert not undocumented, f"missing docstrings: {undocumented}"


def test_engine_modules_have_docstrings():
    import importlib

    for module_name in (
        "repro.engine",
        "repro.engine.candidates",
        "repro.engine.context",
        "repro.engine.engine",
        "repro.engine.executor",
        "repro.engine.requests",
        "repro.engine.scheduler",
        "repro.engine.service",
        "repro.uncertain.sharedmem",
    ):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} has no module docstring"
