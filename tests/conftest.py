"""Shared fixtures of the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    discrete_sample_database,
    random_reference_object,
    uniform_rectangle_database,
)
from repro.geometry import Rectangle
from repro.uncertain import (
    BoxUniformObject,
    DiscreteObject,
    TruncatedGaussianObject,
    UncertainDatabase,
)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running soak/load tests, run in a dedicated CI job "
        "(deselect locally with -m 'not slow')",
    )


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def unit_square() -> Rectangle:
    return Rectangle.from_bounds([0.0, 0.0], [1.0, 1.0])


@pytest.fixture
def box_object() -> BoxUniformObject:
    """A simple 2-D box-uniform object."""
    return BoxUniformObject(Rectangle.from_bounds([0.2, 0.3], [0.4, 0.7]), label="box")


@pytest.fixture
def gaussian_object() -> TruncatedGaussianObject:
    """A truncated Gaussian object centred in the unit square."""
    return TruncatedGaussianObject([0.5, 0.5], [0.05, 0.08], label="gauss")


@pytest.fixture
def discrete_object(rng) -> DiscreteObject:
    """A discrete object with seven weighted alternatives."""
    points = rng.uniform(0.0, 1.0, size=(7, 2))
    weights = rng.uniform(0.2, 1.0, size=7)
    return DiscreteObject(points, weights / weights.sum(), label="disc")


@pytest.fixture
def small_box_database() -> UncertainDatabase:
    """A small database of box-uniform objects (fast IDCA runs)."""
    return uniform_rectangle_database(num_objects=60, max_extent=0.05, seed=3)


@pytest.fixture
def small_discrete_database() -> UncertainDatabase:
    """A small discrete database for which the exact oracle is available."""
    return discrete_sample_database(
        num_objects=10, samples_per_object=5, max_extent=0.25, seed=11
    )


@pytest.fixture
def reference_object():
    """A random uncertain reference (query) object."""
    return random_reference_object(extent=0.05, seed=21, label="reference")
