"""Integration tests of the HTTP gateway over a real socket.

Every test talks to a live ``GatewayServer`` through ``http.client``
connections — real TCP, real framing — and asserts the contracts of the
network tier: byte-identical payloads vs serial evaluation at every
worker count, the typed-error → status-code mapping (429/503/504/400),
in-flight coalescing, per-tenant budgets, graceful drain and crash
recovery behind the gateway.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.datasets import uniform_rectangle_database
from repro.engine import ExecutorConfig, QueryEngine, QueryService
from repro.gateway import (
    GatewayConfig,
    GatewayServer,
    canonical_json,
    decode_query,
    encode_result,
)
from repro.testing.faults import ANY_LANE, FaultPlan, inject_faults

#: One document per query kind, all over database positions (so the serial
#: expectation can be computed with ``decode_query`` + ``QueryEngine``).
QUERY_DOCS = [
    {"type": "knn", "query": 0, "k": 3, "tau": 0.5, "max_iterations": 3},
    {"type": "rknn", "query": 1, "k": 2, "tau": 0.5, "max_iterations": 3},
    {"type": "range", "query": 2, "epsilon": 0.3, "tau": 0.5, "max_depth": 4},
    {"type": "ranking", "query": 3, "max_iterations": 2},
    {
        "type": "inverse_ranking",
        "target": 4,
        "reference": 5,
        "max_iterations": 3,
    },
]


@pytest.fixture(scope="module")
def gateway_database():
    return uniform_rectangle_database(num_objects=30, max_extent=0.05, seed=3)


@pytest.fixture(scope="module")
def shared_server(gateway_database):
    """One service+gateway shared by the read-mostly tests of this module."""
    with QueryService(gateway_database, ExecutorConfig(workers=2)) as service:
        with GatewayServer(service) as server:
            yield server


def _request(server, method, path, document=None, headers=None):
    """One HTTP exchange on a fresh connection; returns (status, headers, body)."""
    host, port = server.address
    connection = http.client.HTTPConnection(host, port, timeout=60)
    try:
        body = None if document is None else json.dumps(document).encode()
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


def _post(server, path, document):
    return _request(server, "POST", path, document)


def _serial_payload(database, document):
    """The canonical payload bytes of ``document`` evaluated serially."""
    request = decode_query(
        {k: v for k, v in document.items() if k not in ("timeout_ms", "tenant")},
        database,
    )
    (result,) = QueryEngine(database).evaluate_many([request])
    return canonical_json(encode_result(result))


# --------------------------------------------------------------------- #
# correctness: every kind, every worker count, byte-identical to serial
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_all_kinds_bit_identical_to_serial(gateway_database, workers):
    with QueryService(gateway_database, ExecutorConfig(workers=workers)) as service:
        with GatewayServer(service) as server:
            for document in QUERY_DOCS:
                status, _headers, body = _post(server, "/v1/query", document)
                assert status == 200, body
                expected = b'{"result":' + _serial_payload(
                    gateway_database, document
                ) + b"}"
                assert body == expected


def test_batch_endpoint_matches_individual_queries(shared_server, gateway_database):
    status, _headers, body = _post(
        shared_server, "/v1/batch", {"queries": QUERY_DOCS}
    )
    assert status == 200
    parts = [_serial_payload(gateway_database, doc) for doc in QUERY_DOCS]
    assert body == b'{"results":[' + b",".join(parts) + b"]}"


def test_concurrent_clients_all_served(shared_server, gateway_database):
    expected = {
        i: b'{"result":' + _serial_payload(gateway_database, doc) + b"}"
        for i, doc in enumerate(QUERY_DOCS)
    }
    outcomes = {}

    def client(i):
        document = QUERY_DOCS[i % len(QUERY_DOCS)]
        outcomes[i] = (_post(shared_server, "/v1/query", document), i % len(QUERY_DOCS))

    threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(outcomes) == 8
    for (status, _headers, body), doc_index in outcomes.values():
        assert status == 200
        assert body == expected[doc_index]


def test_keep_alive_connection_reuse(shared_server):
    host, port = shared_server.address
    connection = http.client.HTTPConnection(host, port, timeout=60)
    try:
        for _ in range(3):
            connection.request(
                "POST", "/v1/query", body=json.dumps(QUERY_DOCS[0]).encode()
            )
            response = connection.getresponse()
            assert response.status == 200
            response.read()
    finally:
        connection.close()


# --------------------------------------------------------------------- #
# error mapping
# --------------------------------------------------------------------- #
def test_malformed_requests_map_to_400(shared_server):
    cases = [
        {"type": "knn", "query": 0, "k": 3},  # missing tau
        {"type": "knn", "query": 0, "k": 3, "tau": 0.5, "bogus": 1},  # unknown field
        {"type": "knn", "query": 99, "k": 3, "tau": 0.5},  # index out of range
        {"type": "teleport", "query": 0},  # unknown kind
        {"type": "knn", "query": 0, "k": "three", "tau": 0.5},  # wrong type
        {"type": "knn", "query": 0, "k": 3, "tau": 0.5, "timeout_ms": -5},
        [1, 2, 3],  # not an object
    ]
    for document in cases:
        status, _headers, body = _post(shared_server, "/v1/query", document)
        assert status == 400, (document, body)
        assert "error" in json.loads(body)


def test_invalid_json_body_maps_to_400(shared_server):
    host, port = shared_server.address
    connection = http.client.HTTPConnection(host, port, timeout=60)
    try:
        connection.request("POST", "/v1/query", body=b"{nope")
        response = connection.getresponse()
        assert response.status == 400
        assert "error" in json.loads(response.read())
    finally:
        connection.close()


def test_unknown_route_and_method(shared_server):
    assert _request(shared_server, "GET", "/v1/query")[0] == 405
    assert _request(shared_server, "POST", "/healthz", {})[0] == 405
    assert _request(shared_server, "GET", "/nope")[0] == 404


def test_empty_batch_maps_to_400(shared_server):
    assert _post(shared_server, "/v1/batch", {"queries": []})[0] == 400
    assert _post(shared_server, "/v1/batch", {})[0] == 400


def test_overload_maps_to_429_with_retry_after(gateway_database):
    plan = FaultPlan(delay_lane=ANY_LANE, delay_seconds=1.0, delay_once=False)
    with inject_faults(plan):
        with QueryService(
            gateway_database,
            ExecutorConfig(workers=1),
            max_pending_batches=1,
        ) as service:
            with GatewayServer(service) as server:
                first = {}

                def leader():
                    first["outcome"] = _post(server, "/v1/query", QUERY_DOCS[0])

                thread = threading.Thread(target=leader)
                thread.start()
                # wait until the leader is admitted, so the probe below is
                # guaranteed to find the (single-batch) queue full
                deadline = time.monotonic() + 10.0
                while (
                    server.metrics()["queue_depth"] == 0
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
                time.sleep(0.1)
                # distinct document: must not coalesce with the leader
                status = None
                while time.monotonic() < deadline:
                    status, headers, body = _post(server, "/v1/query", QUERY_DOCS[1])
                    if status == 429:
                        break
                    time.sleep(0.02)
                thread.join()
                assert status == 429, body
                assert "Retry-After" in headers
                assert first["outcome"][0] == 200


def test_expired_deadline_maps_to_504(gateway_database):
    plan = FaultPlan(delay_lane=ANY_LANE, delay_seconds=1.5, delay_once=False)
    with inject_faults(plan):
        with QueryService(gateway_database, ExecutorConfig(workers=1)) as service:
            with GatewayServer(service) as server:
                document = dict(QUERY_DOCS[0], timeout_ms=100)
                status, _headers, body = _post(server, "/v1/query", document)
                assert status == 504, body
                assert "error" in json.loads(body)


def test_closed_service_maps_to_503(gateway_database):
    service = QueryService(gateway_database, ExecutorConfig(workers=1))
    with GatewayServer(service) as server:
        assert _post(server, "/v1/query", QUERY_DOCS[0])[0] == 200
        service.close()
        status, _headers, body = _post(server, "/v1/query", QUERY_DOCS[0])
        assert status == 503, body
        health_status, _h, health_body = _request(server, "GET", "/healthz")
        assert health_status == 503
        assert json.loads(health_body)["status"] == "closed"


# --------------------------------------------------------------------- #
# coalescing
# --------------------------------------------------------------------- #
def test_coalesced_duplicates_byte_identical(gateway_database):
    plan = FaultPlan(delay_lane=ANY_LANE, delay_seconds=0.8, delay_once=False)
    with inject_faults(plan):
        with QueryService(gateway_database, ExecutorConfig(workers=1)) as service:
            with GatewayServer(service) as server:
                document = QUERY_DOCS[0]
                outcomes = {}

                def client(i, delay):
                    time.sleep(delay)
                    outcomes[i] = _post(server, "/v1/query", document)

                # the leader arrives first; followers arrive while its
                # (delayed) evaluation is in flight and must coalesce
                threads = [
                    threading.Thread(target=client, args=(i, 0.0 if i == 0 else 0.25))
                    for i in range(4)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                bodies = {i: outcome[2] for i, outcome in outcomes.items()}
                statuses = {outcome[0] for outcome in outcomes.values()}
                assert statuses == {200}
                # byte-identical to each other and to serial evaluation
                assert len(set(bodies.values())) == 1
                expected = b'{"result":' + _serial_payload(
                    gateway_database, document
                ) + b"}"
                assert bodies[0] == expected
                metrics = server.metrics()
                assert metrics["coalesce_hits"] >= 1
                assert metrics["engine"]["batches_total"] < 4


def test_coalescing_window_is_in_flight_only(shared_server):
    before = shared_server.metrics()["coalesce_hits"]
    document = QUERY_DOCS[2]
    first = _post(shared_server, "/v1/query", document)
    second = _post(shared_server, "/v1/query", document)
    assert first[0] == second[0] == 200
    assert first[2] == second[2]
    # sequential duplicates never overlap, so no coalesce hit is recorded
    assert shared_server.metrics()["coalesce_hits"] == before


# --------------------------------------------------------------------- #
# tenant budgets
# --------------------------------------------------------------------- #
def test_tenant_budget_maps_to_429(gateway_database):
    config = GatewayConfig(tenant_budget=1, tenant_refill_seconds=120.0)
    with QueryService(gateway_database, ExecutorConfig(workers=1)) as service:
        with GatewayServer(service, config) as server:
            document = dict(QUERY_DOCS[0], tenant="acme")
            status, _headers, _body = _post(server, "/v1/query", document)
            assert status == 200
            # the first batch charged its actual iterations (> 1 token):
            # the tenant is now overdrawn and must wait out the debt
            status, headers, body = _post(server, "/v1/query", document)
            assert status == 429, body
            assert int(headers["Retry-After"]) >= 1
            assert server.metrics()["tenant_rejections"] == 1
            # other tenants (and untenanted requests) are unaffected
            other = dict(QUERY_DOCS[0], tenant="zen")
            assert _post(server, "/v1/query", other)[0] == 200
            assert _post(server, "/v1/query", QUERY_DOCS[0])[0] == 200


# --------------------------------------------------------------------- #
# lifecycle: drain, crash recovery, observability
# --------------------------------------------------------------------- #
def test_graceful_shutdown_drains_in_flight(gateway_database):
    plan = FaultPlan(delay_lane=ANY_LANE, delay_seconds=1.0, delay_once=False)
    with inject_faults(plan):
        with QueryService(gateway_database, ExecutorConfig(workers=1)) as service:
            server = GatewayServer(service)
            outcome = {}

            def client():
                outcome["result"] = _post(server, "/v1/query", QUERY_DOCS[0])

            thread = threading.Thread(target=client)
            thread.start()
            time.sleep(0.3)  # let the request reach the worker
            server.close(drain=True)
            thread.join(timeout=30)
            assert not thread.is_alive()
            status, _headers, body = outcome["result"]
            assert status == 200, body
            expected = b'{"result":' + _serial_payload(
                gateway_database, QUERY_DOCS[0]
            ) + b"}"
            assert body == expected


def test_worker_kill_mid_request_still_well_formed(gateway_database):
    plan = FaultPlan(kill_lane=ANY_LANE, kill_after_chunks=0, kill_once=True)
    with inject_faults(plan):
        with QueryService(gateway_database, ExecutorConfig(workers=1)) as service:
            with GatewayServer(service) as server:
                status, _headers, body = _post(server, "/v1/query", QUERY_DOCS[0])
                # supervision respawns the worker and re-drives the chunk:
                # the response is a *correct result*, not just well-formed
                assert status == 200, body
                expected = b'{"result":' + _serial_payload(
                    gateway_database, QUERY_DOCS[0]
                ) + b"}"
                assert body == expected
                assert server.metrics()["engine"]["worker_respawns"] >= 1


def test_healthz_and_metrics_surface(shared_server):
    status, _headers, body = _request(shared_server, "GET", "/healthz")
    assert status == 200
    health = json.loads(body)
    assert health["status"] == "ok"
    assert health["workers"] == 2

    before = json.loads(_request(shared_server, "GET", "/metrics")[2])
    assert _post(shared_server, "/v1/query", QUERY_DOCS[0])[0] == 200
    after = json.loads(_request(shared_server, "GET", "/metrics")[2])
    for section, counter in [
        ("gateway", "requests_total"),
        ("gateway", "connections_total"),
    ]:
        assert after[section][counter] > before[section][counter]
    gateway = after["gateway"]
    assert gateway["responses_by_status"]["200"] >= 1
    latency = gateway["latency"]
    assert latency["count"] >= 1
    assert 0 < latency["p50_seconds"] <= latency["p95_seconds"] <= latency["p99_seconds"]
    assert gateway["engine"]["scheduler_steps"] > 0
    assert after["service"]["workers"] == 2


def test_health_and_metrics_surface_store_state(shared_server):
    """The store's lifecycle state is an operator surface (satellite).

    ``/metrics`` carries the full occupancy/reclaim/persistence snapshot
    plus the publish-reject and claim counters folded from batch reports;
    ``/healthz`` flags degraded workers without flipping the status (the
    service still serves correct results from local memoisation).
    """
    status, _headers, body = _request(shared_server, "GET", "/healthz")
    assert status == 200
    health = json.loads(body)
    assert health["status"] == "ok"
    assert health["degraded_workers"] == 0
    assert health["degraded_store"] is False

    assert _post(shared_server, "/v1/query", QUERY_DOCS[1])[0] == 200
    metrics = json.loads(_request(shared_server, "GET", "/metrics")[2])
    engine = metrics["gateway"]["engine"]
    for counter in (
        "shared_rejected", "shared_duplicates", "claim_steals", "claim_waits",
    ):
        assert counter in engine and engine[counter] >= 0
    store = metrics["store"]
    if shared_server.gateway.service.shared_bounds:
        assert store["filled_slots"] >= 0
        assert 0.0 <= store["occupancy"] <= 1.0
        assert store["reclaim_count"] >= 0
        assert store["active_claims"] >= 0
        assert store["warm_started"] is False  # ephemeral store: cold start
        assert store["rejected_store"] is None
    else:  # the no-shared-memory CI leg: absent, not fabricated
        assert store is None
