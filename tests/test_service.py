"""QueryService lifecycle: pool reuse, determinism, queue, shutdown, leaks.

The contract under test (``repro/engine/service.py``): one worker pool —
spawned at construction — serves every batch of the service's lifetime
(observable through stable worker pids), results stay bit-identical to the
serial path at every worker count, workers attach the dataset through
shared memory (falling back to pickling cleanly), and shutdown is
idempotent, drains the queue, reaps every worker process and unlinks the
shared block even after a poisoned batch.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time

import pytest

from repro.datasets import random_reference_object, uniform_rectangle_database
from repro.engine import (
    ExecutorConfig,
    InverseRankingQuery,
    KNNQuery,
    QueryEngine,
    QueryService,
    RangeQuery,
    RankingQuery,
    RKNNQuery,
)
from repro.uncertain import sharedmem


@pytest.fixture(scope="module")
def database():
    return uniform_rectangle_database(num_objects=30, max_extent=0.05, seed=3)


@pytest.fixture(scope="module")
def reference():
    return random_reference_object(extent=0.05, seed=4, label="query")


@pytest.fixture(scope="module")
def requests(reference):
    return [
        KNNQuery(reference, k=3, tau=0.5, max_iterations=4),
        KNNQuery(7, k=2, tau=0.3, max_iterations=4),
        RKNNQuery(reference, k=2, tau=0.5, max_iterations=3, candidate_indices=range(12)),
        RangeQuery(reference, epsilon=0.3, tau=0.5, max_depth=3),
        RankingQuery(reference, max_iterations=2, candidate_indices=range(10)),
        InverseRankingQuery(5, reference, max_iterations=3),
        KNNQuery(reference, k=3, tau=0.5, max_iterations=4),  # a repeat
    ]


def _snapshot(results) -> list:
    snap = []
    for result in results:
        if hasattr(result, "matches"):
            snap.append(
                [
                    (m.index, m.probability_lower, m.probability_upper,
                     m.decision, m.iterations, m.sequence)
                    for bucket in (result.matches, result.undecided, result.rejected)
                    for m in bucket
                ]
                + [result.pruned]
            )
        elif hasattr(result, "ranking"):
            snap.append(
                [
                    (e.index, e.expected_rank_lower, e.expected_rank_upper, e.iterations)
                    for e in result.ranking
                ]
            )
        else:
            snap.append((list(map(float, result.lower)), list(map(float, result.upper))))
    return snap


@pytest.fixture(scope="module")
def serial_snapshot(database, requests):
    engine = QueryEngine(database)
    return _snapshot(engine.evaluate_many(requests))


def _service(database, workers=2, **kwargs):
    return QueryService(
        QueryEngine(database), ExecutorConfig(workers=workers), **kwargs
    )


# --------------------------------------------------------------------- #
# the acceptance property: one pool for the whole service lifetime
# --------------------------------------------------------------------- #
def test_pool_is_reused_across_consecutive_batches(database, requests, serial_snapshot):
    with _service(database, workers=2) as service:
        pid_sets = []
        for _ in range(3):
            got = _snapshot(service.evaluate_many(requests))
            assert got == serial_snapshot
            pid_sets.append(set(service.last_batch_report.worker_pids))
            assert service.last_batch_report.pool == "persistent"
        # every batch ran on the same pool: across three batches the union of
        # observed pids stays within one pool's worth of workers (a pool per
        # batch would surface fresh pids every time)
        all_pids = set().union(*pid_sets)
        assert 1 <= len(all_pids) <= 2
        assert service.worker_pids == tuple(sorted(all_pids))


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_results_identical_across_worker_counts(
    database, requests, serial_snapshot, workers
):
    with _service(database, workers=workers) as service:
        got = _snapshot(service.evaluate_many(requests))
        assert got == serial_snapshot
        assert len(service.worker_pids) <= workers


def test_engine_evaluate_many_routes_through_service(
    database, requests, serial_snapshot
):
    engine = QueryEngine(database)
    with _service(database, workers=2) as service:
        got = _snapshot(engine.evaluate_many(requests, executor=service))
        assert got == serial_snapshot
        assert engine.last_batch_report.pool == "persistent"


def test_engine_routing_rejects_foreign_service(database, requests):
    other = uniform_rectangle_database(num_objects=5, max_extent=0.05, seed=9)
    engine = QueryEngine(other)
    with _service(database, workers=1) as service:
        with pytest.raises(ValueError, match="different database"):
            engine.evaluate_many(requests, executor=service)


def test_adapters_accept_service(database, reference, serial_snapshot):
    from repro.queries import probabilistic_knn_threshold

    with _service(database, workers=1) as service:
        result = probabilistic_knn_threshold(
            database, reference, k=3, tau=0.5, max_iterations=4, engine=service
        )
        assert _snapshot([result]) == [serial_snapshot[0]]
        # single queries run in-process on the service's shared context
        assert service.engine.context.stats()["trees"] > 0


# --------------------------------------------------------------------- #
# request queue: futures and concurrent submitters
# --------------------------------------------------------------------- #
def test_submit_returns_future_handle(database, requests, serial_snapshot):
    with _service(database, workers=2) as service:
        handle = service.submit(requests)
        assert _snapshot(handle.result(timeout=120)) == serial_snapshot
        assert handle.done()
        assert handle.exception() is None
        report = handle.report()
        assert report.num_requests == len(requests)
        assert report.pool == "persistent"


def test_concurrent_submit_from_threads(database, requests, serial_snapshot):
    with _service(database, workers=2) as service:
        snapshots = {}
        errors = []

        def submitter(worker_id):
            try:
                handles = [service.submit(requests) for _ in range(2)]
                snapshots[worker_id] = [
                    _snapshot(handle.result(timeout=120)) for handle in handles
                ]
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=submitter, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(snapshots) == 4
        for batches in snapshots.values():
            assert all(snap == serial_snapshot for snap in batches)


# --------------------------------------------------------------------- #
# shared-memory transport and its fallback
# --------------------------------------------------------------------- #
def test_workers_attach_database_via_shared_memory(database, requests):
    import pickle

    # measured before the export exists: the full-copy payload per worker
    plain_engine = len(pickle.dumps(QueryEngine(database)))
    with _service(database, workers=2) as service:
        assert service.transport == "shared_memory"
        probe = service.probe_workers()
        assert probe["transport"] == "shared_memory"
        assert probe["shm_name"] == service._export.handle.shm_name
        assert probe["num_objects"] == len(database)
        # the per-worker payload is a handle, not a database copy
        assert service.payload_nbytes < plain_engine


def test_fallback_when_shared_memory_unavailable(
    database, requests, serial_snapshot, monkeypatch
):
    monkeypatch.setenv(sharedmem.DISABLE_ENV, "1")
    with _service(database, workers=2) as service:
        assert service.transport == "pickle"
        probe = service.probe_workers()
        assert probe["transport"] == "pickle"
        assert probe["shm_name"] is None
        got = _snapshot(service.evaluate_many(requests))
        assert got == serial_snapshot


def test_share_memory_explicitly_false(database, requests, serial_snapshot):
    with _service(database, workers=1, share_memory=False) as service:
        assert service.transport == "pickle"
        assert _snapshot(service.evaluate_many(requests)) == serial_snapshot


def test_share_memory_true_raises_when_unavailable(database, monkeypatch):
    monkeypatch.setenv(sharedmem.DISABLE_ENV, "1")
    with pytest.raises(RuntimeError, match="unavailable"):
        _service(database, workers=1, share_memory=True)


# --------------------------------------------------------------------- #
# shutdown: idempotent, queue-draining, leak-free
# --------------------------------------------------------------------- #
def test_close_is_idempotent_and_rejects_submits(database, requests):
    service = _service(database, workers=2)
    service.evaluate_many(requests[:2])
    service.close()
    service.close()
    assert service.closed
    with pytest.raises(RuntimeError, match="closed"):
        service.submit(requests)
    with pytest.raises(RuntimeError, match="closed"):
        service.probe_workers()


def test_close_reaps_workers_and_unlinks_block(database, requests):
    before = set(multiprocessing.active_children())
    service = _service(database, workers=2)
    service.evaluate_many(requests[:2])
    name = service._export.handle.shm_name
    if os.path.isdir("/dev/shm"):  # POSIX shm is a real fs only on Linux
        assert os.path.exists(f"/dev/shm/{name}")
    export_active = service._export.active
    assert export_active
    service.close()
    leaked = set(multiprocessing.active_children()) - before
    assert not leaked
    assert service._export is None
    assert not os.path.exists(f"/dev/shm/{name}")


def test_poisoned_request_fails_batch_but_not_service(
    database, requests, serial_snapshot
):
    before = set(multiprocessing.active_children())
    service = _service(database, workers=2)
    name = service._export.handle.shm_name
    poisoned = [requests[0], KNNQuery(reference_or_index(database), k=0, tau=0.5)]
    with pytest.raises(ValueError, match="k must be positive"):
        service.evaluate_many(poisoned)
    # the pool survived: the next batch still runs, on the same pids
    got = _snapshot(service.evaluate_many(requests))
    assert got == serial_snapshot
    export = service._export
    service.close()
    assert not (set(multiprocessing.active_children()) - before)
    assert not export.active  # unlinked on every platform ...
    if os.path.isdir("/dev/shm"):  # ... and verifiably gone where shm is a fs
        assert not os.path.exists(f"/dev/shm/{name}")


def reference_or_index(database):
    """A valid query spec for the poisoned request (index 0)."""
    return 0


def test_submitted_batches_drain_before_close(database, requests, serial_snapshot):
    service = _service(database, workers=2)
    handles = [service.submit(requests) for _ in range(3)]
    service.close(wait=True)
    for handle in handles:
        assert _snapshot(handle.result(timeout=0)) == serial_snapshot


def test_service_accepts_bare_database(database, requests, serial_snapshot):
    with QueryService(database, ExecutorConfig(workers=1)) as service:
        assert isinstance(service.engine, QueryEngine)
        assert _snapshot(service.evaluate_many(requests)) == serial_snapshot


def test_submit_rejects_invalid_deadlines_eagerly(database, requests):
    """Bad deadline values fail at submit time, not as DeadlineExceeded."""
    with _service(database, workers=1) as service:
        for bad in (0, -1.5, float("nan"), float("inf")):
            with pytest.raises(ValueError, match="deadline"):
                service.submit(requests, deadline=bad)
        # an absolute epoch already in the past can only ever resolve
        # DeadlineExceeded — reject it before it enters the queue
        with pytest.raises(ValueError, match="expired"):
            service.submit(requests, deadline_epoch=time.time() - 1.0)
        with pytest.raises(ValueError, match="deadline_epoch"):
            service.submit(requests, deadline_epoch=float("nan"))
        # relative and absolute deadlines are mutually exclusive
        with pytest.raises(ValueError, match="not both"):
            service.submit(requests, deadline=5.0, deadline_epoch=time.time() + 5.0)
        # rejected submits consumed no admission slots and the service
        # still works: a valid absolute deadline far away completes fine
        assert service.pending_batches == 0
        handle = service.submit(requests, deadline_epoch=time.time() + 120.0)
        assert handle.result(timeout=60) is not None
