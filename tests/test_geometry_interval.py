"""Unit tests for :mod:`repro.geometry.interval`."""

import math

import pytest

from repro.geometry import Interval


class TestConstruction:
    def test_valid_interval(self):
        iv = Interval(1.0, 2.5)
        assert iv.lo == 1.0
        assert iv.hi == 2.5

    def test_degenerate_interval_allowed(self):
        iv = Interval(3.0, 3.0)
        assert iv.is_degenerate
        assert iv.length == 0.0

    def test_invalid_order_raises(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)

    def test_hull(self):
        iv = Interval.hull([3.0, -1.0, 2.0])
        assert iv == Interval(-1.0, 3.0)

    def test_hull_empty_raises(self):
        with pytest.raises(ValueError):
            Interval.hull([])


class TestProperties:
    def test_length(self):
        assert Interval(1.0, 4.0).length == 3.0

    def test_center(self):
        assert Interval(1.0, 4.0).center == 2.5

    def test_iteration_yields_bounds(self):
        assert list(Interval(0.0, 1.0)) == [0.0, 1.0]


class TestPredicates:
    def test_contains_point_inside(self):
        assert Interval(0.0, 1.0).contains(0.5)

    def test_contains_boundaries(self):
        iv = Interval(0.0, 1.0)
        assert iv.contains(0.0)
        assert iv.contains(1.0)

    def test_contains_outside(self):
        assert not Interval(0.0, 1.0).contains(1.5)

    def test_contains_interval(self):
        assert Interval(0.0, 1.0).contains_interval(Interval(0.2, 0.8))
        assert not Interval(0.0, 1.0).contains_interval(Interval(0.2, 1.2))

    def test_intersects_overlapping(self):
        assert Interval(0.0, 1.0).intersects(Interval(0.5, 2.0))

    def test_intersects_touching(self):
        assert Interval(0.0, 1.0).intersects(Interval(1.0, 2.0))

    def test_intersects_disjoint(self):
        assert not Interval(0.0, 1.0).intersects(Interval(1.5, 2.0))


class TestSetOperations:
    def test_intersection_overlap(self):
        assert Interval(0.0, 1.0).intersection(Interval(0.5, 2.0)) == Interval(0.5, 1.0)

    def test_intersection_disjoint_is_none(self):
        assert Interval(0.0, 1.0).intersection(Interval(2.0, 3.0)) is None

    def test_union(self):
        assert Interval(0.0, 1.0).union(Interval(2.0, 3.0)) == Interval(0.0, 3.0)

    def test_split_default_midpoint(self):
        left, right = Interval(0.0, 2.0).split()
        assert left == Interval(0.0, 1.0)
        assert right == Interval(1.0, 2.0)

    def test_split_custom_point(self):
        left, right = Interval(0.0, 2.0).split(0.5)
        assert left.hi == 0.5
        assert right.lo == 0.5

    def test_split_outside_raises(self):
        with pytest.raises(ValueError):
            Interval(0.0, 1.0).split(2.0)


class TestDistances:
    def test_min_dist_point_inside_is_zero(self):
        assert Interval(0.0, 1.0).min_dist_to_point(0.3) == 0.0

    def test_min_dist_point_below(self):
        assert Interval(1.0, 2.0).min_dist_to_point(0.5) == pytest.approx(0.5)

    def test_min_dist_point_above(self):
        assert Interval(1.0, 2.0).min_dist_to_point(3.5) == pytest.approx(1.5)

    def test_max_dist_point(self):
        assert Interval(1.0, 2.0).max_dist_to_point(0.0) == pytest.approx(2.0)
        assert Interval(1.0, 2.0).max_dist_to_point(1.6) == pytest.approx(0.6)

    def test_max_dist_at_least_min_dist(self):
        iv = Interval(-1.0, 3.0)
        for x in (-5.0, -1.0, 0.0, 2.0, 3.0, 10.0):
            assert iv.max_dist_to_point(x) >= iv.min_dist_to_point(x)

    def test_min_dist_interval_overlapping(self):
        assert Interval(0.0, 1.0).min_dist_to_interval(Interval(0.5, 2.0)) == 0.0

    def test_min_dist_interval_disjoint(self):
        assert Interval(0.0, 1.0).min_dist_to_interval(Interval(2.0, 3.0)) == pytest.approx(1.0)
        assert Interval(2.0, 3.0).min_dist_to_interval(Interval(0.0, 1.0)) == pytest.approx(1.0)

    def test_max_dist_interval(self):
        assert Interval(0.0, 1.0).max_dist_to_interval(Interval(2.0, 3.0)) == pytest.approx(3.0)

    def test_clamp(self):
        iv = Interval(0.0, 1.0)
        assert iv.clamp(-1.0) == 0.0
        assert iv.clamp(0.5) == 0.5
        assert iv.clamp(2.0) == 1.0


class TestSymmetry:
    @pytest.mark.parametrize(
        "a,b",
        [
            (Interval(0.0, 1.0), Interval(2.0, 3.0)),
            (Interval(0.0, 2.0), Interval(1.0, 3.0)),
            (Interval(-5.0, -1.0), Interval(-0.5, 4.0)),
        ],
    )
    def test_interval_distances_are_symmetric(self, a, b):
        assert a.min_dist_to_interval(b) == pytest.approx(b.min_dist_to_interval(a))
        assert a.max_dist_to_interval(b) == pytest.approx(b.max_dist_to_interval(a))

    def test_point_distance_consistency_with_degenerate_interval(self):
        iv = Interval(1.0, 2.0)
        point = 0.25
        degenerate = Interval(point, point)
        assert iv.min_dist_to_point(point) == pytest.approx(
            iv.min_dist_to_interval(degenerate)
        )
        assert iv.max_dist_to_point(point) == pytest.approx(
            iv.max_dist_to_interval(degenerate)
        )

    def test_nan_free_for_large_values(self):
        iv = Interval(1e12, 2e12)
        assert math.isfinite(iv.max_dist_to_point(-1e12))
