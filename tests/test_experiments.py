"""Tests for the experiment harness and the per-figure experiments.

The per-figure experiments are executed with very small parameters here —
these tests assert the *shape* the paper reports (who wins, how trends move),
whereas the benchmarks under ``benchmarks/`` run the fuller configurations.
"""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentTable,
    ablation_ugf_truncation,
    ablation_ugf_vs_regular_gf,
    figure5_mc_runtime,
    figure6a_pruning_power,
    figure6b_uncertainty_per_iteration,
    figure7_uncertainty_vs_runtime,
    figure8_predicate_queries,
    figure9a_influence_objects,
    figure9b_database_size,
)


class TestExperimentTable:
    def test_add_row_and_column(self):
        table = ExperimentTable("t", "demo", columns=("a", "b"))
        table.add_row(a=1, b=2.0)
        table.add_row(a=3, b=4.0)
        assert len(table) == 2
        assert table.column("a") == [1, 3]

    def test_unknown_column_raises(self):
        table = ExperimentTable("t", "demo", columns=("a",))
        with pytest.raises(KeyError):
            table.add_row(a=1, bogus=2)
        with pytest.raises(KeyError):
            table.column("bogus")

    def test_to_text_contains_header_and_values(self):
        table = ExperimentTable("t", "demo", columns=("a", "b"))
        table.add_row(a=1, b=2.5)
        text = table.to_text()
        assert "demo" in text
        assert "a" in text and "b" in text
        assert "2.5" in text

    def test_save_csv(self, tmp_path):
        table = ExperimentTable("t", "demo", columns=("a", "b"))
        table.add_row(a=1, b=2.5)
        path = tmp_path / "out.csv"
        table.save_csv(str(path))
        content = path.read_text().splitlines()
        assert content[0] == "a,b"
        assert content[1] == "1,2.5"

    def test_iteration(self):
        table = ExperimentTable("t", "demo", columns=("a",))
        table.add_row(a=1)
        assert [row["a"] for row in table] == [1]


class TestFigureExperiments:
    def test_figure5_runtime_grows_with_samples(self):
        table = figure5_mc_runtime(
            num_objects=25, sample_sizes=(10, 40), num_queries=1, seed=0
        )
        runtimes = table.column("runtime_per_query_seconds")
        assert len(runtimes) == 2
        assert runtimes[1] > runtimes[0]

    def test_figure6a_optimal_prunes_more(self):
        table = figure6a_pruning_power(
            max_extents=(0.005, 0.01), num_objects=400, num_queries=3, seed=0
        )
        for row in table:
            assert row["optimal_candidates"] <= row["minmax_candidates"]
        # candidate counts grow with the object extent
        assert table.rows[-1]["optimal_candidates"] >= table.rows[0]["optimal_candidates"]

    def test_figure6b_uncertainty_decreases_and_optimal_wins(self):
        table = figure6b_uncertainty_per_iteration(
            num_objects=400, num_queries=2, iterations=3, seed=0
        )
        optimal = table.column("optimal_uncertainty")
        minmax = table.column("minmax_uncertainty")
        assert optimal == sorted(optimal, reverse=True)
        assert minmax == sorted(minmax, reverse=True)
        # the optimal criterion never starts with more uncertainty than MinMax
        assert optimal[0] <= minmax[0] + 1e-9

    def test_figure7_uncertainty_decreases_with_runtime(self):
        table = figure7_uncertainty_vs_runtime(
            dataset="synthetic",
            sample_sizes=(15,),
            num_objects=25,
            iterations=3,
            num_queries=1,
            seed=0,
        )
        uncertainties = table.column("avg_uncertainty")
        fractions = table.column("fraction_of_mc_runtime")
        assert uncertainties == sorted(uncertainties, reverse=True)
        assert fractions == sorted(fractions)

    def test_figure7_iip_dataset_runs(self):
        table = figure7_uncertainty_vs_runtime(
            dataset="iip",
            sample_sizes=(10,),
            num_objects=25,
            iterations=2,
            num_queries=1,
            seed=0,
        )
        assert len(table) == 3  # iterations 0..2

    def test_figure7_rejects_unknown_dataset(self):
        with pytest.raises(ValueError):
            figure7_uncertainty_vs_runtime(dataset="bogus")

    def test_figure8_idca_faster_than_mc(self):
        table = figure8_predicate_queries(
            k_values=(2,),
            taus=(0.5,),
            num_objects=30,
            samples_per_object=25,
            num_queries=1,
            seed=0,
        )
        row = table.rows[0]
        assert row["idca_seconds"] < row["mc_seconds"]

    def test_figure9a_runtime_accumulates(self):
        table = figure9a_influence_objects(
            target_ranks=(1, 10), num_objects=400, iterations=2, seed=0
        )
        for rank in (1, 10):
            rows = [r for r in table if r["target_rank"] == rank]
            times = [r["cumulative_seconds"] for r in rows]
            assert times == sorted(times)

    def test_figure9b_covers_all_sizes(self):
        table = figure9b_database_size(
            database_sizes=(200, 400), iterations=2, seed=0
        )
        assert set(table.column("database_size")) == {200, 400}
        assert all(row["cumulative_seconds"] >= 0 for row in table)


class TestAblations:
    def test_ugf_vs_regular_gf_tightness(self):
        table = ablation_ugf_vs_regular_gf(num_variables=(4, 8), trials=5, seed=0)
        for row in table:
            assert row["ugf_width"] <= row["regular_width"] + 1e-9

    def test_truncation_agrees_and_is_faster_for_large_n(self):
        table = ablation_ugf_truncation(num_variables=(120,), k=4, trials=3, seed=0)
        row = table.rows[0]
        assert row["bounds_agree"] is True
        assert row["truncated_seconds"] < row["full_seconds"]
